//! Log-pipeline throughput: segmentation (30-minute rule), aggregation and
//! reduction over raw click records (§V-A), plus the record codecs.

use sqp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqp_common::Interner;
use sqp_sessions::{aggregate, reduce, segment_default};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);

    for &n in &[5_000usize, 10_000] {
        let records = sqp_bench::bench_records(n, 42);
        group.bench_with_input(BenchmarkId::new("segment", n), &records, |b, r| {
            b.iter(|| black_box(segment_default(r)))
        });

        let sessions = segment_default(&records);
        group.bench_with_input(BenchmarkId::new("aggregate", n), &sessions, |b, s| {
            b.iter(|| {
                let mut interner = Interner::new();
                black_box(aggregate(s, &mut interner))
            })
        });

        let mut interner = Interner::new();
        let aggregated = aggregate(&sessions, &mut interner);
        group.bench_with_input(BenchmarkId::new("reduce", n), &aggregated, |b, a| {
            b.iter(|| black_box(reduce(a, 1)))
        });
    }

    // Serialization codecs.
    let records = sqp_bench::bench_records(5_000, 42);
    group.bench_function("encode_binary", |b| {
        b.iter(|| black_box(sqp_logsim::record::encode(&records)))
    });
    let blob = sqp_logsim::record::encode(&records);
    group.bench_function("decode_binary", |b| {
        b.iter(|| black_box(sqp_logsim::record::decode(blob.clone()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
