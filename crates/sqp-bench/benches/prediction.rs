//! Online recommendation latency per model and context length — the paper's
//! §V-G claim: prediction is O(D), constant-ish in corpus size and fast
//! enough for real-time deployment.

use sqp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqp_core::{Adjacency, Mvmm, MvmmConfig, NGram, Recommender, Vmm, VmmConfig};
use std::hint::black_box;

fn bench_prediction(c: &mut Criterion) {
    let n = 8_000;
    let sessions = sqp_bench::bench_sessions(n, 42);
    let adj = Adjacency::train(&sessions);
    let ngram = NGram::train(&sessions);
    let vmm = Vmm::train(&sessions, VmmConfig::with_epsilon(0.05));
    let mvmm = Mvmm::train(&sessions, &MvmmConfig::small());

    let mut group = c.benchmark_group("prediction");
    for len in [1usize, 2, 3] {
        let contexts = sqp_bench::bench_contexts(n, 42, len, 64);
        if contexts.is_empty() {
            continue;
        }
        let models: Vec<(&str, &dyn Recommender)> = vec![
            ("adjacency", &adj),
            ("ngram", &ngram),
            ("vmm_0.05", &vmm),
            ("mvmm", &mvmm),
        ];
        for (name, model) in models {
            group.bench_with_input(
                BenchmarkId::new(name, format!("len{len}")),
                &contexts,
                |b, ctxs| {
                    b.iter(|| {
                        for ctx in ctxs {
                            black_box(model.recommend(black_box(ctx), 5));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
