//! MVMM mixture machinery: the Newton σ-fit (Eq. 7–10) and full mixture
//! training with parallel vs serial component training (§V-G).

use sqp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqp_core::{fit_mixture_sigmas, FitConfig, Mvmm, MvmmConfig};
use std::hint::black_box;

fn synthetic_fit_inputs(n_seq: usize, k: usize) -> (Vec<f64>, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let p = vec![1.0 / n_seq as f64; n_seq];
    let a: Vec<Vec<f64>> = (0..n_seq)
        .map(|t| {
            (0..k)
                .map(|d| 0.05 + 0.9 * (((t * 7 + d * 13) % 17) as f64 / 17.0))
                .collect()
        })
        .collect();
    let d: Vec<Vec<f64>> = (0..n_seq)
        .map(|t| (0..k).map(|d| ((t + d) % 4) as f64).collect())
        .collect();
    (p, a, d)
}

fn bench_mixture(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixture");
    group.sample_size(10);

    for &(n_seq, k) in &[(500usize, 3usize), (2_000, 11)] {
        let (p, a, d) = synthetic_fit_inputs(n_seq, k);
        group.bench_with_input(
            BenchmarkId::new("newton_fit", format!("{n_seq}seq_{k}comp")),
            &(p, a, d),
            |b, (p, a, d)| b.iter(|| black_box(fit_mixture_sigmas(p, a, d, &FitConfig::default()))),
        );
    }

    let sessions = sqp_bench::bench_sessions(4_000, 42);
    for parallel in [false, true] {
        let mut cfg = MvmmConfig::small();
        cfg.parallel = parallel;
        group.bench_with_input(
            BenchmarkId::new("mvmm_train", if parallel { "parallel" } else { "serial" }),
            &cfg,
            |b, cfg| b.iter(|| black_box(Mvmm::train(&sessions, cfg))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mixture);
criterion_main!(benches);
