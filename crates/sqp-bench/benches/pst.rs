//! PST internals: window counting, tree construction, longest-suffix lookup,
//! and the escape recursion — the O(|Q*|·Dn²) / O(D) bounds of §IV-B.

use sqp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqp_core::counts::WindowCounts;
use sqp_core::{Vmm, VmmConfig};
use std::hint::black_box;

fn bench_pst(c: &mut Criterion) {
    let sessions = sqp_bench::bench_sessions(8_000, 42);

    let mut group = c.benchmark_group("pst");
    group.sample_size(20);

    group.bench_function("window_counts_unbounded", |b| {
        b.iter(|| black_box(WindowCounts::build(&sessions, None)))
    });
    for d in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("window_counts", d), &d, |b, &d| {
            b.iter(|| black_box(WindowCounts::build(&sessions, Some(d))))
        });
    }

    let vmm = Vmm::train(&sessions, VmmConfig::with_epsilon(0.05));
    let contexts = sqp_bench::bench_contexts(8_000, 42, 2, 128);
    if !contexts.is_empty() {
        group.bench_function("longest_suffix_lookup", |b| {
            b.iter(|| {
                for ctx in &contexts {
                    black_box(vmm.match_state(black_box(ctx)));
                }
            })
        });
        group.bench_function("cond_prob_escaped", |b| {
            let q = contexts[0][0];
            b.iter(|| {
                for ctx in &contexts {
                    black_box(vmm.cond_prob_escaped(black_box(ctx), q));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pst);
criterion_main!(benches);
