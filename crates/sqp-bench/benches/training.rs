//! Training throughput per model at two corpus sizes — the criterion
//! counterpart of the paper's Figure 12 (training time scales linearly).

use sqp_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqp_core::{Adjacency, Cooccurrence, Mvmm, MvmmConfig, NGram, Vmm, VmmConfig};
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    for &n in &[4_000usize, 8_000] {
        let sessions = sqp_bench::bench_sessions(n, 42);

        group.bench_with_input(BenchmarkId::new("adjacency", n), &sessions, |b, s| {
            b.iter(|| black_box(Adjacency::train(s)))
        });
        group.bench_with_input(BenchmarkId::new("cooccurrence", n), &sessions, |b, s| {
            b.iter(|| black_box(Cooccurrence::train(s)))
        });
        group.bench_with_input(BenchmarkId::new("ngram", n), &sessions, |b, s| {
            b.iter(|| black_box(NGram::train(s)))
        });
        group.bench_with_input(BenchmarkId::new("vmm_0.05", n), &sessions, |b, s| {
            b.iter(|| black_box(Vmm::train(s, VmmConfig::with_epsilon(0.05))))
        });
        group.bench_with_input(BenchmarkId::new("mvmm_small", n), &sessions, |b, s| {
            b.iter(|| black_box(Mvmm::train(s, &MvmmConfig::small())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
