//! Acceptance test for the end-to-end retrain loop: a live [`ServeEngine`]
//! serves concurrent traffic while a [`Retrainer`] ingests fresh simulated
//! log records, writes snapshot generations to disk, and hot-swaps them in.
//!
//! Reuses the `serve_loop` swap-verification machinery: the engine and
//! traffic vocabulary come from [`serve_loop::build_engine`], and the
//! mid-traffic argument is the same one `serve_loop` makes — workers exit
//! *only after* observing the final generation, so every publication
//! necessarily raced live requests.
//!
//! Verifies the acceptance criteria directly: ≥ 2 snapshot generations
//! published mid-traffic, post-swap suggestions reflecting the new corpus,
//! and the on-disk generation warm-starting a second engine that agrees
//! with the live one.

use sqp_bench::serve_loop::{self, ServeLoopConfig};
use sqp_logsim::RawLogRecord;
use sqp_serve::{EngineConfig, ModelSpec, ServeEngine, TrainingConfig};
use sqp_store::{RetrainConfig, Retrainer, WarmStart};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const TARGET_GENERATIONS: u64 = 2;
const FRESH_USERS: u64 = 300;

fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
    RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    }
}

/// A burst of brand-new traffic: vocabulary the serving model has never
/// seen, on machines disjoint from the simulated corpus and from other
/// bursts.
fn fresh_batch(generation: u64) -> Vec<RawLogRecord> {
    (0..FRESH_USERS)
        .flat_map(|u| {
            let machine = 1_000_000_000 + generation * 1_000_000 + u;
            [
                rec(machine, 100, "fresh::a"),
                rec(machine, 160, &format!("fresh::b{generation}")),
            ]
        })
        .collect()
}

#[test]
fn retrainer_publishes_generations_under_live_traffic() {
    let cfg = ServeLoopConfig::smoke();
    let (engine, vocabulary, records) = serve_loop::build_engine(&cfg);
    let dir = std::env::temp_dir().join(format!("sqp-retrain-loop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let batch_len = fresh_batch(1).len();
    // Retrains swap the model *kind* too (initial VMM → Adjacency):
    // snapshots are kind-agnostic, and Adjacency makes the post-swap
    // assertion deterministic (successor counts, no KL growth criterion).
    let retrainer = Retrainer::new(
        RetrainConfig {
            training: TrainingConfig {
                model: ModelSpec::Adjacency,
                ..TrainingConfig::default()
            },
            min_batch: batch_len,
            window_records: 1 << 20,
            snapshot_dir: Some(dir.clone()),
            keep: TARGET_GENERATIONS as usize,
            poll: Duration::from_millis(1),
        },
        records,
    );

    // Ops observed at each engine generation; proves traffic flowed both
    // before the first publish and between publishes.
    let ops_at_generation: Vec<AtomicU64> = (0..=TARGET_GENERATIONS)
        .map(|_| AtomicU64::new(0))
        .collect();

    std::thread::scope(|scope| {
        let trainer_handle = retrainer.spawn(scope, &engine);

        let workers: Vec<_> = (0..cfg.threads)
            .map(|thread| {
                let engine: &ServeEngine = &engine;
                let vocabulary = &vocabulary;
                let ops_at_generation = &ops_at_generation;
                scope.spawn(move || {
                    let user_base = thread as u64 * 1_000_000;
                    let mut op = 0u64;
                    // Exit only after the final generation is visible —
                    // therefore every publish raced this loop.
                    loop {
                        let generation = engine.generation();
                        if generation >= TARGET_GENERATIONS {
                            break;
                        }
                        let query = &vocabulary[(op as usize) % vocabulary.len()];
                        engine.track_and_suggest(user_base + (op % 64), query, 3, op * 2);
                        ops_at_generation[generation as usize].fetch_add(1, Ordering::Relaxed);
                        op += 1;
                    }
                })
            })
            .collect();

        // Feed the loop one fresh burst per target generation, waiting for
        // each publish to land before the next burst.
        for generation in 1..=TARGET_GENERATIONS {
            retrainer.ingest_batch(fresh_batch(generation));
            while retrainer.generations_published() < generation {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        for w in workers {
            w.join().unwrap();
        }
        retrainer.shutdown();
        let report = trainer_handle.join().unwrap();
        assert!(
            report.errors.is_empty(),
            "retrain errors: {:?}",
            report.errors
        );
        assert!(
            report.published >= TARGET_GENERATIONS,
            "only {} generations published",
            report.published
        );
    });

    // ≥ 2 generations landed, all of them mid-traffic.
    assert!(engine.generation() >= TARGET_GENERATIONS);
    assert!(
        ops_at_generation[0].load(Ordering::Relaxed) > 0,
        "no traffic before the first publish"
    );
    assert!(
        ops_at_generation[1].load(Ordering::Relaxed) > 0,
        "no traffic between the publishes"
    );

    // Post-swap suggestions reflect the new corpus: the generation-2
    // vocabulary — which the initial model had never seen — is now served.
    let post = engine.suggest_context(&["fresh::a"], 5);
    assert!(
        post.iter().any(|s| s.query == "fresh::b2"),
        "post-swap model does not reflect the new corpus: {post:?}"
    );
    // Old corpus is still in the sliding window, so the original
    // vocabulary keeps working too.
    assert!(
        engine.snapshot().vocabulary_size() > 2,
        "retrained snapshot lost the seed corpus"
    );

    // The on-disk generations warm-start an identical server.
    let mut snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    snaps.sort();
    assert!(
        snaps.len() <= TARGET_GENERATIONS as usize,
        "rotation kept too many files: {snaps:?}"
    );
    let latest = snaps.last().expect("no snapshot written");
    let warm = ServeEngine::from_path(latest, EngineConfig::default()).unwrap();
    assert_eq!(
        warm.suggest_context(&["fresh::a"], 5),
        engine.suggest_context(&["fresh::a"], 5),
        "warm-started engine disagrees with the live one"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
