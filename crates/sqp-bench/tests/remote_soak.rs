//! The `remote-soak` acceptance suite for the cross-process resilient tier.
//!
//! A `RemoteEngine` fronts **two real `NetServer` processes-in-miniature**,
//! each reachable only through a [`ChaosProxy`], while multi-threaded
//! worker traffic runs through five phases: healthy → one endpoint
//! black-holed (breaker trips, traffic fails over) → revived (half-open
//! probe closes the breaker) → **both** endpoints black-holed (typed
//! fast-fail degradation) → revived (full recovery). The suite proves the
//! three resilience contracts of the remote tier:
//!
//! * **Total accounting** — every operation a worker sends resolves as
//!   answered, typed-shed, or typed-degraded: `answered + shed + degraded
//!   == sent`, per worker, per phase. Nothing hangs, nothing panics,
//!   nothing is silently lost.
//! * **Bounded latency** — no operation outlives its deadline by more than
//!   scheduling slack, even with every endpoint black-holed (the outcome a
//!   deadline-free client cannot offer: it would hang forever).
//! * **Replayability** — the healthy-phase answer content and the
//!   per-phase traffic accounting fold into a digest that is bit-identical
//!   across two full scenario runs from the same seed, and differs across
//!   seeds.
//!
//! A separate test pins the typed-shed path end to end: an engine whose
//! admission budget is exhausted sheds over the wire, and the
//! `RemoteEngine` surfaces it as [`RemoteOutcome::Shed`] /
//! [`Overloaded`](sqp_serve::Overloaded) — never as a degraded or empty
//! answer.

use sqp_bench::serve_loop::{build_parts, ServeLoopConfig};
use sqp_common::breaker::{BreakerConfig, BreakerState};
use sqp_common::rng::{Rng, StdRng};
use sqp_faults::{Chaos, ChaosProxy, FaultPlan};
use sqp_net::{EndpointConfig, NetServer, RemoteConfig, RemoteEngine, RemoteOutcome, ServerConfig};
use sqp_serve::{EngineConfig, ServeEngine, ServeSurface, SuggestRequest};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const OPS_PER_PHASE: usize = 24;
const USERS_PER_WORKER: u64 = 24;
const SUGGEST_K: usize = 3;
/// No operation may take longer than this, in any phase. The deadline is
/// 1s; the bound leaves room for one attempt granted just before expiry
/// plus scheduling slack — versus the unbounded hang a black-holed
/// endpoint inflicts on a deadline-free client.
const HANG_BOUND_MS: u64 = 4_000;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fold_u64(h: u64, v: u64) -> u64 {
    fold(h, &v.to_le_bytes())
}

/// One worker's accounting for one phase.
#[derive(Clone, Copy, Debug)]
struct PhaseTally {
    sent: u64,
    answered: u64,
    shed: u64,
    degraded: u64,
    /// Worst single-operation wall clock, milliseconds.
    max_ms: u64,
    /// FNV-1a over the answered suggestion texts, in send order. Only the
    /// healthy first phase folds this into the scenario digest — later
    /// phases' answer sets depend on probe timing.
    content: u64,
}

impl Default for PhaseTally {
    fn default() -> Self {
        Self {
            sent: 0,
            answered: 0,
            shed: 0,
            degraded: 0,
            max_ms: 0,
            content: FNV_OFFSET,
        }
    }
}

/// Drive one phase of seeded mixed traffic: `WORKERS` threads, each with
/// its own user population and PRNG stream, mixing tracked suggests (never
/// re-sent), stateless suggests, and batched suggests (both retried).
fn drive_phase(
    remote: &RemoteEngine,
    vocabulary: &[String],
    seed: u64,
    phase: u64,
) -> Vec<PhaseTally> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ ((w as u64) << 32) ^ (phase << 16));
                    let mut tally = PhaseTally::default();
                    let user_base = w as u64 * 1_000_000;
                    for i in 0..OPS_PER_PHASE {
                        // Phases are spaced past the session-gap rule, so
                        // every phase starts fresh sessions; within a
                        // phase the logical clock keeps sessions alive.
                        let now = phase * 10_000 + i as u64 * 2;
                        let started = Instant::now();
                        if i % 8 == 7 {
                            let reqs: Vec<SuggestRequest> = (0..4)
                                .map(|_| SuggestRequest {
                                    user: user_base + rng.random_range(0u64..USERS_PER_WORKER),
                                    k: SUGGEST_K,
                                })
                                .collect();
                            match remote.remote_suggest_batch(&reqs, now) {
                                RemoteOutcome::Answered(lists) => {
                                    tally.answered += 1;
                                    for list in &lists {
                                        for s in list {
                                            tally.content = fold(tally.content, s.query.as_bytes());
                                            tally.content = fold(tally.content, &[0xff]);
                                        }
                                    }
                                }
                                RemoteOutcome::Shed { .. } => tally.shed += 1,
                                RemoteOutcome::Degraded(_) => tally.degraded += 1,
                            }
                        } else if i.is_multiple_of(3) {
                            let user = user_base + rng.random_range(0u64..USERS_PER_WORKER);
                            match remote.remote_suggest(user, SUGGEST_K, now) {
                                RemoteOutcome::Answered(list) => {
                                    tally.answered += 1;
                                    for s in &list {
                                        tally.content = fold(tally.content, s.query.as_bytes());
                                        tally.content = fold(tally.content, &[0xff]);
                                    }
                                }
                                RemoteOutcome::Shed { .. } => tally.shed += 1,
                                RemoteOutcome::Degraded(_) => tally.degraded += 1,
                            }
                        } else {
                            let user = user_base + rng.random_range(0u64..USERS_PER_WORKER);
                            let query = &vocabulary[rng.random_range(0usize..vocabulary.len())];
                            match remote.remote_track_and_suggest(user, query, SUGGEST_K, now) {
                                RemoteOutcome::Answered(list) => {
                                    tally.answered += 1;
                                    for s in &list {
                                        tally.content = fold(tally.content, s.query.as_bytes());
                                        tally.content = fold(tally.content, &[0xff]);
                                    }
                                }
                                RemoteOutcome::Shed { .. } => tally.shed += 1,
                                RemoteOutcome::Degraded(_) => tally.degraded += 1,
                            }
                        }
                        tally.sent += 1;
                        tally.max_ms = tally.max_ms.max(started.elapsed().as_millis() as u64);
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Every sent operation resolved, and none outlived its deadline.
fn assert_accounted(phase: &str, tallies: &[PhaseTally]) {
    for (w, t) in tallies.iter().enumerate() {
        assert_eq!(
            t.answered + t.shed + t.degraded,
            t.sent,
            "phase {phase}, worker {w}: operations lost ({t:?})"
        );
        assert!(
            t.max_ms <= HANG_BOUND_MS,
            "phase {phase}, worker {w}: operation outlived its deadline ({t:?})"
        );
    }
}

fn answered(tallies: &[PhaseTally]) -> u64 {
    tallies.iter().map(|t| t.answered).sum()
}

fn sent(tallies: &[PhaseTally]) -> u64 {
    tallies.iter().map(|t| t.sent).sum()
}

/// Ping until endpoint `idx`'s breaker reaches `want` (pings alternate
/// their home endpoint, so both breakers see attempts and, once a cooldown
/// elapses, half-open probes).
fn await_breaker(remote: &RemoteEngine, idx: usize, want: BreakerState) {
    for _ in 0..400 {
        if remote.endpoint_breaker(idx).state == want {
            return;
        }
        let _ = remote.remote_ping();
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "endpoint {idx} breaker never reached {want:?}: {:?}",
        remote.endpoint_breaker(idx)
    );
}

struct ScenarioReport {
    digest: u64,
}

/// One full five-phase chaos scenario, built from scratch: fresh corpus,
/// fresh servers, fresh proxies, fresh remote tier. Every resilience
/// assertion lives in here; the caller compares digests across runs.
fn run_scenario(seed: u64) -> ScenarioReport {
    let corpus_cfg = ServeLoopConfig {
        threads: WORKERS,
        ops_per_thread: OPS_PER_PHASE,
        users_per_thread: USERS_PER_WORKER as usize,
        suggest_k: SUGGEST_K,
        batch_size: 4,
        swaps: 0,
        corpus_sessions: 400,
        seed,
    };
    let (snapshot, vocabulary, _records) = build_parts(&corpus_cfg);

    // Two real server processes-in-miniature over the same snapshot.
    let servers: Vec<NetServer> = (0..2)
        .map(|_| {
            NetServer::start(
                Arc::new(ServeEngine::new(snapshot.clone(), EngineConfig::default())),
                ServerConfig::default(),
            )
            .expect("server start")
        })
        .collect();

    // Each server is reachable only through its chaos proxy.
    let proxies: Vec<ChaosProxy> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            ChaosProxy::start(
                s.serve_addr(),
                Chaos::new(FaultPlan::quiet(seed ^ i as u64)),
            )
            .expect("proxy start")
        })
        .collect();

    let remote = RemoteEngine::connect(
        proxies
            .iter()
            .map(|p| EndpointConfig::serve_only(p.listen_addr()))
            .collect(),
        RemoteConfig {
            deadline: Duration::from_secs(1),
            attempt_timeout: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(250),
            max_attempts: 3,
            backoff_initial: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(40),
            breaker: BreakerConfig {
                threshold: 1,
                cooldown: Duration::from_millis(200),
            },
            seed,
            ..RemoteConfig::default()
        },
    );
    let victim = 0usize;

    // Phase A — healthy: every operation answered, content recorded for
    // the replay digest.
    let phase_a = drive_phase(&remote, &vocabulary, seed, 0);
    assert_accounted("A(healthy)", &phase_a);
    assert_eq!(
        answered(&phase_a),
        sent(&phase_a),
        "healthy phase must answer everything: {phase_a:?}"
    );

    // Phase B — black-hole the victim: its breaker trips, traffic fails
    // over to the healthy endpoint. (Probe admissions into the black hole
    // may degrade individual operations; the accounting still balances.)
    proxies[victim].set_blackhole(true);
    proxies[victim].kill_connections();
    remote.drain_pools();
    await_breaker(&remote, victim, BreakerState::Open);
    let phase_b = drive_phase(&remote, &vocabulary, seed, 1);
    assert_accounted("B(victim down)", &phase_b);
    assert!(
        answered(&phase_b) > 0,
        "failover must keep answering: {phase_b:?}"
    );
    assert!(
        remote.endpoint_breaker(victim).trips >= 1,
        "victim breaker must have tripped"
    );

    // Phase C — revive the victim: cooldown elapses, a half-open probe
    // succeeds, the breaker closes again. Open → Closed is the
    // transition the issue demands be *observed*, not assumed.
    proxies[victim].set_blackhole(false);
    proxies[victim].kill_connections();
    remote.drain_pools();
    await_breaker(&remote, victim, BreakerState::Closed);
    assert!(
        remote.endpoint_breaker(victim).recoveries >= 1,
        "half-open probe must have closed the victim's breaker"
    );
    let phase_c = drive_phase(&remote, &vocabulary, seed, 2);
    assert_accounted("C(revived)", &phase_c);
    assert_eq!(
        answered(&phase_c),
        sent(&phase_c),
        "revived tier must answer everything: {phase_c:?}"
    );

    // Phase D — black-hole BOTH endpoints: nothing can answer, so every
    // operation degrades typed and fast (open breakers fast-fail without
    // touching a socket).
    for p in &proxies {
        p.set_blackhole(true);
        p.kill_connections();
    }
    remote.drain_pools();
    await_breaker(&remote, 0, BreakerState::Open);
    await_breaker(&remote, 1, BreakerState::Open);
    let phase_d = drive_phase(&remote, &vocabulary, seed, 3);
    assert_accounted("D(all down)", &phase_d);
    for (w, t) in phase_d.iter().enumerate() {
        assert_eq!(t.answered, 0, "worker {w} answered with no endpoint up");
        assert_eq!(t.shed, 0, "worker {w} shed with no endpoint up");
        assert_eq!(
            t.degraded, t.sent,
            "worker {w}: every op must degrade typed: {t:?}"
        );
    }

    // Phase E — revive both: the whole tier recovers, no operator action
    // beyond un-breaking the network.
    for p in &proxies {
        p.set_blackhole(false);
        p.kill_connections();
    }
    remote.drain_pools();
    await_breaker(&remote, 0, BreakerState::Closed);
    await_breaker(&remote, 1, BreakerState::Closed);
    let phase_e = drive_phase(&remote, &vocabulary, seed, 4);
    assert_accounted("E(recovered)", &phase_e);
    assert_eq!(
        answered(&phase_e),
        sent(&phase_e),
        "recovered tier must answer everything: {phase_e:?}"
    );

    // Scenario-level evidence: both breakers cycled (the victim twice),
    // failover and retries actually happened, degradation was counted.
    let stats = remote.remote_stats();
    assert!(stats.failovers > 0, "no failover observed: {stats:?}");
    assert!(stats.degraded > 0, "no degradation observed: {stats:?}");
    let vb = remote.endpoint_breaker(victim);
    assert!(vb.trips >= 2 && vb.recoveries >= 2, "victim cycle: {vb:?}");
    let ob = remote.endpoint_breaker(1);
    assert!(ob.trips >= 1 && ob.recoveries >= 1, "other cycle: {ob:?}");

    // The replay digest: seed, per-phase per-worker sent counts and
    // resolution totals (all deterministic by the assertions above), plus
    // the healthy phase's answer content in full.
    let mut digest = fold_u64(FNV_OFFSET, seed);
    for (p, tallies) in [&phase_a, &phase_b, &phase_c, &phase_d, &phase_e]
        .iter()
        .enumerate()
    {
        for t in tallies.iter() {
            digest = fold_u64(digest, t.sent);
            digest = fold_u64(digest, t.answered + t.shed + t.degraded);
            if p == 0 {
                digest = fold_u64(digest, t.content);
            }
        }
    }

    remote.drain_pools();
    for p in proxies {
        p.shutdown();
    }
    for s in servers {
        s.shutdown();
    }
    ScenarioReport { digest }
}

#[test]
fn five_phase_chaos_scenario_replays_bit_identically() {
    let first = run_scenario(7);
    let second = run_scenario(7);
    assert_eq!(
        first.digest, second.digest,
        "same seed, fresh tier: the scenario must replay bit-identically"
    );
    let other = run_scenario(11);
    assert_ne!(
        other.digest, first.digest,
        "a different seed must produce different traffic"
    );
}

#[test]
fn shed_is_typed_end_to_end() {
    let corpus_cfg = ServeLoopConfig {
        corpus_sessions: 200,
        ..ServeLoopConfig::smoke()
    };
    let (snapshot, _vocabulary, _records) = build_parts(&corpus_cfg);
    let engine = Arc::new(ServeEngine::new(
        snapshot,
        EngineConfig {
            max_in_flight: 1,
            ..EngineConfig::default()
        },
    ));
    let server = NetServer::start(engine.clone(), ServerConfig::default()).expect("server start");
    let remote = RemoteEngine::connect(
        vec![EndpointConfig::serve_only(server.serve_addr())],
        RemoteConfig::default(),
    );

    // Hold the engine's only admission slot: every serve-path request now
    // sheds deterministically — no racing threads required.
    let permit = engine.admit().expect("first permit");
    match remote.remote_suggest(1, 3, 10) {
        RemoteOutcome::Shed { limit } => assert_eq!(limit, 1),
        other => panic!("exhausted budget must shed typed, got {other:?}"),
    }
    // Through the ServeSurface trait the shed is a typed `Overloaded`,
    // exactly like an in-process engine — not an empty answer.
    let err = remote.try_suggest(1, 3, 10).expect_err("must shed");
    assert_eq!(err.limit, 1);

    // Release the slot: the same tier answers again. A shed is
    // back-pressure, not an outage — and it never trips the breaker.
    drop(permit);
    assert!(remote.remote_suggest(1, 3, 20).is_answered());
    let stats = remote.remote_stats();
    assert!(stats.sheds >= 2, "sheds must be counted: {stats:?}");
    assert_eq!(remote.endpoint_breaker(0).trips, 0, "sheds are not faults");

    remote.drain_pools();
    server.shutdown();
}
