//! The `router-soak` acceptance suite for the replicated serving tier.
//!
//! Two scenarios, both built on `sqp_bench::router_loop` (every invariant
//! is asserted *inside* the harnesses — a violated guarantee panics there
//! with the failing evidence; the assertions here check the scenarios were
//! not vacuous):
//!
//! * **Generation skew under live traffic** — a rolling upgrade of a
//!   4-replica tier is held on mixed generations while 4 worker threads
//!   hammer tracked, stateless, and batched suggests. Tagged vocabularies
//!   make every answer's snapshot readable off its text: no call may mix
//!   snapshots (torn read), no user may regress from the new model to the
//!   old (session migration), every route is sticky, and the tier must end
//!   converged on the new generation.
//! * **Chaos under routing** — a fault plan fails exactly one replica's
//!   snapshot read mid-roll; that replica quarantines on its last-good
//!   model while the rest complete, `RouterStats` reports the skew, and
//!   the whole scenario — fault decisions included — replays
//!   bit-identically from the seed.

use sqp_bench::router_loop::{run_chaos_roll, run_skew_soak};

#[test]
fn generation_skew_under_live_traffic() {
    let report = run_skew_soak(4, 1_500);
    // The harness asserted the guarantees; this is the evidence the skew
    // window really carried traffic on both generations.
    assert_eq!(report.threads, 4);
    assert_eq!(report.replicas, 4);
    assert_eq!(report.max_skew_observed, 1);
    assert_eq!(report.final_generation, 1);
    assert!(report.old_during_roll > 0, "{report:?}");
    assert!(report.new_during_roll > 0, "{report:?}");
    // Four held steps plus warmup and tail: at least 6 holds' worth of
    // classified calls went through the tier.
    assert!(report.ops_total >= 6 * 1_500, "{report:?}");
}

#[test]
fn chaos_roll_quarantines_the_victim_and_replays_bit_identically() {
    let first = run_chaos_roll(1);
    assert_eq!(first.failed_replica, 1);
    assert_eq!(first.upgraded, vec![0, 2, 3]);
    assert_eq!(first.skew_after_roll, 1);
    assert_eq!(first.read_errors, 1);

    // Same seed, fresh tier, fresh chaos runtime: identical report,
    // identical fault-decision digest.
    let second = run_chaos_roll(1);
    assert_eq!(first, second, "chaos roll did not replay bit-identically");

    // A different seed moves the victim (seed % replicas).
    let other = run_chaos_roll(2);
    assert_eq!(other.failed_replica, 2);
    assert_ne!(other.digest, first.digest);
}
