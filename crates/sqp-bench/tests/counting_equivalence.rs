//! Equivalence: the arena suffix-trie counter must reproduce the old
//! hashmap-of-owned-windows counter **exactly** — same windows, same totals,
//! same session-start counts, same continuation distributions — on the
//! paper's toy corpus and on randomized simulated corpora, sequentially and
//! in parallel.

use sqp_bench::baseline::BaselineWindowCounts;
use sqp_common::{seq, QueryId, QuerySeq};
use sqp_core::counts::WindowCounts;

/// The paper's Table II corpus (inlined from `sqp_core::toy`).
fn toy_corpus() -> Vec<(QuerySeq, u64)> {
    vec![
        (seq(&[1, 0, 0]), 3),
        (seq(&[1, 0, 1]), 7),
        (seq(&[0, 0]), 78),
        (seq(&[1, 0]), 5),
        (seq(&[0, 1, 0]), 1),
        (seq(&[0, 1, 1]), 1),
        (seq(&[1, 1]), 3),
        (seq(&[0]), 10),
    ]
}

/// Assert the two counters agree on every observable quantity. `threads > 1`
/// forces sharded counting + merge regardless of the host's core count.
fn assert_equivalent(sessions: &[(QuerySeq, u64)], max_len: Option<usize>, threads: usize) {
    let baseline = BaselineWindowCounts::build(sessions, max_len);
    let trie = WindowCounts::build_sharded(sessions, max_len, threads);

    assert_eq!(trie.n_queries, baseline.n_queries);
    assert_eq!(trie.total_sessions, baseline.total_sessions);
    assert_eq!(trie.total_occurrences, baseline.total_occurrences);
    assert_eq!(trie.max_len, baseline.max_len);
    assert_eq!(trie.window_count(), baseline.entries.len());

    // Every baseline window with identical statistics (window_count equality
    // above makes the correspondence a bijection).
    for (w, be) in &baseline.entries {
        let te = trie
            .entry(w)
            .unwrap_or_else(|| panic!("window {w:?} missing from trie"));
        assert_eq!(te.total(), be.total, "total mismatch on {w:?}");
        assert_eq!(te.at_start(), be.at_start, "at_start mismatch on {w:?}");
        assert_eq!(te.next_total(), be.next.total(), "next total on {w:?}");
        let mut baseline_next: Vec<(QueryId, u64)> = be.next.iter().map(|(q, c)| (*q, c)).collect();
        baseline_next.sort_unstable_by_key(|&(q, _)| q);
        let trie_next: Vec<(QueryId, u64)> = te.next_iter().collect();
        assert_eq!(trie_next, baseline_next, "continuations on {w:?}");
    }

    // Root prior.
    let mut baseline_root: Vec<(QueryId, u64)> =
        baseline.root_next.iter().map(|(q, c)| (*q, c)).collect();
    baseline_root.sort_unstable_by_key(|&(q, _)| q);
    let (rk, rc) = trie.root_continuations();
    let trie_root: Vec<(QueryId, u64)> = rk.iter().copied().zip(rc.iter().copied()).collect();
    assert_eq!(trie_root, baseline_root);

    // Escape probabilities on a grid of contexts (including unobserved).
    for a in 0..6u32 {
        for b in 0..6u32 {
            let ctx = seq(&[a, b]);
            let expect = baseline_escape(&baseline, &ctx);
            let got = trie.escape_prob(&ctx);
            assert!(
                (expect - got).abs() < 1e-15,
                "escape mismatch on {ctx:?}: {expect} vs {got}"
            );
        }
    }
}

/// Eq. (6) computed from the baseline's maps (the seed formula verbatim).
fn baseline_escape(c: &BaselineWindowCounts, s: &[QueryId]) -> f64 {
    let suffix = &s[1..];
    if suffix.is_empty() {
        let den = c.total_occurrences + c.total_sessions;
        if den == 0 {
            return 1.0;
        }
        return (c.total_sessions as f64 / den as f64).max(1e-6);
    }
    match c.entries.get(suffix) {
        None => 1.0,
        Some(e) if e.total == 0 => 1.0,
        Some(e) => (e.at_start as f64 / e.total as f64).max(1e-6),
    }
}

#[test]
fn toy_corpus_equivalence_and_paper_numbers() {
    assert_equivalent(&toy_corpus(), None, 1);
    assert_equivalent(&toy_corpus(), None, 3);

    // Golden numbers straight off the trie: P(q0|q1) = 16/20 = 0.8 (Fig 3)
    // and P(q0|[q1,q0]) = 3/10 (Table II).
    let c = WindowCounts::build(&toy_corpus(), None);
    let e1 = c.entry(&seq(&[1])).unwrap();
    assert_eq!(e1.next_count(QueryId(0)), 16);
    assert_eq!(e1.next_total(), 20);
    let e10 = c.entry(&seq(&[1, 0])).unwrap();
    assert_eq!(e10.next_count(QueryId(0)), 3);
    assert_eq!(e10.next_total(), 10);
}

#[test]
fn toy_corpus_kl_pins_through_training() {
    use sqp_core::{Vmm, VmmConfig};
    // The paper's growth decisions: D_KL(q0‖q1q0) = 0.3449 > 0.1 (added),
    // D_KL(q1‖q0q1) = 0.0837 < 0.1 (rejected). The merged-walk KL on trie
    // slices must reproduce both decisions at ε = 0.1, and flip them at the
    // pinned boundaries.
    let grown = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.1));
    assert!(grown.pst().contains(&seq(&[1, 0])));
    assert!(!grown.pst().contains(&seq(&[0, 1])));
    // ε just below 0.0837 admits q0q1 too.
    let loose = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.0836));
    assert!(loose.pst().contains(&seq(&[0, 1])));
    // ε just above 0.3449 rejects even q1q0.
    let tight = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.345));
    assert!(!tight.pst().contains(&seq(&[1, 0])));
}

#[test]
fn bounded_depths_match_on_toy() {
    for d in [1, 2, 3] {
        assert_equivalent(&toy_corpus(), Some(d), 1);
        assert_equivalent(&toy_corpus(), Some(d), 2);
    }
}

#[test]
fn simulated_corpora_match_sequential_and_parallel() {
    for (n, seed) in [(2_000usize, 7u64), (5_000, 42)] {
        let sessions = sqp_bench::bench_sessions(n, seed);
        for max_len in [None, Some(1), Some(2), Some(4)] {
            assert_equivalent(&sessions, max_len, 1);
            assert_equivalent(&sessions, max_len, 4);
        }
    }
}

#[test]
fn randomized_small_corpora_match() {
    use sqp_common::rng::{Rng, StdRng};
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let n = rng.random_range(1usize..30);
        let mut map = std::collections::HashMap::new();
        for _ in 0..n {
            let len = rng.random_range(1usize..6);
            let s: QuerySeq = (0..len)
                .map(|_| QueryId(rng.random_range(0u32..7)))
                .collect();
            *map.entry(s).or_insert(0u64) += rng.random_range(1u64..15);
        }
        let sessions: Vec<(QuerySeq, u64)> = map.into_iter().collect();
        let max_len = if rng.random_bool(0.5) {
            None
        } else {
            Some(rng.random_range(1usize..5))
        };
        let threads = rng.random_range(1usize..5);
        assert_equivalent(&sessions, max_len, threads);
    }
}
