//! Acceptance test for the serving stress harness: sustained concurrent
//! track/suggest traffic across ≥ 4 threads with an atomic mid-run model
//! swap, completing without panics, lost operations, or a stuck trainer.

use sqp_bench::serve_loop::{self, ServeLoopConfig};

#[test]
fn serve_loop_sustains_traffic_across_a_mid_run_swap() {
    let cfg = ServeLoopConfig::smoke();
    assert!(cfg.threads >= 4, "acceptance floor is 4 worker threads");
    let report = serve_loop::run(&cfg);

    // Every scheduled operation completed (workers may add tail ops to
    // keep traffic flowing until the publish lands — never fewer).
    assert!(
        report.ops_total >= (cfg.threads * cfg.ops_per_thread) as u64,
        "lost operations: {} of {}",
        report.ops_total,
        cfg.threads * cfg.ops_per_thread
    );
    // The trainer published, the engine observed it, and at least one
    // publication landed while worker traffic was still flowing.
    assert_eq!(report.swaps_completed, cfg.swaps as u64);
    assert_eq!(report.final_generation, cfg.swaps as u64);
    assert!(report.mid_run_swaps > 0, "swap landed only after traffic");
    // Traffic was real: suggestions were computed and many were non-empty.
    assert!(report.suggests_total > 0);
    assert!(
        report.nonempty_suggestions > 0,
        "no covered context ever produced a suggestion"
    );
    // The tracker held live sessions, and the final sweep reclaimed them.
    assert!(report.active_sessions > 0);
    assert_eq!(report.evicted_at_end, report.active_sessions);
    // Latency accounting is sane.
    assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);
    assert!(report.max_us >= report.p99_us);
    assert!(report.throughput_ops_per_sec > 0.0);
}
