//! Acceptance gate for live tier reconfiguration: the membership chaos
//! soak must replay bit-identically.
//!
//! [`run_membership_soak`] asserts every live-membership invariant
//! internally (accounting per phase, zero context resets for handed-off
//! users, loss bounded by the ring's remap property on an undrained
//! kill, graceful churn under concurrent traffic). These tests pin what
//! only a caller can: the scenario is **replayable** — same seed, same
//! report, digest included — and the digest actually depends on the
//! seed, so it cannot be a constant that would vacuously pass.

use sqp_bench::membership_loop::{run_membership_soak, OPS_PER_WORKER, WORKERS};

#[test]
fn membership_soak_replays_bit_identically() {
    let first = run_membership_soak(7);
    let second = run_membership_soak(7);
    assert_eq!(
        first, second,
        "same seed must reproduce the same scenario, digest included"
    );

    // The deterministic phases really ran full traffic.
    let expected_ops = (WORKERS as u64) * OPS_PER_WORKER;
    for tally in [
        &first.steady,
        &first.after_join,
        &first.after_drain,
        &first.after_kill,
    ] {
        assert_eq!(tally.sent, expected_ops);
        assert_eq!(tally.refused, 0, "static membership refuses nothing");
    }
    // Graceful membership changes never reset a session; the undrained
    // kill loses exactly its routed set and nothing more.
    assert_eq!(first.steady.resets, 0);
    assert_eq!(first.after_join.resets, 0);
    assert_eq!(first.after_drain.resets, 0);
    assert_eq!(first.after_kill.resets, first.kill_lost as u64);
    assert_eq!(first.churn.resets, 0);
}

#[test]
fn membership_soak_digest_depends_on_the_seed() {
    let a = run_membership_soak(1);
    let b = run_membership_soak(2);
    assert_ne!(
        a.digest, b.digest,
        "different seeds must produce different traffic, hence digests"
    );
    // The scenario shape (who joined, who drained, who died) is fixed;
    // only the traffic varies with the seed.
    assert_eq!(a.final_replicas, b.final_replicas);
    assert_eq!(a.final_ring_generation, b.final_ring_generation);
}
