//! The seeded chaos soak: the resilience storyline must play out exactly,
//! and must be bit-replayable from the seed.
//!
//! Run directly with `cargo test -p sqp-bench --test chaos_soak` (the CI
//! `chaos-smoke` job does).

use sqp_bench::chaos::{run_overload_soak, run_replay_soak};
use sqp_store::BreakerState;

#[test]
fn resilience_storyline_plays_out_exactly() {
    let report = run_replay_soak(42);

    // Every request the fleet issued was answered (admission unlimited).
    assert_eq!(report.served, 4 * 200, "no request may go unanswered");

    // The scripted faults produced exactly the scripted outcomes.
    assert_eq!(
        report.script,
        [
            "panic",
            "panic",
            "breaker-open",
            "published:1",
            "quarantined:2->rollback:1",
            "published:3",
            "quarantined:4->rollback:3",
        ],
        "storyline diverged"
    );

    // Health accounting matches the storyline.
    let h = &report.health;
    assert_eq!(h.breaker, BreakerState::Closed);
    assert_eq!(h.retrains_ok, 2);
    assert_eq!(h.failures, 4, "2 panics + 2 quarantines");
    assert_eq!(h.save_retries, 2);
    assert_eq!(h.quarantined, 2);
    assert_eq!(h.rollbacks, 2);
    assert_eq!(h.breaker_trips, 1);
    assert_eq!(h.breaker_recoveries, 1);
    assert_eq!(h.steps_skipped_open, 1);
    assert_eq!(h.last_good_generation, Some(3));
    assert_eq!(
        h.consecutive_failures, 1,
        "final quarantine, under threshold"
    );

    // Chaos counters: every scheduled fault fired, none extra.
    assert_eq!(report.stats.panics, 2);
    assert_eq!(report.stats.corrupt_writes, 1);
    assert_eq!(report.stats.write_errors, 2);
    assert_eq!(report.stats.short_reads, 1);
    assert_eq!(report.stats.read_errors, 0);

    // Generation numbering burned through the quarantines: 4 on disk,
    // quarantined files counted, never reused.
    assert_eq!(report.latest_generation, 4);

    // The engine actually serves generation 3's model after the final
    // rollback — not the quarantined generation 4, not a stale one.
    assert_eq!(report.serving_top.as_deref(), Some("b3::next"));
    // 2 validated publishes + 2 rollback publishes.
    assert_eq!(report.publishes, 4);
}

#[test]
fn replay_is_bit_identical_from_the_seed() {
    let a = run_replay_soak(7);
    let b = run_replay_soak(7);
    assert_eq!(a.digest, b.digest, "same seed must replay bit-identically");
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.script, b.script);
    assert_eq!(a.health, b.health);

    let c = run_replay_soak(8);
    assert_ne!(a.digest, c.digest, "different seeds must diverge");
}

#[test]
fn overload_sheds_typed_and_leaks_nothing() {
    let report = run_overload_soak(42);
    assert_eq!(
        report.answered + report.shed,
        report.total,
        "every request either answered or counted as shed"
    );
    assert!(report.shed > 0, "8 stalled workers over budget 2 must shed");
    assert!(
        report.answered > 0,
        "admission control must not starve everyone"
    );
    assert_eq!(report.in_flight_after, 0, "permits leaked");
    assert!(report.p99_us >= report.p50_us);
}
