//! PR 3 lifecycle snapshot: measures the model-lifecycle subsystem on the
//! 10k-session seed corpus and writes `BENCH_PR3.json`.
//!
//! Three questions an operator actually asks:
//!
//! * **How big is a snapshot, and how long does saving take?** (nightly
//!   build budget)
//! * **How fast is a warm start vs a cold start?** (restart / scale-out
//!   budget: `load_snapshot` vs retraining from raw logs)
//! * **What is the retrain-loop publish latency?** (freshness budget: from
//!   "new traffic buffered" to "new generation serving", including train,
//!   save-to-disk, and the atomic swap)
//!
//! Usage: `cargo run --release -p sqp-bench --bin bench_pr3 [out.json]`

use sqp_core::VmmConfig;
use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
use sqp_store::{
    load_snapshot, save_snapshot, snapshot_file_name, RetrainConfig, Retrainer, SnapshotMeta,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const CORPUS_SESSIONS: usize = 10_000;
const SEED: u64 = 42;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR3.json".into());
    let dir = std::env::temp_dir().join(format!("sqp_bench_pr3_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    eprintln!("building {CORPUS_SESSIONS}-session seed corpus…");
    let records = sqp_bench::bench_records(CORPUS_SESSIONS, SEED);
    let training = TrainingConfig {
        model: ModelSpec::Vmm(VmmConfig::with_epsilon(0.05)),
        ..TrainingConfig::default()
    };

    // Cold start: raw logs → pipeline → trained model.
    let t = Instant::now();
    let trained = ModelSnapshot::from_raw_logs(&records, &training);
    let cold_start_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "cold start: {:.1} ms ({} sessions, |Q| = {})",
        cold_start_ms,
        trained.trained_sessions(),
        trained.vocabulary_size()
    );

    // Save time + snapshot size.
    let path = dir.join(snapshot_file_name(0));
    let meta = SnapshotMeta::describe(&trained, 0, records.len() as u64);
    let save_ms = median_ms(
        (0..5)
            .map(|_| {
                let t = Instant::now();
                save_snapshot(&path, &trained, &meta).expect("save");
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    );
    let snapshot_bytes = std::fs::metadata(&path).unwrap().len();
    eprintln!("save_snapshot: {save_ms:.2} ms median, {snapshot_bytes} bytes");

    // Warm start: snapshot file → ready model.
    let load_ms = median_ms(
        (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(load_snapshot(&path).expect("load"));
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    );
    let warm_speedup = cold_start_ms / load_ms.max(1e-9);
    eprintln!("load_snapshot: {load_ms:.2} ms median ({warm_speedup:.0}x faster than cold start)");

    // Sanity: the warm model serves identical suggestions.
    let (warm, _) = load_snapshot(&path).unwrap();
    let probe: Vec<String> = warm
        .interner()
        .iter()
        .take(200)
        .map(|(_, s)| s.to_owned())
        .collect();
    for q in &probe {
        assert_eq!(
            warm.suggest(&[q.as_str()], 5),
            trained.suggest(&[q.as_str()], 5),
            "warm model diverged on {q:?}"
        );
    }

    // Retrain-loop publish latency: fresh-traffic burst → new generation
    // serving (train + save + rotate + swap).
    eprintln!("retrain-loop publish latency…");
    let engine = ServeEngine::new(Arc::new(trained), EngineConfig::default());
    let retrainer = Retrainer::new(
        RetrainConfig {
            training: training.clone(),
            min_batch: 1,
            snapshot_dir: Some(dir.clone()),
            keep: 3,
            ..RetrainConfig::default()
        },
        records.clone(),
    );
    let burst = records.len() / 100; // ~1% fresh traffic per publish
    let publish_ms_samples: Vec<f64> = (0..3)
        .map(|round| {
            let fresh: Vec<_> = records
                .iter()
                .take(burst)
                .map(|r| {
                    let mut r = r.clone();
                    r.machine_id += 1_000_000_000 + round as u64 * 1_000_000;
                    r
                })
                .collect();
            retrainer.ingest_batch(fresh);
            let t = Instant::now();
            let outcome = retrainer.retrain_once(&engine).expect("nonempty window");
            assert!(
                outcome.save_error.is_none(),
                "save failed: {:?}",
                outcome.save_error
            );
            let ms = t.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "  generation {}: {:.1} ms (window = {} records)",
                outcome.meta.generation, ms, outcome.meta.source_records
            );
            ms
        })
        .collect();
    let publish_ms = median_ms(publish_ms_samples);
    assert_eq!(engine.generation(), 3, "publishes did not land");

    let json = format!(
        "{{\n  \"corpus_sessions\": {CORPUS_SESSIONS},\n  \"seed\": {SEED},\n  \
         \"model\": \"VMM (0.05)\",\n  \"raw_records\": {},\n  \
         \"snapshot_bytes\": {snapshot_bytes},\n  \"cold_start_ms\": {cold_start_ms:.1},\n  \
         \"save_snapshot_ms\": {save_ms:.2},\n  \"load_snapshot_ms\": {load_ms:.2},\n  \
         \"warm_start_speedup\": {warm_speedup:.0},\n  \
         \"retrain_publish_ms\": {publish_ms:.1},\n  \
         \"notes\": \"cold_start = raw logs -> pipeline -> trained model; load = \
         snapshot file -> ready model (medians of 5); retrain_publish = buffered \
         burst -> trained+saved+rotated+swapped generation (median of 3); warm model \
         verified suggestion-identical on 200 probe contexts\"\n}}\n",
        records.len()
    );
    std::fs::write(&out_path, &json).expect("write BENCH_PR3.json");
    std::fs::remove_dir_all(&dir).ok();
    eprintln!(
        "wrote {out_path}: snapshot {snapshot_bytes} B, load {load_ms:.2} ms, \
         retrain publish {publish_ms:.1} ms"
    );
}
