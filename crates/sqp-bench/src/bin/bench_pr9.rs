//! PR 9 remote-tier snapshot: the same seeded wire workload run twice
//! against a real `NetServer` — once through bare per-thread `NetClient`s
//! (the PR 8 baseline: no retries, no breakers, a failure is the caller's
//! problem) and once through the resilient `RemoteEngine` (deadlines,
//! breaker admission, pooled checkout/checkin on every op). The delta is
//! the price of resilience on the steady-state path, and the acceptance
//! gate keeps it honest: **remote p99 ≤ 1.3× raw p99**.
//!
//! Two more rows ride along:
//!
//! * **TCP_NODELAY evidence** — the single-op p50 must sit far below the
//!   ~40ms a Nagle/delayed-ACK interaction would inflict on a
//!   write-write-read protocol; the gate (<10ms) fails loudly if either
//!   side ever loses its `set_nodelay`.
//! * **Failover latency** — with one of two endpoints black-holed mid-run
//!   behind a chaos proxy, every idempotent op in the post-kill window
//!   must still be *answered* (retry + failover), and the worst op —
//!   which pays the attempt timeout before failing over — must stay
//!   within the deadline.
//!
//! Usage: `cargo run --release -p sqp-bench --bin bench_pr9 [out.json]`

use sqp_bench::serve_loop::{build_parts, ServeLoopConfig};
use sqp_common::breaker::BreakerConfig;
use sqp_common::rng::{Rng, StdRng};
use sqp_faults::{Chaos, ChaosProxy, FaultPlan};
use sqp_net::{
    BatchAnswer, BatchEntry, EndpointConfig, NetClient, NetServer, RemoteConfig, RemoteEngine,
    RemoteOutcome, ServeAnswer, ServerConfig,
};
use sqp_serve::{EngineConfig, ModelSnapshot, ServeEngine, SuggestRequest};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_P99_RATIO: f64 = 1.3;
const MAX_SINGLE_OP_P50_US: f64 = 10_000.0; // Nagle+delayed-ACK would be ~40ms
const FAILOVER_DEADLINE: Duration = Duration::from_secs(1);
const FAILOVER_SLACK: Duration = Duration::from_millis(500);

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 4_000;
const USERS_PER_THREAD: u64 = 256;
const SUGGEST_K: usize = 5;
const BATCH_SIZE: usize = 32;
const SEED: u64 = 42;

/// One op of the seeded mix, generated identically for both runs (the PRNG
/// draws are the op descriptor; execution differs only in the transport).
enum Op {
    /// Every 8th op: a `BATCH_SIZE`-entry batched suggest.
    Batch(Vec<(u64, usize)>),
    /// Every 3rd op: a stateless suggest.
    Suggest(u64),
    /// Everything else: a tracked suggest with a vocabulary query.
    Track(u64, String),
}

fn gen_op(i: usize, rng: &mut StdRng, user_base: u64, vocabulary: &[String]) -> Op {
    if i % 8 == 7 {
        Op::Batch(
            (0..BATCH_SIZE)
                .map(|_| {
                    (
                        user_base + rng.random_range(0u64..USERS_PER_THREAD),
                        SUGGEST_K,
                    )
                })
                .collect(),
        )
    } else if i.is_multiple_of(3) {
        Op::Suggest(user_base + rng.random_range(0u64..USERS_PER_THREAD))
    } else {
        let user = user_base + rng.random_range(0u64..USERS_PER_THREAD);
        let query = vocabulary[rng.random_range(0usize..vocabulary.len())].clone();
        Op::Track(user, query)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct LatReport {
    ops: u64,
    nonempty: u64,
    elapsed_secs: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    /// p50 over the single (non-batch) round trips only: the Nagle canary.
    single_p50_us: f64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

fn summarize(per_thread: Vec<(Vec<u64>, Vec<u64>, u64)>, elapsed_secs: f64) -> LatReport {
    let mut all: Vec<u64> = Vec::new();
    let mut singles: Vec<u64> = Vec::new();
    let mut nonempty = 0u64;
    for (lat, single, ne) in per_thread {
        all.extend(lat);
        singles.extend(single);
        nonempty += ne;
    }
    all.sort_unstable();
    singles.sort_unstable();
    LatReport {
        ops: all.len() as u64,
        nonempty,
        elapsed_secs,
        p50_us: percentile_us(&all, 0.50),
        p99_us: percentile_us(&all, 0.99),
        max_us: percentile_us(&all, 1.0),
        single_p50_us: percentile_us(&singles, 0.50),
    }
}

/// The baseline: one bare keep-alive `NetClient` per thread, every failure
/// a panic (there must be none — the server is healthy and local).
fn run_raw(addr: SocketAddr, vocabulary: &[String]) -> LatReport {
    let started = Instant::now();
    let per_thread = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("raw connect");
                    let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64) << 32);
                    let user_base = t as u64 * 1_000_000;
                    let mut lat = Vec::with_capacity(OPS_PER_THREAD);
                    let mut singles = Vec::with_capacity(OPS_PER_THREAD);
                    let mut nonempty = 0u64;
                    for i in 0..OPS_PER_THREAD {
                        let now = i as u64 * 2;
                        let op = gen_op(i, &mut rng, user_base, vocabulary);
                        let t0 = Instant::now();
                        match op {
                            Op::Batch(entries) => {
                                let entries: Vec<BatchEntry> = entries
                                    .into_iter()
                                    .map(|(user, k)| BatchEntry { user, k })
                                    .collect();
                                match client.suggest_batch(&entries, now).expect("raw batch") {
                                    BatchAnswer::Lists(lists) => {
                                        nonempty +=
                                            lists.iter().filter(|l| !l.is_empty()).count() as u64
                                    }
                                    BatchAnswer::Overloaded { .. } => panic!("no limit set"),
                                }
                                lat.push(t0.elapsed().as_nanos() as u64);
                            }
                            Op::Suggest(user) => {
                                match client.suggest(user, SUGGEST_K, now).expect("raw suggest") {
                                    ServeAnswer::Suggestions(s) => nonempty += !s.is_empty() as u64,
                                    ServeAnswer::Overloaded { .. } => panic!("no limit set"),
                                }
                                let ns = t0.elapsed().as_nanos() as u64;
                                lat.push(ns);
                                singles.push(ns);
                            }
                            Op::Track(user, query) => {
                                match client
                                    .track_and_suggest(user, &query, SUGGEST_K, now)
                                    .expect("raw track")
                                {
                                    ServeAnswer::Suggestions(s) => nonempty += !s.is_empty() as u64,
                                    ServeAnswer::Overloaded { .. } => panic!("no limit set"),
                                }
                                let ns = t0.elapsed().as_nanos() as u64;
                                lat.push(ns);
                                singles.push(ns);
                            }
                        }
                    }
                    (lat, singles, nonempty)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    summarize(per_thread, started.elapsed().as_secs_f64())
}

/// The resilient tier on the same traffic: every op pays breaker
/// admission, deadline arithmetic, and pooled checkout/checkin.
fn run_remote(remote: &RemoteEngine, vocabulary: &[String]) -> LatReport {
    let started = Instant::now();
    let per_thread = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64) << 32);
                    let user_base = t as u64 * 1_000_000;
                    let mut lat = Vec::with_capacity(OPS_PER_THREAD);
                    let mut singles = Vec::with_capacity(OPS_PER_THREAD);
                    let mut nonempty = 0u64;
                    for i in 0..OPS_PER_THREAD {
                        let now = i as u64 * 2;
                        let op = gen_op(i, &mut rng, user_base, vocabulary);
                        let t0 = Instant::now();
                        match op {
                            Op::Batch(entries) => {
                                let reqs: Vec<SuggestRequest> = entries
                                    .into_iter()
                                    .map(|(user, k)| SuggestRequest { user, k })
                                    .collect();
                                match remote.remote_suggest_batch(&reqs, now) {
                                    RemoteOutcome::Answered(lists) => {
                                        nonempty +=
                                            lists.iter().filter(|l| !l.is_empty()).count() as u64
                                    }
                                    other => panic!("healthy tier degraded: {other:?}"),
                                }
                                lat.push(t0.elapsed().as_nanos() as u64);
                            }
                            Op::Suggest(user) => {
                                match remote.remote_suggest(user, SUGGEST_K, now) {
                                    RemoteOutcome::Answered(s) => nonempty += !s.is_empty() as u64,
                                    other => panic!("healthy tier degraded: {other:?}"),
                                }
                                let ns = t0.elapsed().as_nanos() as u64;
                                lat.push(ns);
                                singles.push(ns);
                            }
                            Op::Track(user, query) => {
                                match remote.remote_track_and_suggest(user, &query, SUGGEST_K, now)
                                {
                                    RemoteOutcome::Answered(s) => nonempty += !s.is_empty() as u64,
                                    other => panic!("healthy tier degraded: {other:?}"),
                                }
                                let ns = t0.elapsed().as_nanos() as u64;
                                lat.push(ns);
                                singles.push(ns);
                            }
                        }
                    }
                    (lat, singles, nonempty)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    summarize(per_thread, started.elapsed().as_secs_f64())
}

#[derive(Debug)]
struct FailoverReport {
    ops: u64,
    answered: u64,
    worst_op_ms: u64,
    settle_ms: u64,
    breaker_trips: u64,
    failovers: u64,
}

/// Kill one of two endpoints mid-run (black-hole, the nastiest failure:
/// the socket stays open, only the deadline saves the caller) and measure
/// what the callers see. Idempotent ops only, so the contract is sharp:
/// *everything* still answers, and the worst op — the one that pays the
/// attempt timeout before failing over — stays within the deadline.
fn run_failover(snapshot: Arc<ModelSnapshot>) -> FailoverReport {
    let victim_server = NetServer::start(
        Arc::new(ServeEngine::new(snapshot.clone(), EngineConfig::default())),
        ServerConfig::default(),
    )
    .expect("victim server");
    let healthy_server = NetServer::start(
        Arc::new(ServeEngine::new(snapshot, EngineConfig::default())),
        ServerConfig::default(),
    )
    .expect("healthy server");
    let proxy = ChaosProxy::start(
        victim_server.serve_addr(),
        Chaos::new(FaultPlan::quiet(SEED)),
    )
    .expect("proxy");

    let remote = RemoteEngine::connect(
        vec![
            EndpointConfig::serve_only(proxy.listen_addr()),
            EndpointConfig::serve_only(healthy_server.serve_addr()),
        ],
        RemoteConfig {
            deadline: FAILOVER_DEADLINE,
            attempt_timeout: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(250),
            max_attempts: 3,
            breaker: BreakerConfig {
                threshold: 1,
                cooldown: Duration::from_millis(200),
            },
            seed: SEED,
            ..RemoteConfig::default()
        },
    );

    // Warm both endpoints, spreading users over both homes.
    for user in 0..64u64 {
        assert!(
            remote.remote_suggest(user, SUGGEST_K, 10).is_answered(),
            "warmup op failed"
        );
    }

    // Kill the victim mid-run and drive the post-kill window.
    proxy.set_blackhole(true);
    proxy.kill_connections();
    let mut worst = Duration::ZERO;
    let mut answered = 0u64;
    let mut settle_ms = 0u64;
    let window_started = Instant::now();
    const WINDOW_OPS: u64 = 200;
    for user in 0..WINDOW_OPS {
        let t0 = Instant::now();
        if remote.remote_suggest(user, SUGGEST_K, 20).is_answered() {
            answered += 1;
        }
        let took = t0.elapsed();
        worst = worst.max(took);
        // Settle point: the first op after which the tier is fast again
        // (breaker open, victim skipped without touching a socket).
        if settle_ms == 0 && took < Duration::from_millis(50) && user > 0 {
            settle_ms = window_started.elapsed().as_millis() as u64;
        }
    }
    let stats = remote.remote_stats();
    let report = FailoverReport {
        ops: WINDOW_OPS,
        answered,
        worst_op_ms: worst.as_millis() as u64,
        settle_ms,
        breaker_trips: remote.endpoint_breaker(0).trips,
        failovers: stats.failovers,
    };

    remote.drain_pools();
    proxy.shutdown();
    victim_server.shutdown();
    healthy_server.shutdown();
    report
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn lat_json(r: &LatReport, indent: &str) -> String {
    format!(
        "{indent}\"ops\": {},\n{indent}\"nonempty_suggestions\": {},\n{indent}\"elapsed_secs\": {:.3},\n{indent}\"throughput_ops_per_sec\": {:.0},\n{indent}\"p50_us\": {:.1},\n{indent}\"p99_us\": {:.1},\n{indent}\"max_us\": {:.1},\n{indent}\"single_op_p50_us\": {:.1}\n",
        r.ops,
        r.nonempty,
        r.elapsed_secs,
        r.ops as f64 / r.elapsed_secs.max(1e-9),
        r.p50_us,
        r.p99_us,
        r.max_us,
        r.single_p50_us,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR9.json".into());

    let corpus_cfg = ServeLoopConfig {
        threads: THREADS,
        ops_per_thread: OPS_PER_THREAD,
        users_per_thread: USERS_PER_THREAD as usize,
        suggest_k: SUGGEST_K,
        batch_size: BATCH_SIZE,
        swaps: 0,
        corpus_sessions: 5_000,
        seed: SEED,
    };
    let (snapshot, vocabulary, _records) = build_parts(&corpus_cfg);

    // Baseline: bare NetClients against a fresh server.
    eprintln!(
        "raw NetClient: {THREADS} threads x {OPS_PER_THREAD} ops, batch {BATCH_SIZE} every 8th…"
    );
    let raw_server = NetServer::start(
        Arc::new(ServeEngine::new(snapshot.clone(), EngineConfig::default())),
        ServerConfig::default(),
    )
    .expect("raw server");
    let raw = run_raw(raw_server.serve_addr(), &vocabulary);
    raw_server.shutdown();
    eprintln!(
        "  p50 {:.1}µs p99 {:.1}µs max {:.1}µs | single-op p50 {:.1}µs",
        raw.p50_us, raw.p99_us, raw.max_us, raw.single_p50_us
    );

    // Resilient tier: same traffic, fresh server, RemoteEngine transport.
    eprintln!("RemoteEngine: identical seeded traffic through the resilient tier…");
    let remote_server = NetServer::start(
        Arc::new(ServeEngine::new(snapshot.clone(), EngineConfig::default())),
        ServerConfig::default(),
    )
    .expect("remote server");
    let remote_engine = RemoteEngine::connect(
        vec![EndpointConfig::serve_only(remote_server.serve_addr())],
        RemoteConfig {
            deadline: Duration::from_secs(2),
            attempt_timeout: Duration::from_millis(500),
            seed: SEED,
            ..RemoteConfig::default()
        },
    );
    let remote = run_remote(&remote_engine, &vocabulary);
    remote_engine.drain_pools();
    remote_server.shutdown();
    eprintln!(
        "  p50 {:.1}µs p99 {:.1}µs max {:.1}µs | single-op p50 {:.1}µs",
        remote.p50_us, remote.p99_us, remote.max_us, remote.single_p50_us
    );

    assert_eq!(
        raw.ops, remote.ops,
        "the two runs must send identical traffic"
    );
    assert_eq!(
        raw.nonempty, remote.nonempty,
        "identical traffic must produce identical answers"
    );

    let p99_ratio = remote.p99_us / raw.p99_us.max(1e-9);
    eprintln!("  remote/raw p99: {p99_ratio:.2}x (gate {MAX_P99_RATIO}x)");
    assert!(
        p99_ratio <= MAX_P99_RATIO,
        "remote p99 {:.1}µs exceeds {MAX_P99_RATIO}x the raw p99 {:.1}µs",
        remote.p99_us,
        raw.p99_us
    );

    // TCP_NODELAY canary on both transports: a lost set_nodelay shows up
    // as a ~40ms single-op p50 (write-write-read vs Nagle + delayed ACK).
    for (label, r) in [("raw", &raw), ("remote", &remote)] {
        assert!(
            r.single_p50_us < MAX_SINGLE_OP_P50_US,
            "{label} single-op p50 {:.1}µs smells like Nagle (gate {MAX_SINGLE_OP_P50_US}µs)",
            r.single_p50_us
        );
    }

    // Failover: kill one of two endpoints mid-run, nothing may be lost.
    eprintln!("failover: black-holing one of two endpoints mid-run…");
    let failover = run_failover(snapshot);
    eprintln!(
        "  {}/{} answered | worst op {}ms (deadline {}ms) | settled after {}ms | {} trips, {} failovers",
        failover.answered,
        failover.ops,
        failover.worst_op_ms,
        FAILOVER_DEADLINE.as_millis(),
        failover.settle_ms,
        failover.breaker_trips,
        failover.failovers
    );
    assert_eq!(
        failover.answered, failover.ops,
        "idempotent ops must all survive a single-endpoint failure"
    );
    assert!(
        failover.worst_op_ms <= (FAILOVER_DEADLINE + FAILOVER_SLACK).as_millis() as u64,
        "failover op outlived its deadline: {failover:?}"
    );
    assert!(failover.breaker_trips >= 1, "{failover:?}");
    assert!(failover.failovers >= 1, "{failover:?}");

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"threads\": {THREADS}, \"ops_per_thread\": {OPS_PER_THREAD}, \"users_per_thread\": {USERS_PER_THREAD}, \"suggest_k\": {SUGGEST_K}, \"batch_size\": {BATCH_SIZE}, \"corpus_sessions\": {}, \"seed\": {SEED}}},\n",
        corpus_cfg.corpus_sessions,
    ));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str("  \"raw_net_client\": {\n");
    json.push_str(&lat_json(&raw, "    "));
    json.push_str("  },\n");
    json.push_str("  \"remote_engine\": {\n");
    json.push_str(&lat_json(&remote, "    "));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"remote_vs_raw\": {{\"p99_ratio\": {p99_ratio:.2}, \"max_p99_ratio_allowed\": {MAX_P99_RATIO:.1}}},\n"
    ));
    json.push_str(&format!(
        "  \"tcp_nodelay\": {{\"raw_single_op_p50_us\": {:.1}, \"remote_single_op_p50_us\": {:.1}, \"max_allowed_us\": {MAX_SINGLE_OP_P50_US:.0}}},\n",
        raw.single_p50_us, remote.single_p50_us,
    ));
    json.push_str(&format!(
        "  \"failover\": {{\"window_ops\": {}, \"answered\": {}, \"worst_op_ms\": {}, \"settle_ms\": {}, \"deadline_ms\": {}, \"breaker_trips\": {}, \"failovers\": {}}},\n",
        failover.ops,
        failover.answered,
        failover.worst_op_ms,
        failover.settle_ms,
        FAILOVER_DEADLINE.as_millis(),
        failover.breaker_trips,
        failover.failovers,
    ));
    json.push_str(&format!(
        "  \"notes\": \"{}\"\n",
        json_escape(
            "raw_net_client and remote_engine run byte-identical seeded traffic (same corpus, \
             same per-thread PRNG streams, batch every 8th op) against fresh servers over the \
             same snapshot, so their delta is the resilience machinery on the steady-state \
             path: breaker admission, deadline arithmetic, and pooled checkout/checkin per op. \
             The nonempty-suggestion counts are asserted equal, proving the tiers computed the \
             same answers. single_op_p50_us is the TCP_NODELAY canary: a write-write-read \
             protocol that loses set_nodelay pays ~40ms to Nagle + delayed ACK. The failover \
             row black-holes one of two endpoints mid-run behind a chaos proxy: the worst op \
             pays one attempt timeout before failing over (within the deadline), the breaker \
             trips, and after it opens the dead endpoint is skipped without touching a socket \
             (settle_ms)"
        )
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR9.json");
    eprintln!(
        "wrote {out_path}: remote p99 {:.1}µs vs raw p99 {:.1}µs ({p99_ratio:.2}x, gate {MAX_P99_RATIO}x)",
        remote.p99_us, raw.p99_us
    );
}
