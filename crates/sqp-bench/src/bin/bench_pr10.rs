//! PR 10 live-reconfiguration snapshot: the `serve_loop` stress workload
//! run twice against a 4-replica router tier — once with static
//! membership (steady state), once while a churn thread continuously
//! **replaces replicas under traffic** (join a fresh replica, then drain
//! and retire the oldest, every cycle a full two-phase handoff). Identical
//! seeded traffic both times, so the delta is the cost of live
//! reconfiguration and nothing else. The acceptance gate is
//! `live-reconfiguration p99 ≤ 2× steady-state p99`.
//!
//! Also recorded: per-cycle **handoff windows** (wall-clock from the
//! join's export to the retire's slot drop — the interval during which a
//! membership change is in flight) and the membership chaos soak run
//! twice to prove its digest replays bit-identically. The soak asserts
//! its own invariants (per-phase accounting, zero context resets for
//! handed-off users, ≤2/N loss on an undrained kill) and would abort
//! this binary on violation.
//!
//! Usage: `cargo run --release -p sqp-bench --bin bench_pr10 [out.json]`

use sqp_bench::membership_loop::run_membership_soak;
use sqp_bench::serve_loop::{self, ServeLoopConfig, ServeLoopReport};
use sqp_router::{RouterConfig, RouterEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

const REPLICAS: usize = 4;
const MAX_P99_RATIO: f64 = 2.0;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn check(report: &ServeLoopReport, label: &str) {
    assert!(
        report.nonempty_suggestions > 0,
        "{label}: traffic never produced a suggestion"
    );
}

fn serve_loop_json(report: &ServeLoopReport, indent: &str) -> String {
    let mut json = String::new();
    json.push_str(&format!("{indent}\"ops_total\": {},\n", report.ops_total));
    json.push_str(&format!(
        "{indent}\"nonempty_suggestions\": {},\n",
        report.nonempty_suggestions
    ));
    json.push_str(&format!(
        "{indent}\"elapsed_secs\": {:.3},\n",
        report.elapsed_secs
    ));
    json.push_str(&format!(
        "{indent}\"throughput_ops_per_sec\": {:.0},\n",
        report.throughput_ops_per_sec
    ));
    json.push_str(&format!("{indent}\"p50_us\": {:.1},\n", report.p50_us));
    json.push_str(&format!("{indent}\"p99_us\": {:.1},\n", report.p99_us));
    json.push_str(&format!("{indent}\"max_us\": {:.1}\n", report.max_us));
    json
}

/// What the churn thread did while the live run's traffic was flowing.
struct ChurnOutcome {
    cycles: u64,
    sessions_moved: u64,
    window_mean_ms: f64,
    window_max_ms: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".into());

    // No mid-run retrains: both runs isolate membership cost from model
    // publication cost (bench_pr7 already gates the latter).
    let cfg = ServeLoopConfig {
        swaps: 0,
        ..ServeLoopConfig::bench()
    };
    let (snapshot, vocabulary, records) = serve_loop::build_parts(&cfg);
    let router_config = RouterConfig {
        replicas: REPLICAS,
        ..RouterConfig::default()
    };

    eprintln!(
        "serve_loop on a {REPLICAS}-replica tier, static membership: {} threads x {} ops…",
        cfg.threads, cfg.ops_per_thread
    );
    let steady_router = RouterEngine::new(snapshot.clone(), router_config);
    let steady = serve_loop::run_on(&steady_router, &cfg, &vocabulary, &records);
    eprintln!(
        "  {:.0} ops/s | p50 {:.1}µs p99 {:.1}µs max {:.1}µs",
        steady.throughput_ops_per_sec, steady.p50_us, steady.p99_us, steady.max_us
    );
    check(&steady, "steady");

    eprintln!("same traffic while replicas are replaced under it (join + drain + retire)…");
    let live_router = RouterEngine::new(snapshot, router_config);
    let stop = AtomicBool::new(false);
    let mut live_opt = None;
    let churn = std::thread::scope(|scope| {
        let churner = {
            let router = &live_router;
            let stop = &stop;
            scope.spawn(move || {
                let mut cycles = 0u64;
                let mut sessions_moved = 0u64;
                let mut windows_ms: Vec<f64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // Rolling replacement: one fresh replica in, the
                    // oldest one gracefully out. `now = 0` keeps every
                    // session live for the handoff regardless of the
                    // workload's logical clock (`saturating_sub`).
                    let window_started = Instant::now();
                    let joined = router.join_replica(0);
                    let victim = router
                        .replica_ids()
                        .into_iter()
                        .find(|&id| id != joined.replica)
                        .expect("a tier this size always has an elder");
                    let drained = router.begin_drain(victim, 0).expect("drain the elder");
                    router.retire_replica(victim).expect("retire the elder");
                    windows_ms.push(window_started.elapsed().as_secs_f64() * 1_000.0);
                    cycles += 1;
                    sessions_moved += (joined.moved_sessions + drained.moved_sessions) as u64;
                    // Operator pacing: reconfiguration is continuous but
                    // not a tight spin.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                let mean = windows_ms.iter().sum::<f64>() / windows_ms.len().max(1) as f64;
                let max = windows_ms.iter().fold(0.0f64, |a, &b| a.max(b));
                ChurnOutcome {
                    cycles,
                    sessions_moved,
                    window_mean_ms: mean,
                    window_max_ms: max,
                }
            })
        };
        live_opt = Some(serve_loop::run_on(
            &live_router,
            &cfg,
            &vocabulary,
            &records,
        ));
        stop.store(true, Ordering::Relaxed);
        churner.join().expect("churn thread")
    });
    let live = live_opt.expect("live run report");
    eprintln!(
        "  {:.0} ops/s | p50 {:.1}µs p99 {:.1}µs max {:.1}µs",
        live.throughput_ops_per_sec, live.p50_us, live.p99_us, live.max_us
    );
    eprintln!(
        "  {} replacement cycles, {} sessions handed off, handoff window mean {:.2}ms max {:.2}ms",
        churn.cycles, churn.sessions_moved, churn.window_mean_ms, churn.window_max_ms
    );
    check(&live, "live");
    assert!(
        churn.cycles > 0,
        "the live run never reconfigured — the comparison is vacuous"
    );
    assert!(
        churn.sessions_moved > 0,
        "reconfiguration never moved a session — the handoff was not exercised"
    );
    let tier = live_router.stats();
    assert!(tier.draining.is_empty(), "a churn cycle was left half-done");
    assert_eq!(tier.replica_ids.len(), REPLICAS);

    let p50_ratio = live.p50_us / steady.p50_us.max(1e-9);
    let p99_ratio = live.p99_us / steady.p99_us.max(1e-9);
    let throughput_ratio = live.throughput_ops_per_sec / steady.throughput_ops_per_sec.max(1e-9);
    eprintln!(
        "  live/steady: p50 {p50_ratio:.2}x, p99 {p99_ratio:.2}x, throughput {throughput_ratio:.2}x"
    );
    assert!(
        p99_ratio <= MAX_P99_RATIO,
        "live-reconfiguration p99 {:.1}µs exceeds {MAX_P99_RATIO}x the steady-state p99 {:.1}µs",
        live.p99_us,
        steady.p99_us
    );

    eprintln!("membership chaos soak, replayed twice…");
    let soak = run_membership_soak(7);
    let replay = run_membership_soak(7);
    assert_eq!(
        soak, replay,
        "membership soak did not replay bit-identically"
    );
    eprintln!(
        "  join moved {}, drain moved {}, kill lost {}, digest {:#018x} (replay identical)",
        soak.join_moved, soak.drain_moved, soak.kill_lost, soak.digest
    );

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"threads\": {}, \"ops_per_thread\": {}, \"users_per_thread\": {}, \"batch_size\": {}, \"swaps\": {}, \"corpus_sessions\": {}, \"seed\": {}}},\n",
        cfg.threads,
        cfg.ops_per_thread,
        cfg.users_per_thread,
        cfg.batch_size,
        cfg.swaps,
        cfg.corpus_sessions,
        cfg.seed,
    ));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"router_replicas\": {REPLICAS},\n"));
    json.push_str("  \"steady_membership\": {\n");
    json.push_str(&serve_loop_json(&steady, "    "));
    json.push_str("  },\n");
    json.push_str("  \"live_reconfiguration\": {\n");
    json.push_str(&serve_loop_json(&live, "    "));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"live_vs_steady\": {{\"p50_ratio\": {p50_ratio:.2}, \"p99_ratio\": {p99_ratio:.2}, \"throughput_ratio\": {throughput_ratio:.2}, \"max_p99_ratio_allowed\": {MAX_P99_RATIO:.1}}},\n"
    ));
    json.push_str(&format!(
        "  \"churn\": {{\"cycles\": {}, \"sessions_moved\": {}, \"handoff_window_mean_ms\": {:.3}, \"handoff_window_max_ms\": {:.3}, \"final_replicas\": {}, \"final_ring_generation\": {}}},\n",
        churn.cycles,
        churn.sessions_moved,
        churn.window_mean_ms,
        churn.window_max_ms,
        tier.replica_ids.len(),
        tier.ring_generation,
    ));
    json.push_str(&format!(
        "  \"membership_soak\": {{\"seed\": 7, \"join_moved\": {}, \"drain_moved\": {}, \"kill_lost\": {}, \"final_replicas\": {:?}, \"final_ring_generation\": {}, \"digest\": \"{:#018x}\", \"replay_identical\": true}},\n",
        soak.join_moved,
        soak.drain_moved,
        soak.kill_lost,
        soak.final_replicas,
        soak.final_ring_generation,
        soak.digest,
    ));
    json.push_str(&format!(
        "  \"notes\": \"{}\"\n",
        json_escape(
            "steady_membership and live_reconfiguration run byte-identical seeded traffic \
             against equal-size router tiers; the only difference is the churn thread \
             continuously replacing replicas (join a fresh one, two-phase-drain and retire \
             the oldest) during the live run, so the latency delta is the cost of live \
             reconfiguration itself. handoff_window_* measures one full replacement cycle \
             (export, import, two ring swaps, slot drop) from the control plane's point of \
             view; serving never blocks on it — traffic sees at most stripe-lock contention \
             while sessions are copied. membership_soak asserts its invariants internally \
             (per-phase accounting, zero context resets for handed-off users, loss bounded \
             by the ring's 2/N remap property on an undrained kill, digest replay) and \
             aborts this binary on violation"
        )
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR10.json");
    eprintln!(
        "wrote {out_path}: live p99 {:.1}µs vs steady p99 {:.1}µs ({p99_ratio:.2}x, gate {MAX_P99_RATIO}x)",
        live.p99_us, steady.p99_us
    );
}
