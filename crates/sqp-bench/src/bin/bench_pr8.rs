//! PR 8 network-serving snapshot: the `serve_loop` stress workload run
//! twice on identical seeded traffic — once in-process against a
//! `ServeEngine`, once through `sqp-net` over real loopback sockets
//! (`net_loop`), where each op is a full framed TCP round trip and the
//! mid-run publish arrives through the admin port from a snapshot file on
//! disk. The delta between the two reports is the network stack: framing,
//! syscalls, and the server's reader/worker handoff.
//!
//! The acceptance gate is `wire p99 ≤ 5× in-process p99`. The p99 op is a
//! `batch_size`-entry batched suggest on both sides (one every 8th op), so
//! the ratio compares real model work plus the wire against real model
//! work alone — not a syscall against a hashmap probe.
//!
//! Usage: `cargo run --release -p sqp-bench --bin bench_pr8 [out.json]`

use sqp_bench::net_loop;
use sqp_bench::serve_loop::{self, ServeLoopConfig, ServeLoopReport};

const MAX_P99_RATIO: f64 = 5.0;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn check(report: &ServeLoopReport, cfg: &ServeLoopConfig, label: &str) {
    assert_eq!(
        report.swaps_completed, cfg.swaps as u64,
        "{label}: trainer failed to publish"
    );
    assert!(
        report.mid_run_swaps > 0,
        "{label}: no publication landed while traffic was flowing"
    );
    assert!(
        report.nonempty_suggestions > 0,
        "{label}: traffic never produced a suggestion"
    );
    assert_eq!(
        report.final_generation, cfg.swaps as u64,
        "{label}: a publication went missing"
    );
}

fn serve_loop_json(report: &ServeLoopReport, indent: &str) -> String {
    let mut json = String::new();
    json.push_str(&format!("{indent}\"ops_total\": {},\n", report.ops_total));
    json.push_str(&format!(
        "{indent}\"suggests_total\": {},\n",
        report.suggests_total
    ));
    json.push_str(&format!(
        "{indent}\"nonempty_suggestions\": {},\n",
        report.nonempty_suggestions
    ));
    json.push_str(&format!(
        "{indent}\"elapsed_secs\": {:.3},\n",
        report.elapsed_secs
    ));
    json.push_str(&format!(
        "{indent}\"throughput_ops_per_sec\": {:.0},\n",
        report.throughput_ops_per_sec
    ));
    json.push_str(&format!("{indent}\"p50_us\": {:.1},\n", report.p50_us));
    json.push_str(&format!("{indent}\"p99_us\": {:.1},\n", report.p99_us));
    json.push_str(&format!("{indent}\"max_us\": {:.1},\n", report.max_us));
    json.push_str(&format!(
        "{indent}\"mid_run_swaps\": {},\n",
        report.mid_run_swaps
    ));
    json.push_str(&format!(
        "{indent}\"final_generation\": {},\n",
        report.final_generation
    ));
    json.push_str(&format!(
        "{indent}\"active_sessions_at_end\": {}\n",
        report.active_sessions
    ));
    json
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR8.json".into());

    // A wire-friendly profile of the serve_loop workload: big batches (the
    // p99 op on both sides), a mid-run publish, a VMM-trained corpus.
    let cfg = ServeLoopConfig {
        threads: 4,
        ops_per_thread: 6_000,
        users_per_thread: 256,
        suggest_k: 5,
        batch_size: 512,
        swaps: 1,
        corpus_sessions: 5_000,
        seed: 42,
    };

    eprintln!(
        "serve_loop in-process: {} threads x {} ops, batch {}, {} swap…",
        cfg.threads, cfg.ops_per_thread, cfg.batch_size, cfg.swaps
    );
    let inproc = serve_loop::run(&cfg);
    eprintln!(
        "  {:.0} ops/s | p50 {:.1}µs p99 {:.1}µs max {:.1}µs",
        inproc.throughput_ops_per_sec, inproc.p50_us, inproc.p99_us, inproc.max_us
    );
    check(&inproc, &cfg, "in-process");

    eprintln!("same workload over TCP (sqp-net, admin-port publish)…");
    let wire = net_loop::run_wire(&cfg);
    eprintln!(
        "  {:.0} ops/s | p50 {:.1}µs p99 {:.1}µs max {:.1}µs",
        wire.throughput_ops_per_sec, wire.p50_us, wire.p99_us, wire.max_us
    );
    check(&wire, &cfg, "wire");

    let p50_ratio = wire.p50_us / inproc.p50_us.max(1e-9);
    let p99_ratio = wire.p99_us / inproc.p99_us.max(1e-9);
    let throughput_ratio = wire.throughput_ops_per_sec / inproc.throughput_ops_per_sec.max(1e-9);
    eprintln!(
        "  wire/in-process: p50 {p50_ratio:.2}x, p99 {p99_ratio:.2}x, throughput {throughput_ratio:.2}x"
    );
    assert!(
        p99_ratio <= MAX_P99_RATIO,
        "wire p99 {:.1}µs exceeds {MAX_P99_RATIO}x the in-process p99 {:.1}µs",
        wire.p99_us,
        inproc.p99_us
    );

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"threads\": {}, \"ops_per_thread\": {}, \"users_per_thread\": {}, \"suggest_k\": {}, \"batch_size\": {}, \"swaps\": {}, \"corpus_sessions\": {}, \"seed\": {}}},\n",
        cfg.threads,
        cfg.ops_per_thread,
        cfg.users_per_thread,
        cfg.suggest_k,
        cfg.batch_size,
        cfg.swaps,
        cfg.corpus_sessions,
        cfg.seed,
    ));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str("  \"in_process\": {\n");
    json.push_str(&serve_loop_json(&inproc, "    "));
    json.push_str("  },\n");
    json.push_str("  \"wire\": {\n");
    json.push_str(&serve_loop_json(&wire, "    "));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"wire_vs_in_process\": {{\"p50_ratio\": {p50_ratio:.2}, \"p99_ratio\": {p99_ratio:.2}, \"throughput_ratio\": {throughput_ratio:.2}, \"max_p99_ratio_allowed\": {MAX_P99_RATIO:.1}}},\n"
    ));
    json.push_str(&format!(
        "  \"notes\": \"{}\"\n",
        json_escape(
            "in_process and wire run byte-identical seeded traffic (same corpus, same \
             per-thread PRNGs, same op mix including the EVICT maintenance sweeps), so their \
             delta is the network stack: u32-length framing, one loopback TCP round trip per \
             op, and the server's reader-thread/worker-pool handoff. Every 8th op is a \
             batch_size-entry batched suggest, which dominates the p99 on both sides — the \
             gate therefore compares the wire's overhead against real model work, not against \
             a near-zero baseline. The wire trainer publishes through the admin port from a \
             snapshot file (save_snapshot + PUBLISH frame), exercising the operator path \
             rather than an in-process publish"
        )
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR8.json");
    eprintln!(
        "wrote {out_path}: wire p99 {:.1}µs vs in-process p99 {:.1}µs ({p99_ratio:.2}x, gate {MAX_P99_RATIO}x)",
        wire.p99_us, inproc.p99_us
    );
}
