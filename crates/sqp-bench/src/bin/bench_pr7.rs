//! PR 7 routed-serving snapshot: the `serve_loop` stress workload run
//! twice — once against a single `ServeEngine`, once against a 4-replica
//! `RouterEngine` — on identical seeded traffic, so the delta is the
//! routing layer (one consistent-hash lookup per request) and nothing
//! else. The acceptance gate is `router p99 ≤ 2× single-engine p99`.
//!
//! Also recorded: the generation-skew soak (a rolling upgrade held on
//! mixed generations under 4 worker threads of provenance-checked traffic)
//! and the chaos roll (one replica's snapshot read failed mid-roll,
//! replayed twice to prove the digest is bit-identical). Both scenarios
//! assert their own guarantees and would abort this binary on violation.
//!
//! Usage: `cargo run --release -p sqp-bench --bin bench_pr7 [out.json]`

use sqp_bench::router_loop::{self, run_chaos_roll, run_skew_soak};
use sqp_bench::serve_loop::{self, ServeLoopConfig, ServeLoopReport};

const ROUTER_REPLICAS: usize = 4;
const MAX_P99_RATIO: f64 = 2.0;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn check(report: &ServeLoopReport, cfg: &ServeLoopConfig, label: &str) {
    assert_eq!(
        report.swaps_completed, cfg.swaps as u64,
        "{label}: trainer failed to publish"
    );
    assert!(
        report.mid_run_swaps > 0,
        "{label}: no publication landed while traffic was flowing"
    );
    assert!(
        report.nonempty_suggestions > 0,
        "{label}: traffic never produced a suggestion"
    );
    assert_eq!(
        report.final_generation, cfg.swaps as u64,
        "{label}: the tier's trailing edge missed a publication"
    );
}

fn serve_loop_json(report: &ServeLoopReport, indent: &str) -> String {
    let mut json = String::new();
    json.push_str(&format!("{indent}\"ops_total\": {},\n", report.ops_total));
    json.push_str(&format!(
        "{indent}\"suggests_total\": {},\n",
        report.suggests_total
    ));
    json.push_str(&format!(
        "{indent}\"nonempty_suggestions\": {},\n",
        report.nonempty_suggestions
    ));
    json.push_str(&format!(
        "{indent}\"elapsed_secs\": {:.3},\n",
        report.elapsed_secs
    ));
    json.push_str(&format!(
        "{indent}\"throughput_ops_per_sec\": {:.0},\n",
        report.throughput_ops_per_sec
    ));
    json.push_str(&format!("{indent}\"p50_us\": {:.1},\n", report.p50_us));
    json.push_str(&format!("{indent}\"p99_us\": {:.1},\n", report.p99_us));
    json.push_str(&format!("{indent}\"max_us\": {:.1},\n", report.max_us));
    json.push_str(&format!(
        "{indent}\"mid_run_swaps\": {},\n",
        report.mid_run_swaps
    ));
    json.push_str(&format!(
        "{indent}\"final_generation\": {},\n",
        report.final_generation
    ));
    json.push_str(&format!(
        "{indent}\"active_sessions_at_end\": {}\n",
        report.active_sessions
    ));
    json
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR7.json".into());

    let cfg = ServeLoopConfig::bench();
    eprintln!(
        "serve_loop on one engine: {} threads x {} ops, {} swaps…",
        cfg.threads, cfg.ops_per_thread, cfg.swaps
    );
    let single = serve_loop::run(&cfg);
    eprintln!(
        "  {:.0} ops/s | p50 {:.1}µs p99 {:.1}µs max {:.1}µs",
        single.throughput_ops_per_sec, single.p50_us, single.p99_us, single.max_us
    );
    check(&single, &cfg, "single");

    eprintln!("same workload on a {ROUTER_REPLICAS}-replica router tier…");
    let routed = router_loop::run_router(&cfg, ROUTER_REPLICAS);
    eprintln!(
        "  {:.0} ops/s | p50 {:.1}µs p99 {:.1}µs max {:.1}µs",
        routed.throughput_ops_per_sec, routed.p50_us, routed.p99_us, routed.max_us
    );
    check(&routed, &cfg, "router");

    let p50_ratio = routed.p50_us / single.p50_us.max(1e-9);
    let p99_ratio = routed.p99_us / single.p99_us.max(1e-9);
    let throughput_ratio = routed.throughput_ops_per_sec / single.throughput_ops_per_sec.max(1e-9);
    eprintln!(
        "  router/single: p50 {p50_ratio:.2}x, p99 {p99_ratio:.2}x, throughput {throughput_ratio:.2}x"
    );
    assert!(
        p99_ratio <= MAX_P99_RATIO,
        "router p99 {:.1}µs exceeds {MAX_P99_RATIO}x the single-engine p99 {:.1}µs",
        routed.p99_us,
        single.p99_us
    );

    eprintln!("generation-skew soak (4 workers, roll held per step)…");
    let skew = run_skew_soak(4, 2_000);
    eprintln!(
        "  {} calls | old/new during roll: {}/{} | max skew {}",
        skew.ops_total, skew.old_during_roll, skew.new_during_roll, skew.max_skew_observed
    );

    eprintln!("chaos roll (one replica's read failed), replayed twice…");
    let chaos = run_chaos_roll(7);
    let replay = run_chaos_roll(7);
    assert_eq!(chaos, replay, "chaos roll did not replay bit-identically");
    eprintln!(
        "  victim replica {} quarantined, digest {:#018x} (replay identical)",
        chaos.failed_replica, chaos.digest
    );

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"threads\": {}, \"ops_per_thread\": {}, \"users_per_thread\": {}, \"batch_size\": {}, \"swaps\": {}, \"corpus_sessions\": {}, \"seed\": {}}},\n",
        cfg.threads,
        cfg.ops_per_thread,
        cfg.users_per_thread,
        cfg.batch_size,
        cfg.swaps,
        cfg.corpus_sessions,
        cfg.seed,
    ));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"router_replicas\": {ROUTER_REPLICAS},\n"));
    json.push_str("  \"single_engine\": {\n");
    json.push_str(&serve_loop_json(&single, "    "));
    json.push_str("  },\n");
    json.push_str("  \"router\": {\n");
    json.push_str(&serve_loop_json(&routed, "    "));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"router_vs_single\": {{\"p50_ratio\": {p50_ratio:.2}, \"p99_ratio\": {p99_ratio:.2}, \"throughput_ratio\": {throughput_ratio:.2}, \"max_p99_ratio_allowed\": {MAX_P99_RATIO:.1}}},\n"
    ));
    json.push_str(&format!(
        "  \"skew_soak\": {{\"threads\": {}, \"replicas\": {}, \"ops_total\": {}, \"saw_old\": {}, \"saw_new\": {}, \"old_during_roll\": {}, \"new_during_roll\": {}, \"max_skew_observed\": {}, \"final_generation\": {}}},\n",
        skew.threads,
        skew.replicas,
        skew.ops_total,
        skew.saw_old,
        skew.saw_new,
        skew.old_during_roll,
        skew.new_during_roll,
        skew.max_skew_observed,
        skew.final_generation,
    ));
    json.push_str(&format!(
        "  \"chaos_roll\": {{\"seed\": 7, \"failed_replica\": {}, \"upgraded\": {:?}, \"skew_after_roll\": {}, \"read_errors\": {}, \"digest\": \"{:#018x}\", \"replay_identical\": true}},\n",
        chaos.failed_replica,
        chaos.upgraded,
        chaos.skew_after_roll,
        chaos.read_errors,
        chaos.digest,
    ));
    json.push_str(&format!(
        "  \"notes\": \"{}\"\n",
        json_escape(
            "single_engine and router run byte-identical seeded traffic (same corpus, same \
             per-thread PRNGs), so their delta is the routing layer: one consistent-hash ring \
             lookup per request plus per-replica fan-out on publish. The router's sessions \
             and admission budget shard across replicas, which can make contention *lower* \
             than the single engine at equal thread counts. skew_soak and chaos_roll assert \
             their invariants internally (torn reads, session migration, quarantine, digest \
             replay) and abort this binary on violation; their numbers here are evidence the \
             scenarios were exercised, not measurements of the serve path"
        )
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR7.json");
    eprintln!(
        "wrote {out_path}: router p99 {:.1}µs vs single p99 {:.1}µs ({p99_ratio:.2}x, gate {MAX_P99_RATIO}x)",
        routed.p99_us, single.p99_us
    );
}
