//! PR 1 perf baseline: times the training core before/after the arena
//! suffix-trie rewrite on a fixed seed corpus and writes `BENCH_PR1.json`.
//!
//! The headline comparison — old hashmap counter vs. arena trie — runs
//! **interleaved** (alternating A/B rounds, median of each) so machine-load
//! drift cannot inflate or deflate the ratio. The corpus is the 10k-session
//! unaggregated counting workload (seed 42): aggregation collapses the
//! simulated logs by ~10×, which would leave sub-millisecond timings that
//! drown in scheduler noise.
//!
//! Also measured: full VMM training (sequential + parallel knob) and the
//! per-call serve latency of `recommend_into` (allocation-free; asserted by
//! `tests/alloc_free_serve.rs`).
//!
//! Usage: `cargo run --release -p sqp-bench --bin bench_pr1 [out.json]`

use sqp_bench::baseline::BaselineWindowCounts;
use sqp_bench::harness::{format_ns, measure, Stats};
use sqp_core::counts::WindowCounts;
use sqp_core::{Vmm, VmmConfig};
use std::hint::black_box;
use std::time::Instant;

const N_SESSIONS: usize = 10_000;
const SEED: u64 = 42;
const AB_ROUNDS: usize = 15;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".into());

    eprintln!("building {N_SESSIONS}-session corpus (seed {SEED})…");
    let sessions = sqp_bench::bench_unaggregated_sessions(N_SESSIONS, SEED);
    assert_eq!(sessions.len(), N_SESSIONS);
    let contexts = sqp_bench::bench_contexts(N_SESSIONS, SEED, 2, 128);
    assert!(
        !contexts.is_empty(),
        "bench corpus has no length-2 contexts"
    );

    // Interleaved A/B/C: baseline hashmap vs arena trie vs sharded arena.
    eprintln!("timing window counting ({AB_ROUNDS} interleaved rounds)…");
    let (mut t_base, mut t_trie, mut t_par) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..AB_ROUNDS {
        let t = Instant::now();
        black_box(BaselineWindowCounts::build(&sessions, None));
        t_base.push(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        black_box(WindowCounts::build_with(&sessions, None, false));
        t_trie.push(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        black_box(WindowCounts::build_with(&sessions, None, true));
        t_par.push(t.elapsed().as_nanos() as f64);
    }
    let mut results: Vec<Stats> = Vec::new();
    let mut push_ab = |id: &str, samples: &Vec<f64>| {
        let stats = Stats {
            id: id.to_owned(),
            median_ns: median(samples.clone()),
            mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
            min_ns: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            iters: 1,
            samples: samples.len(),
        };
        eprintln!("  {:<36} {:>14}", stats.id, format_ns(stats.median_ns));
        results.push(stats);
    };
    push_ab("window_counts_build_baseline", &t_base);
    push_ab("window_counts_build", &t_trie);
    push_ab("window_counts_build_parallel", &t_par);

    eprintln!("timing VMM training…");
    let mut run = |id: &str, f: &mut dyn FnMut()| {
        let stats = measure(id, 10, f);
        eprintln!("  {:<36} {:>14}", stats.id, format_ns(stats.median_ns));
        results.push(stats);
    };
    run("vmm_train", &mut || {
        black_box(Vmm::train(&sessions, VmmConfig::with_epsilon(0.05)));
    });
    run("vmm_train_parallel", &mut || {
        black_box(Vmm::train(
            &sessions,
            VmmConfig::with_epsilon(0.05).parallel(true),
        ));
    });

    eprintln!("timing prediction…");
    let vmm = Vmm::train(&sessions, VmmConfig::with_epsilon(0.05));
    let mut buf = Vec::with_capacity(8);
    let mut i = 0usize;
    run("vmm_predict_top5", &mut || {
        let ctx = &contexts[i % contexts.len()];
        i += 1;
        vmm.recommend_into(black_box(ctx), 5, &mut buf);
        black_box(&buf);
    });

    let by_id = |id: &str| -> &Stats {
        results
            .iter()
            .find(|s| s.id == id)
            .unwrap_or_else(|| panic!("missing {id}"))
    };
    let speedup_seq =
        by_id("window_counts_build_baseline").median_ns / by_id("window_counts_build").median_ns;
    let speedup_par = by_id("window_counts_build_baseline").median_ns
        / by_id("window_counts_build_parallel").median_ns;
    let train_speedup_par = by_id("vmm_train").median_ns / by_id("vmm_train_parallel").median_ns;

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"corpus\": {{\"sessions\": {N_SESSIONS}, \"seed\": {SEED}, \"weighting\": \"unaggregated\"}},\n"
    ));
    json.push_str(&format!("  \"host_threads\": {threads},\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, s) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.0}, \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"iters\": {}, \"samples\": {}}}{}\n",
            json_escape(&s.id),
            s.median_ns,
            s.mean_ns,
            s.min_ns,
            s.iters,
            s.samples,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"window_counts_speedup_vs_baseline\": {speedup_seq:.2},\n"
    ));
    json.push_str(&format!(
        "  \"window_counts_speedup_vs_baseline_parallel\": {speedup_par:.2},\n"
    ));
    json.push_str(&format!(
        "  \"vmm_train_parallel_speedup\": {train_speedup_par:.2},\n"
    ));
    json.push_str(
        "  \"notes\": \"predict path allocates nothing per call (tests/alloc_free_serve.rs); \
         baseline = pre-refactor hashmap window counter (sqp_bench::baseline); on single-core \
         hosts the parallel knob falls back to sequential counting\"\n",
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR1.json");
    eprintln!(
        "wrote {out_path}: counting speedup {speedup_seq:.2}x sequential, {speedup_par:.2}x parallel"
    );
}
