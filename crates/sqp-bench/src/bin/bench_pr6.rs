//! PR 6 resilience snapshot: runs the seeded chaos soak and the overload
//! scenario, and writes `BENCH_PR6.json`.
//!
//! Three questions an operator actually asks about the resilient stack:
//!
//! * **Does the failure machinery fire, and is it replayable?** (breaker
//!   trips/recoveries, quarantines, rollbacks, save retries — and the same
//!   seed produces a bit-identical chaos digest twice)
//! * **What does overload shedding cost?** (shed vs answered under a
//!   bounded in-flight budget with every serve strike stalled)
//! * **What is serve latency under faults?** (p50/p99 of answered requests
//!   while the stall faults are live)
//!
//! Usage: `cargo run --release -p sqp-bench --bin bench_pr6 [out.json]`

use sqp_bench::chaos::{run_overload_soak, run_replay_soak};

const SEED: u64 = 42;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR6.json".into());

    eprintln!("replay soak (seed {SEED})…");
    let replay = run_replay_soak(SEED);
    eprintln!("replay soak again (verifying bit-identical digest)…");
    let again = run_replay_soak(SEED);
    assert_eq!(
        replay.digest, again.digest,
        "chaos digest must replay bit-identically from the seed"
    );
    assert_eq!(replay.script, again.script, "storyline must replay");
    let h = &replay.health;
    eprintln!(
        "  digest {:#018x} (replayed), script: {}",
        replay.digest,
        replay.script.join(" → ")
    );
    eprintln!(
        "  breaker trips {} / recoveries {}, quarantined {}, rollbacks {}, save retries {}",
        h.breaker_trips, h.breaker_recoveries, h.quarantined, h.rollbacks, h.save_retries
    );

    eprintln!("overload soak (budget 2, 8 stalled workers)…");
    let overload = run_overload_soak(SEED);
    eprintln!(
        "  {}/{} answered, {} shed, p50 {:.0} µs, p99 {:.0} µs",
        overload.answered, overload.total, overload.shed, overload.p50_us, overload.p99_us
    );
    assert_eq!(overload.answered + overload.shed, overload.total);
    assert_eq!(overload.in_flight_after, 0, "permits leaked");

    let json = format!(
        "{{\n  \"seed\": {SEED},\n  \"chaos_digest\": \"{:#018x}\",\n  \
         \"digest_replayed_identically\": true,\n  \
         \"script\": \"{}\",\n  \
         \"serving_requests_answered\": {},\n  \
         \"breaker_trips\": {},\n  \"breaker_recoveries\": {},\n  \
         \"quarantined\": {},\n  \"rollbacks\": {},\n  \"save_retries\": {},\n  \
         \"injected\": {{ \"panics\": {}, \"corrupt_writes\": {}, \"write_errors\": {}, \
         \"short_reads\": {}, \"delays\": {} }},\n  \
         \"overload\": {{ \"total\": {}, \"answered\": {}, \"shed\": {}, \
         \"p50_us\": {:.1}, \"p99_us\": {:.1} }},\n  \
         \"notes\": \"replay soak: 4 workers x 200 requests + 7-step scripted \
         supervised-retrain storyline (2 training panics -> breaker trip, cooldown -> \
         half-open recovery, corrupt write -> quarantine+rollback, 2 write errors -> \
         retry/backoff, short read -> second quarantine); digest verified bit-identical \
         across two runs. overload soak: max_in_flight=2, 8 workers, every serve strike \
         stalled 2 ms; latencies are answered requests under those faults\"\n}}\n",
        replay.digest,
        replay.script.join(" -> "),
        replay.served,
        h.breaker_trips,
        h.breaker_recoveries,
        h.quarantined,
        h.rollbacks,
        h.save_retries,
        replay.stats.panics,
        replay.stats.corrupt_writes,
        replay.stats.write_errors,
        replay.stats.short_reads,
        replay.stats.delays,
        overload.total,
        overload.answered,
        overload.shed,
        overload.p50_us,
        overload.p99_us,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_PR6.json");
    eprintln!("wrote {out_path}");
}
