//! PR 2 serving snapshot: runs the `serve_loop` stress harness — N worker
//! threads of mixed track/suggest/batched-suggest traffic against a
//! [`ServeEngine`](sqp_serve::ServeEngine) with mid-run model retrains
//! hot-swapped in — and writes throughput + latency percentiles to
//! `BENCH_PR2.json`.
//!
//! Also measured standalone: single-threaded `track_and_suggest` round-trip
//! latency (the per-request floor without cross-thread contention) and
//! batched vs. individual suggest throughput on a warm tracker, which
//! isolates what `suggest_batch`'s snapshot-load/lock/buffer amortization
//! buys.
//!
//! Usage: `cargo run --release -p sqp-bench --bin bench_pr2 [out.json]`

use sqp_bench::serve_loop::{self, ServeLoopConfig};
use sqp_serve::SuggestRequest;
use std::hint::black_box;
use std::time::Instant;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR2.json".into());

    let cfg = ServeLoopConfig::bench();
    eprintln!(
        "serve_loop: {} threads x {} ops, {} swaps, {}-session corpus…",
        cfg.threads, cfg.ops_per_thread, cfg.swaps, cfg.corpus_sessions
    );
    let report = serve_loop::run(&cfg);
    eprintln!(
        "  {:.0} ops/s over {:.2}s | p50 {:.1}µs p99 {:.1}µs max {:.1}µs | {} swaps | {} sessions live",
        report.throughput_ops_per_sec,
        report.elapsed_secs,
        report.p50_us,
        report.p99_us,
        report.max_us,
        report.swaps_completed,
        report.active_sessions,
    );
    assert_eq!(
        report.swaps_completed, cfg.swaps as u64,
        "trainer failed to publish"
    );
    assert!(
        report.mid_run_swaps > 0,
        "no publication landed while traffic was flowing"
    );
    assert!(
        report.nonempty_suggestions > 0,
        "traffic never produced a suggestion"
    );

    // Single-threaded round-trip floor.
    eprintln!("single-thread round-trip latency…");
    let (engine, vocabulary, _records) = serve_loop::build_engine(&cfg);
    let t = Instant::now();
    let single_iters = 50_000usize;
    for i in 0..single_iters {
        let q = &vocabulary[i % vocabulary.len()];
        black_box(engine.track_and_suggest((i % 256) as u64, q, 5, (i / 8) as u64));
    }
    let single_ns = t.elapsed().as_nanos() as f64 / single_iters as f64;
    eprintln!("  track_and_suggest: {:.0} ns/op", single_ns);

    // Batched vs individual suggest on a warm tracker.
    eprintln!("batched vs individual suggest…");
    let now = (single_iters / 8) as u64;
    let reqs: Vec<SuggestRequest> = (0..256).map(|u| SuggestRequest { user: u, k: 5 }).collect();
    let rounds = 400usize;
    let t = Instant::now();
    for _ in 0..rounds {
        black_box(engine.suggest_batch(&reqs, now));
    }
    let batch_ns_per_suggest = t.elapsed().as_nanos() as f64 / (rounds * reqs.len()) as f64;
    let t = Instant::now();
    for _ in 0..rounds {
        for r in &reqs {
            black_box(engine.suggest(r.user, r.k, now));
        }
    }
    let indiv_ns_per_suggest = t.elapsed().as_nanos() as f64 / (rounds * reqs.len()) as f64;
    let batch_speedup = indiv_ns_per_suggest / batch_ns_per_suggest;
    eprintln!(
        "  batched {batch_ns_per_suggest:.0} ns/suggest vs individual {indiv_ns_per_suggest:.0} ns/suggest ({batch_speedup:.2}x)"
    );

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"threads\": {}, \"ops_per_thread\": {}, \"users_per_thread\": {}, \"batch_size\": {}, \"swaps\": {}, \"corpus_sessions\": {}, \"seed\": {}}},\n",
        cfg.threads,
        cfg.ops_per_thread,
        cfg.users_per_thread,
        cfg.batch_size,
        cfg.swaps,
        cfg.corpus_sessions,
        cfg.seed,
    ));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str("  \"serve_loop\": {\n");
    json.push_str(&format!("    \"ops_total\": {},\n", report.ops_total));
    json.push_str(&format!(
        "    \"suggests_total\": {},\n",
        report.suggests_total
    ));
    json.push_str(&format!(
        "    \"nonempty_suggestions\": {},\n",
        report.nonempty_suggestions
    ));
    json.push_str(&format!(
        "    \"elapsed_secs\": {:.3},\n",
        report.elapsed_secs
    ));
    json.push_str(&format!(
        "    \"throughput_ops_per_sec\": {:.0},\n",
        report.throughput_ops_per_sec
    ));
    json.push_str(&format!("    \"p50_us\": {:.1},\n", report.p50_us));
    json.push_str(&format!("    \"p99_us\": {:.1},\n", report.p99_us));
    json.push_str(&format!("    \"max_us\": {:.1},\n", report.max_us));
    json.push_str(&format!(
        "    \"swaps_completed\": {},\n",
        report.swaps_completed
    ));
    json.push_str(&format!(
        "    \"mid_run_swaps\": {},\n",
        report.mid_run_swaps
    ));
    json.push_str(&format!(
        "    \"final_generation\": {},\n",
        report.final_generation
    ));
    json.push_str(&format!(
        "    \"active_sessions_at_end\": {},\n",
        report.active_sessions
    ));
    json.push_str(&format!(
        "    \"evicted_at_end\": {}\n",
        report.evicted_at_end
    ));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"single_thread_track_and_suggest_ns\": {single_ns:.0},\n"
    ));
    json.push_str(&format!(
        "  \"suggest_batched_ns\": {batch_ns_per_suggest:.0},\n"
    ));
    json.push_str(&format!(
        "  \"suggest_individual_ns\": {indiv_ns_per_suggest:.0},\n"
    ));
    json.push_str(&format!("  \"batch_speedup\": {batch_speedup:.2},\n"));
    json.push_str(&format!(
        "  \"notes\": \"{}\"\n",
        json_escape(
            "mixed traffic = track_and_suggest round trips + batched suggests + rare evict \
             sweeps; swaps are full retrains published atomically mid-run (Swap cell); \
             latencies are per-operation wall clock including batch calls; the batched-vs- \
             individual comparison is allocation-dominated (one Vec + k Strings per result) \
             and the batch path's lock/snapshot amortization only separates from individual \
             calls under multi-core contention, so treat batch_speedup as host-dependent"
        )
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR2.json");
    eprintln!(
        "wrote {out_path}: {:.0} ops/s, p99 {:.1}µs, {} mid-run swaps",
        report.throughput_ops_per_sec, report.p99_us, report.swaps_completed
    );
}
