//! Wire-level counterpart of [`serve_loop`](crate::serve_loop): the same
//! seeded workload replayed through `sqp-net` over real loopback sockets.
//!
//! Each worker thread owns one keep-alive [`NetClient`] and drives the
//! **exact** `serve_loop` op mix — same per-thread PRNG streams, same
//! logical clock, same batch cadence, same out-of-vocabulary probes, same
//! rare eviction sweeps (the `EVICT` opcode exists precisely so this loop
//! can mirror the in-process one). The trainer retrains mid-run like
//! `serve_loop`'s, but publishes the way an operator would: it saves each
//! snapshot to disk and pushes it through the **admin port** with a
//! `PUBLISH` frame.
//!
//! Because the workload is byte-identical to [`run`](crate::serve_loop::run)
//! for the same [`ServeLoopConfig`], subtracting the two
//! [`ServeLoopReport`]s isolates the network stack: framing, one syscall
//! round trip per op, and the server's reader/worker handoff. `bench_pr8`
//! gates that overhead (wire p99 ≤ 5× in-process p99).

use crate::serve_loop::{build_engine, ServeLoopConfig, ServeLoopReport};
use sqp_common::rng::{Rng, StdRng};
use sqp_core::VmmConfig;
use sqp_net::{BatchAnswer, BatchEntry, NetClient, NetServer, ServeAnswer, ServerConfig};
use sqp_serve::{ModelSnapshot, ModelSpec, TrainingConfig};
use sqp_store::{save_snapshot, SnapshotMeta};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Client-side read/write deadline; a bench run must never wedge on a
/// stuck socket.
const WIRE_DEADLINE: Duration = Duration::from_secs(30);

/// Run the [`serve_loop`](crate::serve_loop) workload over TCP: a
/// [`NetServer`] fronting a fresh `ServeEngine`, `cfg.threads` keep-alive
/// clients of mixed traffic, and `cfg.swaps` mid-run snapshot publishes
/// pushed through the admin port from disk. Returns the same report shape
/// as the in-process run, measured at the client (full round-trip
/// latency).
pub fn run_wire(cfg: &ServeLoopConfig) -> ServeLoopReport {
    assert!(cfg.threads >= 1 && cfg.ops_per_thread > 0);
    let (engine, vocabulary, records) = build_engine(cfg);
    let server = NetServer::start(engine, ServerConfig::default()).expect("net server start");
    let serve_addr = server.serve_addr();
    let admin_addr = server.admin_addr();

    let scratch = std::env::temp_dir().join(format!("sqp-net-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("bench scratch dir");

    let total_ops_target = (cfg.threads * cfg.ops_per_thread) as u64;
    let ops_done = AtomicU64::new(0);
    let swaps_done = AtomicU64::new(0);
    let mid_run_swaps = AtomicU64::new(0);
    let nonempty = AtomicU64::new(0);
    let active_workers = AtomicU64::new(0);

    let started = Instant::now();
    let mut latencies: Vec<Vec<u64>> = Vec::new();
    let mut elapsed = 0.0f64;
    std::thread::scope(|scope| {
        // Trainer: retrain at evenly spaced points, then publish the way an
        // operator would — save the snapshot and push its path through the
        // admin port.
        let trainer_records = &records;
        let trainer_scratch = &scratch;
        let ops_done_ref = &ops_done;
        let swaps_done_ref = &swaps_done;
        let mid_run_swaps_ref = &mid_run_swaps;
        let active_workers_ref = &active_workers;
        let n_swaps = cfg.swaps;
        scope.spawn(move || {
            if n_swaps == 0 {
                return;
            }
            let mut admin =
                NetClient::connect_timeout(admin_addr, WIRE_DEADLINE).expect("admin connect");
            for swap in 0..n_swaps {
                let threshold = total_ops_target * (swap as u64 + 1) / (n_swaps as u64 + 1);
                while ops_done_ref.load(Ordering::Relaxed) < threshold {
                    std::thread::yield_now();
                }
                // Alternate the component so successive snapshots differ
                // (mirrors the in-process trainer).
                let eps = if swap % 2 == 0 { 0.0 } else { 0.1 };
                let training = TrainingConfig {
                    model: ModelSpec::Vmm(VmmConfig::with_epsilon(eps)),
                    ..TrainingConfig::default()
                };
                let next = ModelSnapshot::from_raw_logs(trainer_records, &training);
                let generation = swap as u64 + 1;
                let path: PathBuf = trainer_scratch.join(format!("gen-{generation}.sqps"));
                save_snapshot(
                    &path,
                    &next,
                    &SnapshotMeta::describe(&next, generation, trainer_records.len() as u64),
                )
                .expect("save retrained snapshot");
                let published = admin
                    .publish(path.to_str().expect("utf-8 scratch path"))
                    .expect("publish over the admin port");
                assert_eq!(published, generation, "admin publish generation");
                let live = active_workers_ref.load(Ordering::Relaxed) > 0;
                swaps_done_ref.fetch_add(1, Ordering::Relaxed);
                if live {
                    mid_run_swaps_ref.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        // Workers: the serve_loop traffic, one keep-alive connection each.
        let handles: Vec<_> = (0..cfg.threads)
            .map(|thread| {
                let ops_done = &ops_done;
                let nonempty = &nonempty;
                let swaps_done = &swaps_done;
                let active_workers = &active_workers;
                let vocabulary = &vocabulary;
                let cfg = *cfg;
                scope.spawn(move || {
                    let mut client = NetClient::connect_timeout(serve_addr, WIRE_DEADLINE)
                        .expect("bench client connect");
                    active_workers.fetch_add(1, Ordering::Relaxed);
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (thread as u64) << 32);
                    let mut lat = Vec::with_capacity(cfg.ops_per_thread);
                    let user_base = thread as u64 * 1_000_000;
                    let mut op = 0usize;
                    while op < cfg.ops_per_thread
                        || swaps_done.load(Ordering::Relaxed) < cfg.swaps as u64
                    {
                        let now = (op as u64) * 2 + if op.is_multiple_of(101) { 3_600 } else { 0 };
                        let t = Instant::now();
                        if op % ServeLoopConfig::BATCH_EVERY == 7 {
                            let entries: Vec<BatchEntry> = (0..cfg.batch_size)
                                .map(|_| BatchEntry {
                                    user: user_base
                                        + rng.random_range(0u64..cfg.users_per_thread as u64),
                                    k: cfg.suggest_k,
                                })
                                .collect();
                            match client
                                .suggest_batch(&entries, now)
                                .expect("wire suggest_batch")
                            {
                                BatchAnswer::Lists(lists) => nonempty.fetch_add(
                                    lists.iter().filter(|s| !s.is_empty()).count() as u64,
                                    Ordering::Relaxed,
                                ),
                                BatchAnswer::Overloaded { .. } => 0,
                            };
                        } else if op.is_multiple_of(997) {
                            client.evict_idle(now).expect("wire evict");
                        } else {
                            let user =
                                user_base + rng.random_range(0u64..cfg.users_per_thread as u64);
                            let query = if rng.random_range(0u32..32) == 0 {
                                format!("oov-{thread}-{op}")
                            } else {
                                vocabulary[rng.random_range(0usize..vocabulary.len())].clone()
                            };
                            match client
                                .track_and_suggest(user, &query, cfg.suggest_k, now)
                                .expect("wire track_and_suggest")
                            {
                                ServeAnswer::Suggestions(s) if !s.is_empty() => {
                                    nonempty.fetch_add(1, Ordering::Relaxed);
                                }
                                ServeAnswer::Suggestions(_) | ServeAnswer::Overloaded { .. } => {}
                            }
                        }
                        lat.push(t.elapsed().as_nanos() as u64);
                        ops_done.fetch_add(1, Ordering::Relaxed);
                        op += 1;
                    }
                    active_workers.fetch_sub(1, Ordering::Relaxed);
                    lat
                })
            })
            .collect();
        latencies = handles.into_iter().map(|h| h.join().unwrap()).collect();
        elapsed = started.elapsed().as_secs_f64();
    });

    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let ops_total = all.len() as u64;

    // Post-run accounting over the wire: stats probe, then a final idle
    // sweep — the same epilogue the in-process run performs directly.
    let mut probe = NetClient::connect_timeout(serve_addr, WIRE_DEADLINE).expect("stats probe");
    let wire_stats = probe.stats().expect("final wire stats");
    let evicted_at_end = probe.evict_idle(u64::MAX / 2).expect("final evict") as usize;
    drop(probe);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);

    ServeLoopReport {
        threads: cfg.threads,
        ops_total,
        suggests_total: wire_stats.suggests,
        nonempty_suggestions: nonempty.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        throughput_ops_per_sec: ops_total as f64 / elapsed.max(1e-9),
        p50_us: percentile_us(&all, 0.50),
        p99_us: percentile_us(&all, 0.99),
        max_us: percentile_us(&all, 1.0),
        swaps_completed: swaps_done.load(Ordering::Relaxed),
        mid_run_swaps: mid_run_swaps.load(Ordering::Relaxed),
        final_generation: wire_stats.generation,
        active_sessions: wire_stats.active_sessions as usize,
        evicted_at_end,
    }
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_loop_runs_the_serve_loop_workload() {
        let cfg = ServeLoopConfig {
            threads: 2,
            ops_per_thread: 400,
            users_per_thread: 16,
            suggest_k: 3,
            batch_size: 4,
            swaps: 1,
            corpus_sessions: 200,
            seed: 11,
        };
        let report = run_wire(&cfg);
        assert!(report.ops_total >= 800);
        assert_eq!(report.swaps_completed, 1);
        assert_eq!(report.final_generation, 1, "admin publish must land");
        assert!(report.nonempty_suggestions > 0);
        assert!(report.p99_us > 0.0);
    }
}
