//! Shared fixtures and the timing harness for the benchmarks.
//!
//! Benchmarks need identical, deterministic datasets across runs so that
//! the harness statistics compare like against like; this crate builds them
//! once per process. The [`harness`] module replaces criterion (the
//! workspace builds with no external crates); [`baseline`] preserves the
//! pre-arena hashmap counter for equivalence tests and speedup accounting.

#![deny(missing_docs)]

pub mod baseline;
pub mod chaos;
pub mod harness;
pub mod membership_loop;
pub mod net_loop;
pub mod router_loop;
pub mod serve_loop;

pub use harness::{BenchmarkId, Criterion};

use sqp_common::QuerySeq;
use sqp_sessions::pipeline::{PipelineConfig, ProcessedLogs};

/// Build a deterministic processed corpus of roughly `n_sessions` simulated
/// sessions suitable for training benchmarks.
pub fn bench_corpus(n_sessions: usize, seed: u64) -> ProcessedLogs {
    let sim = sqp_logsim::SimConfig::small(n_sessions, n_sessions / 4, seed);
    let logs = sqp_logsim::generate(&sim);
    sqp_sessions::pipeline::process(&logs, &PipelineConfig::default())
}

/// Weighted training sessions from a corpus (cloned so the bench owns them).
pub fn bench_sessions(n_sessions: usize, seed: u64) -> Vec<(QuerySeq, u64)> {
    bench_corpus(n_sessions, seed)
        .train
        .aggregated
        .sessions
        .clone()
}

/// Exactly `n_sessions` segmented, interned sessions with unit weight — the
/// pre-aggregation counting workload (aggregation collapses the simulated
/// corpus by ~10×, which makes micro-benchmarks noise-dominated).
pub fn bench_unaggregated_sessions(n_sessions: usize, seed: u64) -> Vec<(QuerySeq, u64)> {
    let sim = sqp_logsim::SimConfig::small(n_sessions, 10, seed);
    let logs = sqp_logsim::generate(&sim);
    let sessions = sqp_sessions::segment_default(&logs.train);
    let mut interner = sqp_common::Interner::new();
    sessions
        .iter()
        .map(|s| (interner.intern_session(&s.queries), 1))
        .collect()
}

/// Raw log records for pipeline benchmarks.
pub fn bench_records(n_sessions: usize, seed: u64) -> Vec<sqp_logsim::RawLogRecord> {
    let sim = sqp_logsim::SimConfig::small(n_sessions, 10, seed);
    sqp_logsim::generate(&sim).train
}

/// Evaluation contexts (one per ground-truth entry) grouped by length.
pub fn bench_contexts(n_sessions: usize, seed: u64, len: usize, take: usize) -> Vec<QuerySeq> {
    bench_corpus(n_sessions, seed)
        .ground_truth
        .by_length(len)
        .take(take)
        .map(|e| e.context.clone())
        .collect()
}
