//! Membership chaos soak: ring membership changes under live traffic.
//!
//! The scenario [`run_membership_soak`] drives is the PR-10 acceptance
//! story end to end: a replicated router tier serves four workers of
//! tagged traffic while replicas **join**, **drain + retire**, and get
//! **killed without draining**, and every phase is held to the same
//! ledger discipline as the remote soak:
//!
//! * **Accounting** — per phase, `answered + refused == sent`. In-process
//!   serving cannot silently lose an operation; the only typed refusal is
//!   a draining engine turning away a session-starting track.
//! * **Zero context resets for handed-off users** — a user whose home
//!   replica changed (join) or disappeared gracefully (drain + retire)
//!   must continue their session: `new_session` is never observed again
//!   once established, across every membership change except an
//!   undrained kill.
//! * **Bounded loss on an undrained kill** — removing a replica without
//!   draining loses exactly the sessions the ring routed to it, and the
//!   consistent-hash remap property bounds that set by ~`2/N` of the
//!   users (the same bound `ring_properties` proves over the keyspace).
//! * **Replayability** — the deterministic phases (static membership)
//!   fold every outcome into an FNV digest that is bit-identical across
//!   runs of the same seed. A final *churn* phase runs membership verbs
//!   **and a rolling snapshot publish** concurrently with the workers to
//!   shake out races (a publish takes no membership lock, so mid-roll
//!   joins and retires are real); its invariants hold but its
//!   interleavings are real, so it is excluded from the content digest.

use sqp_common::rng::{Rng, StdRng};
use sqp_logsim::RawLogRecord;
use sqp_router::{RouterConfig, RouterEngine};
use sqp_serve::{ModelSnapshot, ModelSpec, SuggestRequest, TrainingConfig};
use sqp_store::{save_snapshot, RollPolicy, RouterPublish, SnapshotMeta};
use std::collections::HashMap;
use std::sync::Arc;

/// Workers hammering the tier (the acceptance floor).
pub const WORKERS: usize = 4;
/// Users per worker; user ids are disjoint across workers.
pub const USERS_PER_WORKER: u64 = 32;
/// Operations per worker per phase.
pub const OPS_PER_WORKER: u64 = 120;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv_u64(hash: u64, v: u64) -> u64 {
    fnv_fold(hash, &v.to_le_bytes())
}

/// Per-phase, per-worker ledger. `content` folds every outcome the phase
/// produced; it only enters the scenario digest for phases whose
/// membership was static (deterministic interleaving-free content).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseTally {
    /// Operations issued.
    pub sent: u64,
    /// Operations that produced a normal outcome.
    pub answered: u64,
    /// Tracks refused by a draining engine (session-starting only).
    pub refused: u64,
    /// Tracks that started a session for a user who already had one —
    /// the context reset the handoff protocol exists to prevent.
    pub resets: u64,
    /// FNV fold of every outcome.
    pub content: u64,
}

impl Default for PhaseTally {
    fn default() -> Self {
        Self {
            sent: 0,
            answered: 0,
            refused: 0,
            resets: 0,
            content: FNV_OFFSET,
        }
    }
}

impl PhaseTally {
    fn merge(tallies: &[PhaseTally]) -> PhaseTally {
        let mut total = PhaseTally::default();
        for t in tallies {
            total.sent += t.sent;
            total.answered += t.answered;
            total.refused += t.refused;
            total.resets += t.resets;
            // Worker order is fixed, so the fold is deterministic.
            total.content = fnv_u64(total.content, t.content);
        }
        total
    }
}

/// What [`run_membership_soak`] observed. Every invariant is asserted
/// inside the harness (it panics on violation); the report carries the
/// evidence plus the replay digest.
#[derive(Clone, Debug)]
pub struct MembershipSoakReport {
    /// Worker threads.
    pub workers: usize,
    /// Phase ledgers: steady / after-join / after-drain / after-kill.
    pub steady: PhaseTally,
    /// Traffic after a replica joined (handed-off users continue).
    pub after_join: PhaseTally,
    /// Traffic after a drain + retire (handed-off users continue).
    pub after_drain: PhaseTally,
    /// Traffic after an undrained kill (bounded resets).
    pub after_kill: PhaseTally,
    /// The concurrent-churn ledger. Its `sent` and `resets` are
    /// deterministic; `answered`/`refused` depend on which side of the
    /// racing drain each fresh-session track lands on, so — like the
    /// digest — replay equality only covers the deterministic pair.
    pub churn: PhaseTally,
    /// Sessions the join handoff moved to the new replica.
    pub join_moved: usize,
    /// Sessions the drain handoff moved off the victim.
    pub drain_moved: usize,
    /// Sessions lost to the undrained kill (== the victim's routed set).
    pub kill_lost: usize,
    /// Replica ids alive after the whole scenario.
    pub final_replicas: Vec<u32>,
    /// Ring generation after the whole scenario.
    pub final_ring_generation: u64,
    /// FNV digest over the deterministic phases and handoff counts —
    /// bit-identical across runs of the same seed.
    pub digest: u64,
}

impl PartialEq for MembershipSoakReport {
    fn eq(&self, other: &Self) -> bool {
        // The churn phase races worker traffic against live membership
        // verbs: whether a fresh-session track hits the victim before or
        // after its drain mark is scheduling-dependent, so that phase
        // compares only its deterministic fields (`sent`, `resets`).
        // Everything else — the four barrier-phased ledgers included —
        // must replay bit-identically.
        self.workers == other.workers
            && self.steady == other.steady
            && self.after_join == other.after_join
            && self.after_drain == other.after_drain
            && self.after_kill == other.after_kill
            && self.churn.sent == other.churn.sent
            && self.churn.resets == other.churn.resets
            && self.join_moved == other.join_moved
            && self.drain_moved == other.drain_moved
            && self.kill_lost == other.kill_lost
            && self.final_replicas == other.final_replicas
            && self.final_ring_generation == other.final_ring_generation
            && self.digest == other.digest
    }
}

impl Eq for MembershipSoakReport {}

fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
    RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    }
}

/// A corpus whose suggestions after `"seed"` are tagged, so answers carry
/// readable model content through every membership change.
fn tagged_snapshot() -> ModelSnapshot {
    let mut records = Vec::new();
    let mut machine = 0u64;
    for continuation in ["m::alpha", "m::beta", "m::gamma"] {
        for _ in 0..4 {
            records.push(rec(machine, 100, "seed"));
            records.push(rec(machine, 160, continuation));
            machine += 1;
        }
    }
    ModelSnapshot::from_raw_logs(
        &records,
        &TrainingConfig {
            model: ModelSpec::Adjacency,
            ..TrainingConfig::default()
        },
    )
}

/// Per-worker continuity ledger carried across phases: the context length
/// each established user last reported.
struct WorkerState {
    users: Vec<u64>,
    established: HashMap<u64, usize>,
}

/// Which resets a phase tolerates.
#[derive(Clone, Copy, PartialEq)]
enum ResetPolicy {
    /// No established user may ever reset (steady / join / drain / churn).
    None,
    /// Exactly the users in the lost set reset, once each (post-kill).
    LostOnly,
}

/// One worker's traffic for one phase. Deterministic given (seed, worker,
/// phase) and a static membership; panics on any continuity violation.
fn drive_worker(
    router: &RouterEngine,
    state: &mut WorkerState,
    seed: u64,
    worker: usize,
    phase: u64,
    lost: &[u64],
    policy: ResetPolicy,
) -> PhaseTally {
    let mut rng = StdRng::seed_from_u64(seed ^ ((worker as u64) << 32) ^ (phase << 16));
    let mut tally = PhaseTally::default();
    let base_now = 1_000 + phase * 300;
    // Each op kind cycles the user list on its own counter, so the op mix
    // (keyed on `i`) cannot starve any user of tracks.
    let mut track_i = 0u64;
    let mut suggest_i = 0u64;
    for i in 0..OPS_PER_WORKER {
        let now = base_now + i * 2;
        tally.sent += 1;
        if phase == 4 && i % 16 == 5 {
            // Churn only: brand-new users knock while a replica may be
            // draining — the one case a graceful membership change turns
            // traffic away (typed, counted, never lost).
            let fresh = (worker as u64) * 1_000_000 + 500_000 + i;
            let out = router.track(fresh, "seed", now);
            if out.context_len == 0 {
                tally.refused += 1;
            } else {
                tally.answered += 1;
            }
        } else if i % 8 == 7 {
            // A batch across this worker's users.
            let k = 1 + rng.random_range(0u64..3) as usize;
            let requests: Vec<SuggestRequest> = state
                .users
                .iter()
                .map(|&user| SuggestRequest { user, k })
                .collect();
            for (request, got) in requests.iter().zip(router.suggest_batch(&requests, now)) {
                tally.content = fnv_u64(tally.content, request.user);
                for s in &got {
                    tally.content = fnv_fold(tally.content, s.query.as_bytes());
                }
            }
            tally.answered += 1;
        } else if i % 3 == 0 {
            let user = state.users[(suggest_i % USERS_PER_WORKER) as usize];
            suggest_i += 1;
            let got = router.suggest(user, 3, now);
            tally.content = fnv_u64(tally.content, user);
            for s in &got {
                tally.content = fnv_fold(tally.content, s.query.as_bytes());
            }
            tally.answered += 1;
        } else {
            let user = state.users[(track_i % USERS_PER_WORKER) as usize];
            track_i += 1;
            let out = router.track(user, "seed", now);
            if out.context_len == 0 {
                // The draining-engine refusal sentinel: an admitted track
                // always reports a context of at least the query itself.
                tally.refused += 1;
                tally.content = fnv_u64(tally.content, user ^ u64::MAX);
                continue;
            }
            tally.answered += 1;
            tally.content = fnv_u64(tally.content, user);
            tally.content = fnv_u64(tally.content, out.context_len as u64);
            tally.content = fnv_u64(tally.content, out.new_session as u64);
            match state.established.get(&user) {
                None => {
                    assert!(out.new_session, "first track of {user} must open a session");
                }
                Some(_) if out.new_session => {
                    tally.resets += 1;
                    match policy {
                        ResetPolicy::None => panic!(
                            "user {user} lost their context in phase {phase}: \
                             handoff must preserve every live session"
                        ),
                        ResetPolicy::LostOnly => assert!(
                            lost.contains(&user),
                            "user {user} reset but was not routed to the killed replica"
                        ),
                    }
                }
                Some(_) => {}
            }
            state.established.insert(user, out.context_len);
        }
    }
    tally
}

/// Run `phase` across all workers behind a barrier (scoped threads join
/// before the harness touches membership again) and merge the ledgers.
fn drive_phase(
    router: &RouterEngine,
    states: &mut [WorkerState],
    seed: u64,
    phase: u64,
    lost: &[u64],
    policy: ResetPolicy,
) -> PhaseTally {
    let tallies: Vec<PhaseTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .iter_mut()
            .enumerate()
            .map(|(worker, state)| {
                scope.spawn(move || drive_worker(router, state, seed, worker, phase, lost, policy))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total = PhaseTally::merge(&tallies);
    assert_eq!(
        total.answered + total.refused,
        total.sent,
        "phase {phase} lost operations: {total:?}"
    );
    total
}

/// Users currently routed to replica `id`.
fn routed_to(router: &RouterEngine, users: &[u64], id: u32) -> Vec<u64> {
    users
        .iter()
        .copied()
        .filter(|&u| router.replica_for(u) == id as usize)
        .collect()
}

/// The membership chaos soak (see module docs). Deterministic from
/// `seed`: the returned report — digest included — is bit-identical
/// across runs.
pub fn run_membership_soak(seed: u64) -> MembershipSoakReport {
    const REPLICAS: usize = 3;
    let router = RouterEngine::new(
        Arc::new(tagged_snapshot()),
        RouterConfig {
            replicas: REPLICAS,
            ..RouterConfig::default()
        },
    );
    let mut states: Vec<WorkerState> = (0..WORKERS)
        .map(|w| WorkerState {
            users: (0..USERS_PER_WORKER)
                .map(|u| (w as u64) * 1_000_000 + u)
                .collect(),
            established: HashMap::new(),
        })
        .collect();
    let all_users: Vec<u64> = states.iter().flat_map(|s| s.users.clone()).collect();
    let total_users = all_users.len();

    // Phase 0 — steady state on {0, 1, 2}: establish every session.
    let steady = drive_phase(&router, &mut states, seed, 0, &[], ResetPolicy::None);
    assert_eq!(steady.refused, 0);
    let resident: u64 = router
        .stats()
        .replicas
        .iter()
        .map(|r| r.stats.active_sessions)
        .sum();
    assert_eq!(resident, total_users as u64);

    // Join a fresh replica under a two-phase handoff. Exactly the users
    // the new ring re-routes must move, with their contexts intact.
    let homes_before: Vec<usize> = all_users.iter().map(|&u| router.replica_for(u)).collect();
    let join = router.join_replica(1_000 + 300);
    assert_eq!(join.replica, REPLICAS as u32);
    let moved_expect = all_users
        .iter()
        .zip(&homes_before)
        .filter(|&(&u, &before)| router.replica_for(u) != before)
        .count();
    assert_eq!(
        join.moved_sessions, moved_expect,
        "join must move exactly the re-routed users"
    );
    assert_eq!(join.skipped_idle, 0, "every session is live at join time");
    assert!(
        !routed_to(&router, &all_users, join.replica).is_empty(),
        "the joined replica must own traffic"
    );
    // Phase 1 — after the join: every user continues, nobody resets.
    let after_join = drive_phase(&router, &mut states, seed, 1, &[], ResetPolicy::None);
    assert_eq!(after_join.refused, 0);

    // Drain + retire replica 1: graceful scale-down. The victim's whole
    // routed set moves; traffic afterwards continues seamlessly.
    let drain_victim = 1u32;
    let victim_routed = routed_to(&router, &all_users, drain_victim).len();
    // Copy-not-move: the victim still holds stale copies of users the
    // join re-routed away from it. Drain exports those too; newest-wins
    // at the destination drops every one of them.
    let stale_expect = all_users
        .iter()
        .zip(&homes_before)
        .filter(|&(&u, &before)| before == drain_victim as usize && router.replica_for(u) != before)
        .count();
    let drain = router
        .begin_drain(drain_victim, 1_000 + 2 * 300)
        .expect("drain replica 1");
    assert_eq!(
        drain.moved_sessions, victim_routed,
        "drain must move exactly the victim's routed set"
    );
    assert_eq!(
        drain.stale_skipped, stale_expect,
        "stale leftover copies must lose to their newer counterparts"
    );
    router
        .retire_replica(drain_victim)
        .expect("retire after drain");
    assert!(!router.replica_ids().contains(&drain_victim));
    // Phase 2 — after drain + retire: still zero resets.
    let after_drain = drive_phase(&router, &mut states, seed, 2, &[], ResetPolicy::None);
    assert_eq!(after_drain.refused, 0);

    // Undrained kill of replica 2: the crash case. Loss is exactly the
    // victim's routed set, bounded by the ring's ~2/N remap property.
    let kill_victim = 2u32;
    let n_before = router.replica_ids().len();
    let lost = routed_to(&router, &all_users, kill_victim);
    router.remove_replica(kill_victim).expect("undrained kill");
    assert!(
        lost.len() <= 2 * total_users / n_before,
        "kill lost {} of {} sessions — beyond the 2/N remap bound for N={}",
        lost.len(),
        total_users,
        n_before
    );
    // Phase 3 — after the kill: exactly the lost set resets, once each.
    let after_kill = drive_phase(&router, &mut states, seed, 3, &lost, ResetPolicy::LostOnly);
    assert_eq!(
        after_kill.resets,
        lost.len() as u64,
        "every lost session (and only those) must reset after the kill"
    );

    // Phase 4 — concurrent churn: a join, a drain, a retire, AND a
    // rolling snapshot publish race the workers. The publication path
    // takes no membership lock, so the roll genuinely interleaves with
    // the verbs: a replica may retire mid-roll (recorded, never
    // panicked) and a joiner may seed behind the canary (repaired by
    // the roll's trailing pass). Invariants hold (no established user
    // resets, accounting balances, the tier converges) but
    // interleavings are real, so this ledger stays out of the digest.
    let churn_now = 1_000 + 4 * 300;
    let spool = std::env::temp_dir().join(format!(
        "sqp-membership-spool-{}-{seed}.sqps",
        std::process::id()
    ));
    let roll_model = tagged_snapshot();
    save_snapshot(
        &spool,
        &roll_model,
        &SnapshotMeta::describe(&roll_model, 1, 12),
    )
    .expect("spool the churn snapshot");
    let (churn_tallies, roll) = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .iter_mut()
            .enumerate()
            .map(|(worker, state)| {
                let router = &router;
                scope.spawn(move || {
                    drive_worker(router, state, seed, worker, 4, &[], ResetPolicy::None)
                })
            })
            .collect();
        let roller = {
            let router = &router;
            let spool = &spool;
            scope.spawn(move || router.rolling_publish(spool, RollPolicy::ContinueOnFailure))
        };
        let joined = router.join_replica(churn_now);
        std::thread::yield_now();
        let drained = router
            .begin_drain(joined.replica, churn_now + 50)
            .expect("drain the churn replica");
        assert_eq!(drained.replica, joined.replica);
        router
            .retire_replica(joined.replica)
            .expect("retire the churn replica");
        let tallies: Vec<PhaseTally> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (tallies, roller.join().expect("churn roll thread"))
    });
    let _ = std::fs::remove_file(&spool);
    assert!(
        !roll.aborted && roll.failed.is_empty(),
        "a valid file rolled onto a churning tier must not fail: {roll:?}"
    );
    let churn = PhaseTally::merge(&churn_tallies);
    assert_eq!(churn.answered + churn.refused, churn.sent);
    assert_eq!(
        churn.resets, 0,
        "graceful churn must never reset an established session"
    );

    let stats = router.stats();
    assert!(stats.draining.is_empty(), "churn left a replica draining");
    assert!(
        stats.is_converged(),
        "the churn roll must leave no replica behind: {stats:?}"
    );
    assert_eq!(
        stats.max_generation(),
        1,
        "every survivor serves the rolled generation exactly once: {stats:?}"
    );
    let report = MembershipSoakReport {
        workers: WORKERS,
        steady,
        after_join,
        after_drain,
        after_kill,
        churn,
        join_moved: join.moved_sessions,
        drain_moved: drain.moved_sessions,
        kill_lost: lost.len(),
        final_replicas: stats.replica_ids.clone(),
        final_ring_generation: stats.ring_generation,
        digest: {
            let mut d = FNV_OFFSET;
            for tally in [&steady, &after_join, &after_drain, &after_kill] {
                d = fnv_u64(d, tally.sent);
                d = fnv_u64(d, tally.answered);
                d = fnv_u64(d, tally.refused);
                d = fnv_u64(d, tally.resets);
                d = fnv_u64(d, tally.content);
            }
            d = fnv_u64(d, join.moved_sessions as u64);
            d = fnv_u64(d, drain.moved_sessions as u64);
            d = fnv_u64(d, lost.len() as u64);
            for &id in &stats.replica_ids {
                d = fnv_u64(d, id as u64);
            }
            d
        },
    };
    assert!(
        report.join_moved > 0 && report.drain_moved > 0 && report.kill_lost > 0,
        "a vacuous scenario proves nothing: {report:?}"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_runs_and_counts_every_operation() {
        let report = run_membership_soak(3);
        let expected = (WORKERS as u64) * OPS_PER_WORKER;
        for tally in [
            &report.steady,
            &report.after_join,
            &report.after_drain,
            &report.after_kill,
            &report.churn,
        ] {
            assert_eq!(tally.sent, expected);
            assert_eq!(tally.answered + tally.refused, tally.sent);
        }
        assert_eq!(report.steady.resets, 0);
        assert_eq!(report.churn.resets, 0);
    }
}
