//! Router-tier workloads: the replicated counterpart of [`serve_loop`].
//!
//! Three harnesses, all over a [`RouterEngine`]:
//!
//! * [`run_router`] — the exact [`serve_loop`] stress workload (same seeds,
//!   same op mix) pointed at an N-replica tier, so "router overhead vs
//!   single engine" is one subtraction between two [`ServeLoopReport`]s.
//! * [`run_skew_soak`] — the **generation-skew acceptance scenario**: a
//!   rolling upgrade is deliberately held mid-roll while worker threads
//!   hammer mixed traffic, and every suggestion's provenance is read off
//!   its text (tagged vocabularies, as in the umbrella's
//!   `serve_concurrency` tests). The harness panics on any torn read, any
//!   user whose suggestions regress from the new model back to the old
//!   (which would mean their session migrated replicas), or any route that
//!   is not sticky.
//! * [`run_chaos_roll`] — **chaos under routing**: a [`FaultPlan`] fails
//!   exactly one replica's snapshot read mid-roll; that replica must
//!   quarantine and keep serving its last-good model while the rest of the
//!   tier completes, and the whole scenario must replay bit-identically
//!   from the seed (asserted via [`Chaos::digest`]).
//!
//! [`serve_loop`]: crate::serve_loop

use crate::serve_loop::{build_parts, run_on, ServeLoopConfig, ServeLoopReport};
use sqp_faults::{Chaos, FaultPlan};
use sqp_logsim::RawLogRecord;
use sqp_router::{RouterConfig, RouterEngine};
use sqp_serve::{ModelSnapshot, ModelSpec, SuggestRequest, Suggestion, TrainingConfig};
use sqp_store::{save_snapshot, RollPolicy, RouterPublish, SnapshotMeta};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Run the [`serve_loop`](crate::serve_loop) stress workload against an
/// N-replica router tier. Identical `cfg` produces identical traffic to
/// [`run`](crate::serve_loop::run) on a single engine, so the two reports
/// measure the routing layer's overhead and nothing else.
pub fn run_router(cfg: &ServeLoopConfig, replicas: usize) -> ServeLoopReport {
    let (snapshot, vocabulary, records) = build_parts(cfg);
    let router = RouterEngine::new(
        snapshot,
        RouterConfig {
            replicas,
            ..RouterConfig::default()
        },
    );
    run_on(&router, cfg, &vocabulary, &records)
}

fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
    RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    }
}

/// A corpus whose every suggestion after `"seed"` is tagged with `prefix`,
/// so a result's provenance is readable off its text (the
/// `serve_concurrency` pattern).
fn tagged_snapshot(prefix: &str) -> ModelSnapshot {
    let mut records = Vec::new();
    let mut machine = 0u64;
    for continuation in ["alpha", "beta", "gamma"] {
        for _ in 0..4 {
            records.push(rec(machine, 100, "seed"));
            records.push(rec(machine, 160, &format!("{prefix}::{continuation}")));
            machine += 1;
        }
    }
    ModelSnapshot::from_raw_logs(
        &records,
        &TrainingConfig {
            model: ModelSpec::Adjacency,
            ..TrainingConfig::default()
        },
    )
}

/// Classify one suggest call's provenance: `Some("old")`, `Some("new")`, or
/// `None` for an empty answer. Panics on a mixed or untagged result — that
/// is the torn read the whole scenario exists to rule out.
fn provenance_of(suggestions: &[Suggestion]) -> Option<&'static str> {
    let mut seen: Option<&'static str> = None;
    for s in suggestions {
        let tag = if s.query.starts_with("old::") {
            "old"
        } else if s.query.starts_with("new::") {
            "new"
        } else {
            panic!("suggestion from no known snapshot: {:?}", s.query);
        };
        match seen {
            None => seen = Some(tag),
            Some(prev) => assert_eq!(
                prev, tag,
                "torn read: one suggest call mixed snapshots: {suggestions:?}"
            ),
        }
    }
    seen
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqp-router-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_tagged(dir: &std::path::Path, prefix: &str, generation: u64) -> PathBuf {
    let snapshot = tagged_snapshot(prefix);
    let path = dir.join(format!("gen-{generation}.sqps"));
    save_snapshot(
        &path,
        &snapshot,
        &SnapshotMeta::describe(&snapshot, generation, 24),
    )
    .unwrap();
    path
}

/// What [`run_skew_soak`] observed. Every invariant is asserted inside the
/// harness (it panics on violation); the report carries the evidence that
/// the interesting states were actually reached.
#[derive(Clone, Debug)]
pub struct SkewSoakReport {
    /// Worker threads that hammered the tier.
    pub threads: usize,
    /// Replicas in the tier.
    pub replicas: usize,
    /// Total suggest calls classified for provenance.
    pub ops_total: u64,
    /// Calls answered wholly from the old snapshot.
    pub saw_old: u64,
    /// Calls answered wholly from the new snapshot.
    pub saw_new: u64,
    /// Calls answered from the old snapshot *while the roll was in flight*
    /// — proof the skew window carried live traffic on both generations.
    pub old_during_roll: u64,
    /// Calls answered from the new snapshot while the roll was in flight.
    pub new_during_roll: u64,
    /// Largest generation skew observed by the mid-roll stats probes.
    pub max_skew_observed: u64,
    /// Tier generation after the roll (1 on success, every replica).
    pub final_generation: u64,
}

/// The generation-skew acceptance scenario (see module docs). `threads`
/// workers (the acceptance floor is 4) hammer mixed traffic while a
/// rolling upgrade is held for at least `hold_ops_per_step` classified
/// calls after each replica's step. Panics on any violated invariant.
pub fn run_skew_soak(threads: usize, hold_ops_per_step: u64) -> SkewSoakReport {
    assert!(threads >= 1 && hold_ops_per_step > 0);
    const REPLICAS: usize = 4;
    const USERS_PER_THREAD: u64 = 32;

    let dir = scratch_dir("skew");
    let new_path = save_tagged(&dir, "new", 1);
    let router = RouterEngine::new(
        Arc::new(tagged_snapshot("old")),
        RouterConfig {
            replicas: REPLICAS,
            ..RouterConfig::default()
        },
    );

    let stop = AtomicBool::new(false);
    let rolling = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let saw_old = AtomicU64::new(0);
    let saw_new = AtomicU64::new(0);
    let old_during_roll = AtomicU64::new(0);
    let new_during_roll = AtomicU64::new(0);
    let mut max_skew_observed = 0u64;

    std::thread::scope(|scope| {
        for thread in 0..threads as u64 {
            let router = &router;
            let stop = &stop;
            let rolling = &rolling;
            let ops = &ops;
            let saw_old = &saw_old;
            let saw_new = &saw_new;
            let old_during_roll = &old_during_roll;
            let new_during_roll = &new_during_roll;
            scope.spawn(move || {
                let users: Vec<u64> = (0..USERS_PER_THREAD).map(|u| thread * 1_000 + u).collect();
                // Route stickiness: a user's home replica must never move.
                let homes: Vec<usize> = users.iter().map(|&u| router.replica_for(u)).collect();
                // Per-user provenance monotonicity: once a user has seen the
                // new model, seeing the old one again would mean their
                // session hopped to a not-yet-upgraded replica (or their
                // replica rolled backwards). `false` = old, `true` = new.
                let mut last: HashMap<u64, bool> = HashMap::new();
                let mut note = |user: u64, tag: Option<&'static str>| {
                    let Some(tag) = tag else { return };
                    let mid_roll = rolling.load(Ordering::Relaxed);
                    let is_new = tag == "new";
                    if is_new {
                        saw_new.fetch_add(1, Ordering::Relaxed);
                        if mid_roll {
                            new_during_roll.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        saw_old.fetch_add(1, Ordering::Relaxed);
                        if mid_roll {
                            old_during_roll.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let prev = last.insert(user, is_new);
                    assert!(
                        prev != Some(true) || is_new,
                        "user {user} regressed from the new model to the old: \
                         their session migrated replicas mid-roll"
                    );
                };
                let mut iter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let at = (iter % USERS_PER_THREAD) as usize;
                    let user = users[at];
                    assert_eq!(
                        router.replica_for(user),
                        homes[at],
                        "route for user {user} moved"
                    );
                    // Sessions stay well inside the 30-minute idle cutoff.
                    let now = 1_000 + (iter % 100);
                    if iter % 8 == 7 {
                        let reqs: Vec<SuggestRequest> = users
                            .iter()
                            .map(|&user| SuggestRequest { user, k: 3 })
                            .collect();
                        for (request, got) in reqs.iter().zip(router.suggest_batch(&reqs, now)) {
                            note(request.user, provenance_of(&got));
                        }
                        ops.fetch_add(reqs.len() as u64, Ordering::Relaxed);
                    } else if iter % 13 == 5 {
                        note(user, provenance_of(&router.suggest(user, 3, now)));
                        ops.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let got = router.track_and_suggest(user, "seed", 3, now);
                        note(user, provenance_of(&got));
                        ops.fetch_add(1, Ordering::Relaxed);
                    }
                    iter += 1;
                }
            });
        }

        // Let every worker put traffic (and sessions) on the old model
        // before the roll begins.
        let wait_past = |target: u64| {
            while ops.load(Ordering::Relaxed) < target {
                std::thread::yield_now();
            }
        };
        wait_past(hold_ops_per_step);

        rolling.store(true, Ordering::Relaxed);
        let report = router.rolling_publish_with(
            &sqp_common::fsio::RealFs,
            &new_path,
            RollPolicy::ContinueOnFailure,
            &mut |step| {
                let upgraded_so_far = step.replica + 1;
                let stats = router.stats();
                assert_eq!(stats.max_generation(), 1, "leading edge after a step");
                let expected_min = u64::from(upgraded_so_far >= REPLICAS);
                assert_eq!(
                    stats.min_generation(),
                    expected_min,
                    "trailing edge after replica {}'s step",
                    step.replica
                );
                max_skew_observed = max_skew_observed.max(stats.generation_skew());
                // Hold the tier on mixed generations under live fire: the
                // roll may not advance until the workers have pushed
                // another `hold_ops_per_step` classified calls through it.
                wait_past(ops.load(Ordering::Relaxed) + hold_ops_per_step);
            },
        );
        rolling.store(false, Ordering::Relaxed);
        assert!(report.complete(), "roll did not complete: {report:?}");
        assert_eq!(report.upgraded, (0..REPLICAS).collect::<Vec<_>>());

        // A tail of traffic against the converged tier, then stop.
        wait_past(ops.load(Ordering::Relaxed) + hold_ops_per_step);
        stop.store(true, Ordering::Relaxed);
    });

    let stats = router.stats();
    assert!(stats.is_converged(), "tier left skewed: {stats:?}");
    assert_eq!(stats.min_generation(), 1);
    assert_eq!(stats.quarantined(), 0);
    for row in &stats.replicas {
        assert_eq!(row.generation, 1, "a replica missed the roll");
    }
    let report = SkewSoakReport {
        threads,
        replicas: REPLICAS,
        ops_total: ops.load(Ordering::Relaxed),
        saw_old: saw_old.load(Ordering::Relaxed),
        saw_new: saw_new.load(Ordering::Relaxed),
        old_during_roll: old_during_roll.load(Ordering::Relaxed),
        new_during_roll: new_during_roll.load(Ordering::Relaxed),
        max_skew_observed,
        final_generation: stats.min_generation(),
    };
    // The scenario is vacuous unless both generations actually served
    // traffic, skew was really observed, and the skew window itself carried
    // answers from both models.
    assert!(report.saw_old > 0, "old snapshot never served: {report:?}");
    assert!(report.saw_new > 0, "new snapshot never served: {report:?}");
    assert!(
        report.old_during_roll > 0 && report.new_during_roll > 0,
        "the mid-roll window never served both generations: {report:?}"
    );
    assert_eq!(report.max_skew_observed, 1);
    std::fs::remove_dir_all(&dir).unwrap();
    report
}

/// What [`run_chaos_roll`] observed; all invariants are asserted inside.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosRollReport {
    /// The replica whose snapshot read the plan failed.
    pub failed_replica: usize,
    /// Replicas that completed the roll.
    pub upgraded: Vec<usize>,
    /// Generation skew reported by [`RouterStats`](sqp_router::RouterStats)
    /// right after the roll (1: the quarantined replica trails).
    pub skew_after_roll: u64,
    /// Injected read errors (exactly 1).
    pub read_errors: u64,
    /// The chaos replay digest — equal across runs with the same seed.
    pub digest: u64,
}

/// Chaos under routing: roll a 4-replica tier onto a new snapshot through
/// a [`FaultPlan`] that fails exactly one replica's read (each replica
/// performs exactly one snapshot read, so the plan's global read ordinal
/// *is* the replica index + 1). Asserts the failed replica quarantines and
/// keeps serving its last-good model while the rest complete, that
/// [`RouterStats`](sqp_router::RouterStats) reports the resulting skew,
/// and that a later clean fan-out recovers the tier. Deterministic from
/// `seed`: the returned report (digest included) is bit-identical across
/// runs.
pub fn run_chaos_roll(seed: u64) -> ChaosRollReport {
    const REPLICAS: usize = 4;
    // Derive the victim from the seed so different seeds exercise
    // different positions (never the last ordinal-less case: 1-based).
    let failed_replica = (seed % REPLICAS as u64) as usize;

    let dir = scratch_dir(&format!("chaos-{seed}"));
    let new_path = save_tagged(&dir, "new", 1);
    let router = RouterEngine::new(
        Arc::new(tagged_snapshot("old")),
        RouterConfig {
            replicas: REPLICAS,
            ..RouterConfig::default()
        },
    );
    // One observer user per replica, tracked before the roll so each
    // replica holds live session state across the fault.
    let observer_for = |replica: usize| {
        (0..u64::MAX)
            .find(|&u| router.replica_for(u) == replica)
            .expect("every replica owns some user")
    };
    let observers: Vec<u64> = (0..REPLICAS).map(observer_for).collect();
    for &user in &observers {
        router.track(user, "seed", 1_000);
    }

    let chaos = Chaos::new(FaultPlan {
        seed,
        read_error_on: vec![failed_replica as u64 + 1],
        ..FaultPlan::default()
    });
    let report = router.rolling_publish_with(
        &chaos.faulty_fs(),
        &new_path,
        RollPolicy::ContinueOnFailure,
        &mut |_| {},
    );

    let expected_upgraded: Vec<usize> = (0..REPLICAS).filter(|&r| r != failed_replica).collect();
    assert_eq!(report.upgraded, expected_upgraded);
    assert_eq!(report.failed.len(), 1);
    assert_eq!(report.failed[0].0, failed_replica);
    assert!(
        report.failed[0].1.contains("injected chaos read error"),
        "unexpected failure: {}",
        report.failed[0].1
    );

    let stats = router.stats();
    assert_eq!(stats.quarantined(), 1);
    assert!(stats.replicas[failed_replica].quarantined);
    assert_eq!(stats.generation_skew(), 1);
    assert_eq!(stats.replicas[failed_replica].generation, 0);
    // The quarantined replica serves its last-good model; upgraded
    // replicas serve the new one. Same request shape, different replica,
    // different — but never torn — provenance.
    for (replica, &user) in observers.iter().enumerate() {
        let got = router.suggest(user, 3, 1_010);
        let want = if replica == failed_replica {
            "old"
        } else {
            "new"
        };
        assert_eq!(provenance_of(&got), Some(want), "replica {replica}");
    }

    let chaos_stats = chaos.stats();
    assert_eq!(chaos_stats.read_errors, 1);
    assert_eq!(chaos_stats.reads, REPLICAS as u64);
    let out = ChaosRollReport {
        failed_replica,
        upgraded: report.upgraded,
        skew_after_roll: stats.generation_skew(),
        read_errors: chaos_stats.read_errors,
        digest: chaos.digest(),
    };

    // Recovery: catch up the straggler alone (a fan-out would bump every
    // replica's publish count and leave the tier skewed forever). A clean
    // read of the same file, published to the quarantined replica, lifts
    // its quarantine and converges the tier.
    let (snapshot, _) = sqp_store::load_snapshot(&new_path).unwrap();
    router.publish_to(failed_replica, Arc::new(snapshot));
    let stats = router.stats();
    assert!(stats.is_converged());
    assert_eq!(stats.quarantined(), 0);
    assert_eq!(
        provenance_of(&router.suggest(observers[failed_replica], 3, 1_020)),
        Some("new")
    );

    std::fs::remove_dir_all(&dir).unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_runs_the_serve_loop_workload() {
        let cfg = ServeLoopConfig {
            threads: 2,
            ops_per_thread: 400,
            users_per_thread: 16,
            suggest_k: 3,
            batch_size: 4,
            swaps: 1,
            corpus_sessions: 200,
            seed: 11,
        };
        let report = run_router(&cfg, 3);
        assert!(report.ops_total >= 800);
        assert_eq!(report.swaps_completed, 1);
        // Fan-out publish: the tier's trailing edge reached the new
        // generation.
        assert_eq!(report.final_generation, 1);
        assert!(report.nonempty_suggestions > 0);
    }

    #[test]
    fn chaos_roll_hits_each_victim_position() {
        // Seeds 0..4 cover every replica position via seed % 4.
        let r0 = run_chaos_roll(0);
        assert_eq!(r0.failed_replica, 0);
        let r3 = run_chaos_roll(3);
        assert_eq!(r3.failed_replica, 3);
        assert_eq!(r3.upgraded, vec![0, 1, 2]);
    }
}
