//! The chaos soak: scripted fault storylines against the full serving
//! stack.
//!
//! Two scenarios, shared by the `chaos_soak` integration test and the
//! `bench_pr6` binary:
//!
//! * [`run_replay_soak`] — the **deterministic resilience storyline**: a
//!   fixed fleet of serving workers plus a scripted supervised-retrain
//!   driver, run against a [`FaultPlan`] that injects training panics
//!   (tripping the circuit breaker), a corrupted snapshot write
//!   (quarantine + rollback), transient write errors (retry/backoff), and
//!   a short read (a second quarantine). Every fault decision folds into
//!   the chaos [`digest`](sqp_faults::Chaos::digest); two runs with the
//!   same seed are bit-identical, which is how "replayable from the seed"
//!   is asserted rather than assumed.
//! * [`run_overload_soak`] — **admission control under stall faults**: a
//!   bounded in-flight budget, every serve-path strike stalled, more
//!   workers than budget. Some requests shed (typed, counted), every
//!   admitted request is answered, and the p50/p99 of answered requests is
//!   measured under the faults.
//!
//! The storyline leans on indexed fault ordinals (see
//! [`FaultPlan`]): the IO-event sequence of the retrain script is fixed
//! (two fs events per clean publish: one write, one validation read), so
//! "corrupt the 2nd write" deterministically poisons generation 2 and
//! nothing else.

use sqp_common::clock::Clock;
use sqp_faults::{Chaos, ChaosStats, FaultPlan, VirtualClock};
use sqp_logsim::RawLogRecord;
use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
use sqp_store::{
    latest_generation_on_disk, RetrainConfig, Retrainer, RetrainerHealth, StepOutcome,
    SuperviseConfig, Supervisor,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// What the deterministic resilience storyline produced.
#[derive(Clone, Debug)]
pub struct ReplaySoakReport {
    /// Fold of every chaos decision; equal across runs with equal seeds.
    pub digest: u64,
    /// Injected-fault counters.
    pub stats: ChaosStats,
    /// Final health of the supervised retrain loop.
    pub health: RetrainerHealth,
    /// Serving requests issued by the worker fleet (admission unlimited in
    /// this scenario, so every one must have been answered).
    pub served: u64,
    /// Suggestion outcomes per step of the retrain script, in order —
    /// compact labels like `"panic"`, `"breaker-open"`, `"published:1"`,
    /// `"quarantined:2->rollback:1"`.
    pub script: Vec<String>,
    /// Newest generation number on disk (counting quarantined files).
    pub latest_generation: u64,
    /// The engine's top suggestion for the probe context after the dust
    /// settles — proves which generation is actually serving.
    pub serving_top: Option<String>,
    /// The engine's publish counter at the end.
    pub publishes: u64,
}

/// What the overload scenario produced.
#[derive(Clone, Debug)]
pub struct OverloadSoakReport {
    /// Requests issued.
    pub total: u64,
    /// Requests answered (admitted and served to completion).
    pub answered: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// In-flight permits outstanding after the fleet joined (must be 0 —
    /// shedding and panics may never leak budget).
    pub in_flight_after: u64,
    /// Median answered-request latency, microseconds, measured under the
    /// stall faults.
    pub p50_us: f64,
    /// 99th-percentile answered-request latency, microseconds.
    pub p99_us: f64,
}

/// Six two-query sessions `start → {prefix}::next`, on distinct machines
/// per batch so session segmentation never merges batches.
fn batch(prefix: &str, machine_base: u64) -> Vec<RawLogRecord> {
    (machine_base..machine_base + 6)
        .flat_map(|u| {
            [
                RawLogRecord {
                    machine_id: u,
                    timestamp: 100,
                    query: "start".into(),
                    clicks: vec![],
                },
                RawLogRecord {
                    machine_id: u,
                    timestamp: 150,
                    query: format!("{prefix}::next"),
                    clicks: vec![],
                },
            ]
        })
        .collect()
}

fn training() -> TrainingConfig {
    TrainingConfig {
        model: ModelSpec::Adjacency,
        ..TrainingConfig::default()
    }
}

fn scratch_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqp-chaos-{tag}-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One-line label for a step outcome, for the script trace.
fn label(outcome: &StepOutcome) -> String {
    match outcome {
        StepOutcome::Idle => "idle".into(),
        StepOutcome::BreakerOpen { .. } => "breaker-open".into(),
        StepOutcome::Published { generation, .. } => format!("published:{generation}"),
        StepOutcome::Failed(e) => {
            use sqp_store::RetrainError::*;
            match e {
                TrainingPanicked(_) => "panic".into(),
                SaveFailed { generation, .. } => format!("save-failed:{generation}"),
                Quarantined {
                    generation,
                    rolled_back_to,
                    ..
                } => match rolled_back_to {
                    Some(g) => format!("quarantined:{generation}->rollback:{g}"),
                    None => format!("quarantined:{generation}->no-rollback"),
                },
            }
        }
    }
}

/// Run the deterministic resilience storyline with `seed`.
///
/// Fault script (IO ordinals are global and 1-based; the retrain driver is
/// the only fs user, so they are exact):
///
/// | step | injected fault                      | expected outcome            |
/// |-----:|-------------------------------------|-----------------------------|
/// | 1    | training panic (strike #1)          | failed, window retained     |
/// | 2    | training panic (strike #2)          | failed → breaker **trips**  |
/// | 3    | —                                   | refused: breaker open       |
/// | 4    | — (cooldown elapsed)                | half-open probe → gen 1     |
/// | 5    | corrupt write #2                    | gen 2 quarantined → rollback to 1 |
/// | 6    | write errors #3, #4                 | 2 retries, then gen 3       |
/// | 7    | short read #5 (validation load)     | gen 4 quarantined → rollback to 3 |
///
/// Alongside, 4 serving workers each fire 200 `try_track_and_suggest`
/// requests (unlimited admission: nothing sheds, so the chaos digest is
/// interleaving-independent and bit-replayable).
pub fn run_replay_soak(seed: u64) -> ReplaySoakReport {
    Chaos::install_quiet_panic_hook();
    let dir = scratch_dir("replay", seed);

    let clock = Arc::new(VirtualClock::new());
    let cooldown = Duration::from_secs(1);
    let chaos = Chaos::with_clock(
        FaultPlan {
            seed,
            panic_sites: vec!["store.retrain.train".into()],
            panic_on: vec![1, 2],
            corrupt_write_on: vec![2],
            write_error_on: vec![3, 4],
            short_read_on: vec![5],
            delay_site_prefixes: vec!["serve.".into()],
            p_delay: 0.25,
            delay: Duration::from_millis(1),
            ..FaultPlan::default()
        },
        clock.clone(),
    );

    let engine = ServeEngine::with_hazard(
        Arc::new(ModelSnapshot::from_raw_logs(&batch("seed", 0), &training())),
        EngineConfig::default(),
        chaos.clone(),
    );
    let retrainer = Retrainer::new(
        RetrainConfig {
            training: training(),
            min_batch: 1,
            // One batch wide: each published generation is trained on
            // exactly the newest batch, so the serving probe pins down
            // which generation answers.
            window_records: 12,
            snapshot_dir: Some(dir.clone()),
            keep: 3,
            ..RetrainConfig::default()
        },
        batch("seed", 0),
    );
    let supervisor = Supervisor::with_seams(
        &retrainer,
        SuperviseConfig {
            max_save_attempts: 3,
            backoff_initial: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            breaker_threshold: 2,
            cooldown,
        },
        Arc::new(chaos.faulty_fs()),
        clock.clone(),
        chaos.clone(),
    );

    // Serving fleet: fixed ops per worker, unlimited admission — every
    // request is answered and per-site strike counts are reproducible.
    const WORKERS: u64 = 4;
    const OPS: u64 = 200;
    let served: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let engine = &engine;
                scope.spawn(move || {
                    let queries = ["start", "seed::next", "maps", "weather"];
                    let mut answered = 0u64;
                    for i in 0..OPS {
                        let user = w * 10_000 + (i % 64);
                        let query = queries[(i % queries.len() as u64) as usize];
                        if engine.try_track_and_suggest(user, query, 3, i).is_ok() {
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    // Scripted supervised-retrain driver (the deterministic fs user).
    let mut script = Vec::new();
    retrainer.ingest_batch(batch("b1", 100));
    script.push(label(&supervisor.step(&engine))); // panic #1
    script.push(label(&supervisor.step(&engine))); // panic #2 → trip
    script.push(label(&supervisor.step(&engine))); // refused: open
    clock.sleep(cooldown + Duration::from_millis(1));
    script.push(label(&supervisor.step(&engine))); // half-open probe → gen 1
    retrainer.ingest_batch(batch("b2", 200));
    script.push(label(&supervisor.step(&engine))); // corrupt → quarantine 2, rollback 1
    retrainer.ingest_batch(batch("b3", 300));
    script.push(label(&supervisor.step(&engine))); // 2 retries → gen 3
    retrainer.ingest_batch(batch("b4", 400));
    script.push(label(&supervisor.step(&engine))); // short read → quarantine 4, rollback 3

    let report = ReplaySoakReport {
        digest: chaos.digest(),
        stats: chaos.stats(),
        health: supervisor.health(),
        served,
        script,
        latest_generation: latest_generation_on_disk(&dir),
        serving_top: engine
            .suggest_context(&["start"], 1)
            .first()
            .map(|s| s.query.clone()),
        publishes: engine.stats().publishes,
    };
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Run the overload scenario: `max_in_flight = 2`, every serve-path strike
/// stalled 2 ms (real clock — the stall must actually occupy the permit),
/// 8 workers × 50 requests. Measures answered-request latency under the
/// faults and proves the shed/answered accounting adds up.
pub fn run_overload_soak(seed: u64) -> OverloadSoakReport {
    const WORKERS: u64 = 8;
    const OPS: u64 = 50;
    let chaos = Chaos::new(FaultPlan {
        seed,
        delay_site_prefixes: vec!["serve.".into()],
        p_delay: 1.0,
        delay: Duration::from_millis(2),
        ..FaultPlan::default()
    });
    let engine = ServeEngine::with_hazard(
        Arc::new(ModelSnapshot::from_raw_logs(&batch("seed", 0), &training())),
        EngineConfig {
            max_in_flight: 2,
            ..EngineConfig::default()
        },
        chaos.clone(),
    );

    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let engine = &engine;
                scope.spawn(move || {
                    let mut answered_us = Vec::with_capacity(OPS as usize);
                    for i in 0..OPS {
                        let t = std::time::Instant::now();
                        if engine
                            .try_track_and_suggest(w * 100 + (i % 8), "start", 3, i)
                            .is_ok()
                        {
                            answered_us.push(t.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    answered_us
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        sorted[((sorted.len() - 1) as f64 * p) as usize]
    };
    OverloadSoakReport {
        total: WORKERS * OPS,
        answered: latencies.len() as u64,
        shed: engine.stats().shed,
        in_flight_after: engine.in_flight(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}
