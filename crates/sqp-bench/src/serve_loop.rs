//! Multi-threaded serving stress harness (`serve_loop`).
//!
//! Drives a serving surface with N worker threads of mixed traffic —
//! `track_and_suggest` round trips, batched suggests, periodic idle
//! eviction — while a trainer thread retrains the model mid-run and
//! atomically publishes the new snapshots. Every operation's latency is
//! recorded; the report carries throughput plus the p50/p99/max tail, which
//! is exactly what a publication stall would show up in.
//!
//! The workload is generic over [`ServeSurface`] (defined in `sqp-serve`,
//! re-exported here) — implemented by the single [`ServeEngine`] and by
//! the replicated [`RouterEngine`](sqp_router::RouterEngine) tier (see
//! [`run_on`] / `router_loop`) — so "router overhead vs single engine" is
//! measured on byte-identical traffic, and the same seeded workload can be
//! replayed over real sockets by `net_loop`.
//!
//! The harness is deterministic in *workload* (seeded per-thread PRNGs over
//! a fixed simulated corpus) but not in interleaving — it is a stress
//! harness, not a model-equivalence test. The torn-read impossibility
//! argument lives in `sqp-serve` (one snapshot handle per request) and is
//! asserted adversarially by the umbrella's `tests/serve_concurrency.rs`;
//! here the swap-vs-traffic interaction is exercised at full speed and the
//! report asserts the publications actually landed mid-traffic.

use sqp_common::rng::{Rng, StdRng};
use sqp_core::VmmConfig;
use sqp_serve::{
    EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, SuggestRequest, TrainingConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// The serving-surface abstraction the workload is generic over was born
// here; it now lives in `sqp-serve` (with the admission-controlled and
// stats accessors the network front-end needs) and is re-exported so
// existing `serve_loop::ServeSurface` imports keep working.
pub use sqp_serve::ServeSurface;

/// Workload shape for one `serve_loop` run.
#[derive(Clone, Copy, Debug)]
pub struct ServeLoopConfig {
    /// Worker threads driving traffic (the acceptance floor is 4).
    pub threads: usize,
    /// Operations each worker performs.
    pub ops_per_thread: usize,
    /// Distinct users each worker cycles through.
    pub users_per_thread: usize,
    /// Suggestions requested per call.
    pub suggest_k: usize,
    /// Requests per batched suggest (issued every [`Self::BATCH_EVERY`] ops).
    pub batch_size: usize,
    /// Mid-run model publications performed by the trainer thread.
    pub swaps: usize,
    /// Simulated sessions in the training corpus.
    pub corpus_sessions: usize,
    /// Corpus / traffic seed.
    pub seed: u64,
}

impl ServeLoopConfig {
    /// Every this-many worker ops, one batched suggest is issued instead of
    /// a single-user round trip.
    pub const BATCH_EVERY: usize = 8;

    /// The `bench_pr2` profile: 8 threads, 2 mid-run swaps, 10k-session
    /// corpus.
    pub fn bench() -> Self {
        Self {
            threads: 8,
            ops_per_thread: 30_000,
            users_per_thread: 512,
            suggest_k: 5,
            batch_size: 32,
            swaps: 2,
            corpus_sessions: 10_000,
            seed: 42,
        }
    }

    /// A fast profile for CI tests: 4 threads, 1 swap, small corpus.
    pub fn smoke() -> Self {
        Self {
            threads: 4,
            ops_per_thread: 2_000,
            users_per_thread: 64,
            suggest_k: 3,
            batch_size: 8,
            swaps: 1,
            corpus_sessions: 1_000,
            seed: 7,
        }
    }
}

/// What a `serve_loop` run measured.
#[derive(Clone, Debug)]
pub struct ServeLoopReport {
    /// Worker threads that ran.
    pub threads: usize,
    /// Total operations completed (single round trips + batch calls). At
    /// least `threads × ops_per_thread`; workers add tail operations when
    /// needed to keep traffic flowing until the last publish lands.
    pub ops_total: u64,
    /// Individual suggestions computed (batch entries counted one by one).
    pub suggests_total: u64,
    /// Suggestions that came back non-empty (covered contexts).
    pub nonempty_suggestions: u64,
    /// Wall-clock for the traffic phase, seconds.
    pub elapsed_secs: f64,
    /// Operations per second across all workers.
    pub throughput_ops_per_sec: f64,
    /// Median operation latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile operation latency, microseconds.
    pub p99_us: f64,
    /// Worst operation latency, microseconds.
    pub max_us: f64,
    /// Model publications performed by the trainer thread.
    pub swaps_completed: u64,
    /// Publications that landed while worker traffic was still flowing
    /// (the interesting ones — a swap after the last op exercises nothing).
    pub mid_run_swaps: u64,
    /// Engine generation after the run (== `swaps_completed`).
    pub final_generation: u64,
    /// Sessions resident in the tracker when traffic stopped.
    pub active_sessions: usize,
    /// Sessions reclaimed by the post-run idle eviction sweep.
    pub evicted_at_end: usize,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Build the initial trained snapshot for `cfg`, plus the raw records (for
/// retraining) and the trained vocabulary (for traffic generation).
/// Generating the simulated corpus is the expensive part, so callers that
/// compare surfaces do it exactly once here and hand each surface the same
/// parts.
pub fn build_parts(
    cfg: &ServeLoopConfig,
) -> (
    Arc<ModelSnapshot>,
    Vec<String>,
    Vec<sqp_logsim::RawLogRecord>,
) {
    let records = crate::bench_records(cfg.corpus_sessions, cfg.seed);
    let training = TrainingConfig {
        model: ModelSpec::Vmm(VmmConfig::with_epsilon(0.05)),
        ..TrainingConfig::default()
    };
    let snapshot = Arc::new(ModelSnapshot::from_raw_logs(&records, &training));
    // Traffic draws query text from the trained vocabulary so most contexts
    // are covered; unknown-query handling is exercised by the interleaved
    // out-of-vocabulary probes below.
    let vocabulary: Vec<String> = snapshot
        .interner()
        .iter()
        .map(|(_, s)| s.to_owned())
        .collect();
    assert!(!vocabulary.is_empty(), "empty training vocabulary");
    (snapshot, vocabulary, records)
}

/// Build the initial snapshot and the engine the loop will hammer, plus
/// the raw records and vocabulary from [`build_parts`].
pub fn build_engine(
    cfg: &ServeLoopConfig,
) -> (Arc<ServeEngine>, Vec<String>, Vec<sqp_logsim::RawLogRecord>) {
    let (snapshot, vocabulary, records) = build_parts(cfg);
    let engine = Arc::new(ServeEngine::new(snapshot, EngineConfig::default()));
    (engine, vocabulary, records)
}

/// Run the stress loop against a single [`ServeEngine`]: `cfg.threads`
/// workers of mixed traffic with `cfg.swaps` mid-run model publications.
pub fn run(cfg: &ServeLoopConfig) -> ServeLoopReport {
    let (engine, vocabulary, records) = build_engine(cfg);
    run_on(engine.as_ref(), cfg, &vocabulary, &records)
}

/// Run the stress loop against any [`ServeSurface`] with a pre-built corpus
/// (from [`build_parts`]). Traffic is identical for identical `cfg`
/// regardless of the surface, so reports from a single engine and a router
/// tier are directly comparable.
pub fn run_on<S: ServeSurface>(
    engine: &S,
    cfg: &ServeLoopConfig,
    vocabulary: &[String],
    records: &[sqp_logsim::RawLogRecord],
) -> ServeLoopReport {
    assert!(cfg.threads >= 1 && cfg.ops_per_thread > 0);

    let total_ops_target = (cfg.threads * cfg.ops_per_thread) as u64;
    let ops_done = AtomicU64::new(0);
    let swaps_done = AtomicU64::new(0);
    let mid_run_swaps = AtomicU64::new(0);
    let nonempty = AtomicU64::new(0);
    // Workers still serving. Workers exit only after every publish has
    // landed, so a publish observing `active_workers > 0` — all of them, by
    // construction — genuinely raced live traffic.
    let active_workers = AtomicU64::new(0);

    let started = Instant::now();
    let mut latencies: Vec<Vec<u64>> = Vec::new();
    // Wall-clock of the traffic phase alone: stamped the moment the last
    // worker joins, so a trainer still finishing its final retrain does not
    // deflate the throughput number.
    let mut elapsed = 0.0f64;
    std::thread::scope(|scope| {
        // Trainer: retrain and publish at evenly spaced points of the run.
        let trainer_engine = engine;
        let trainer_records = records;
        let ops_done_ref = &ops_done;
        let swaps_done_ref = &swaps_done;
        let mid_run_swaps_ref = &mid_run_swaps;
        let active_workers_ref = &active_workers;
        let n_swaps = cfg.swaps;
        scope.spawn(move || {
            for swap in 0..n_swaps {
                // Strictly below total_ops_target, so the wait always ends.
                let threshold = total_ops_target * (swap as u64 + 1) / (n_swaps as u64 + 1);
                while ops_done_ref.load(Ordering::Relaxed) < threshold {
                    std::thread::yield_now();
                }
                // Alternate the component so successive snapshots differ.
                let eps = if swap % 2 == 0 { 0.0 } else { 0.1 };
                let training = TrainingConfig {
                    model: ModelSpec::Vmm(VmmConfig::with_epsilon(eps)),
                    ..TrainingConfig::default()
                };
                let next = Arc::new(ModelSnapshot::from_raw_logs(trainer_records, &training));
                trainer_engine.publish(next);
                let live = active_workers_ref.load(Ordering::Relaxed) > 0;
                swaps_done_ref.fetch_add(1, Ordering::Relaxed);
                if live {
                    mid_run_swaps_ref.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        // Workers: seeded mixed traffic.
        let handles: Vec<_> = (0..cfg.threads)
            .map(|thread| {
                let ops_done = &ops_done;
                let nonempty = &nonempty;
                let swaps_done = &swaps_done;
                let active_workers = &active_workers;
                let cfg = *cfg;
                scope.spawn(move || {
                    active_workers.fetch_add(1, Ordering::Relaxed);
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (thread as u64) << 32);
                    let mut lat = Vec::with_capacity(cfg.ops_per_thread);
                    let user_base = thread as u64 * 1_000_000;
                    // At least `ops_per_thread` ops, then keep the traffic
                    // flowing until every scheduled publish has landed — the
                    // swap must race live requests, not an idle engine. Every
                    // op (tail included) is timed and counted.
                    let mut op = 0usize;
                    while op < cfg.ops_per_thread
                        || swaps_done.load(Ordering::Relaxed) < cfg.swaps as u64
                    {
                        // A coarse logical clock: sessions stay inside the
                        // 30-minute rule, with occasional long gaps forcing
                        // fresh sessions and giving eviction something to do.
                        let now = (op as u64) * 2 + if op.is_multiple_of(101) { 3_600 } else { 0 };
                        let t = Instant::now();
                        if op % ServeLoopConfig::BATCH_EVERY == 7 {
                            let reqs: Vec<SuggestRequest> = (0..cfg.batch_size)
                                .map(|_| SuggestRequest {
                                    user: user_base
                                        + rng.random_range(0u64..cfg.users_per_thread as u64),
                                    k: cfg.suggest_k,
                                })
                                .collect();
                            let got = engine.suggest_batch(&reqs, now);
                            nonempty.fetch_add(
                                got.iter().filter(|s| !s.is_empty()).count() as u64,
                                Ordering::Relaxed,
                            );
                        } else if op.is_multiple_of(997) {
                            // Rare maintenance sweep from inside traffic.
                            engine.evict_idle(now);
                        } else {
                            let user =
                                user_base + rng.random_range(0u64..cfg.users_per_thread as u64);
                            // ~3% out-of-vocabulary probes.
                            let query = if rng.random_range(0u32..32) == 0 {
                                format!("oov-{thread}-{op}")
                            } else {
                                vocabulary[rng.random_range(0usize..vocabulary.len())].clone()
                            };
                            let got = engine.track_and_suggest(user, &query, cfg.suggest_k, now);
                            if !got.is_empty() {
                                nonempty.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        lat.push(t.elapsed().as_nanos() as u64);
                        ops_done.fetch_add(1, Ordering::Relaxed);
                        op += 1;
                    }
                    active_workers.fetch_sub(1, Ordering::Relaxed);
                    lat
                })
            })
            .collect();
        latencies = handles.into_iter().map(|h| h.join().unwrap()).collect();
        elapsed = started.elapsed().as_secs_f64();
        // (scope exit still joins the trainer, outside the timed window)
    });

    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let ops_total = all.len() as u64;
    let suggests_total = engine.suggests_total();
    let active_sessions = engine.active_sessions();
    let evicted_at_end = engine.evict_idle(u64::MAX / 2);

    ServeLoopReport {
        threads: cfg.threads,
        ops_total,
        suggests_total,
        nonempty_suggestions: nonempty.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        throughput_ops_per_sec: ops_total as f64 / elapsed.max(1e-9),
        p50_us: percentile_us(&all, 0.50),
        p99_us: percentile_us(&all, 0.99),
        max_us: percentile_us(&all, 1.0),
        swaps_completed: swaps_done.load(Ordering::Relaxed),
        mid_run_swaps: mid_run_swaps.load(Ordering::Relaxed),
        final_generation: engine.generation(),
        active_sessions,
        evicted_at_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert!((percentile_us(&ns, 0.50) - 50.0).abs() <= 1.0);
        assert!((percentile_us(&ns, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile_us(&ns, 1.0), 100.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }
}
