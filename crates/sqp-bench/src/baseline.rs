//! The pre-arena window counter, kept as a reference implementation.
//!
//! This is the hashmap-of-owned-sequences algorithm the arena suffix trie
//! replaced: every O(L²) window of every session is materialized as an owned
//! `Box<[QueryId]>` key and re-hashed in full. It exists for two reasons:
//!
//! * **equivalence testing** — the trie counter must reproduce these counts
//!   exactly (`tests/counting_equivalence.rs`);
//! * **speedup accounting** — `bench_pr1` measures both implementations on
//!   the same corpus, so the training-core speedup is recorded in-repo
//!   rather than asserted from memory.

use sqp_common::{Counter, FxHashMap, FxHashSet, QueryId, QuerySeq};

/// Counts for one window under the baseline layout.
#[derive(Clone, Debug, Default)]
pub struct BaselineEntry {
    /// Weighted occurrences of the window anywhere in a session.
    pub total: u64,
    /// Weighted occurrences at the very start of a session.
    pub at_start: u64,
    /// Weighted counts of the query immediately following the window.
    pub next: Counter<QueryId>,
}

/// The baseline counter: one owned-key hashmap entry per distinct window.
#[derive(Debug)]
pub struct BaselineWindowCounts {
    /// Window → statistics.
    pub entries: FxHashMap<QuerySeq, BaselineEntry>,
    /// Prior (root) distribution: weighted occurrences of every query.
    pub root_next: Counter<QueryId>,
    /// Number of distinct queries in the corpus.
    pub n_queries: usize,
    /// Total weighted sessions.
    pub total_sessions: u64,
    /// Total weighted query occurrences.
    pub total_occurrences: u64,
    /// Longest window length counted.
    pub max_len: usize,
}

impl BaselineWindowCounts {
    /// Count windows of length `1..=max_len` over weighted sessions,
    /// exactly as the seed implementation did.
    pub fn build(sessions: &[(QuerySeq, u64)], max_len: Option<usize>) -> Self {
        let longest = sessions.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
        let max_len = max_len.unwrap_or(longest).min(longest.max(1));

        let mut entries: FxHashMap<QuerySeq, BaselineEntry> = FxHashMap::default();
        let mut root_next = Counter::new();
        let mut distinct: FxHashSet<QueryId> = FxHashSet::default();
        let mut total_sessions = 0u64;
        let mut total_occurrences = 0u64;

        for (s, f) in sessions {
            total_sessions += f;
            for &q in s.iter() {
                distinct.insert(q);
                root_next.add(q, *f);
                total_occurrences += f;
            }
            for start in 0..s.len() {
                let limit = max_len.min(s.len() - start);
                for win_len in 1..=limit {
                    let w: QuerySeq = s[start..start + win_len].into();
                    let e = entries.entry(w).or_default();
                    e.total += f;
                    if start == 0 {
                        e.at_start += f;
                    }
                    if start + win_len < s.len() {
                        e.next.add(s[start + win_len], *f);
                    }
                }
            }
        }

        BaselineWindowCounts {
            entries,
            root_next,
            n_queries: distinct.len(),
            total_sessions,
            total_occurrences,
            max_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    #[test]
    fn matches_the_seed_toy_numbers() {
        // The Table II corpus, inlined (sqp-core is a sibling dependency).
        let corpus: Vec<(QuerySeq, u64)> = vec![
            (seq(&[1, 0, 0]), 3),
            (seq(&[1, 0, 1]), 7),
            (seq(&[0, 0]), 78),
            (seq(&[1, 0]), 5),
            (seq(&[0, 1, 0]), 1),
            (seq(&[0, 1, 1]), 1),
            (seq(&[1, 1]), 3),
            (seq(&[0]), 10),
        ];
        let c = BaselineWindowCounts::build(&corpus, None);
        let e = &c.entries[&seq(&[1, 0])];
        assert_eq!(e.next.get(&QueryId(0)), 3);
        assert_eq!(e.next.get(&QueryId(1)), 7);
        assert_eq!(e.total, 16);
        assert_eq!(e.at_start, 15);
        assert_eq!(c.total_occurrences, 218);
        assert_eq!(c.total_sessions, 108);
    }
}
