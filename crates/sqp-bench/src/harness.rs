//! A dependency-free timing harness with a criterion-shaped API.
//!
//! The workspace builds hermetically (no crates.io), so the benchmark files
//! use this instead of criterion: same `benchmark_group` / `bench_function` /
//! `bench_with_input` surface, `criterion_group!`/`criterion_main!` macros,
//! adaptive iteration counts, and a median-of-samples report. Results print
//! as one aligned line per benchmark and can be exported as JSON (see
//! `src/bin/bench_pr1.rs`).

use std::time::Instant;

/// One benchmark's measurements (per-iteration nanoseconds).
#[derive(Clone, Debug)]
pub struct Stats {
    /// Fully-qualified benchmark id (`group/name/param`).
    pub id: String,
    /// Median ns per iteration across samples.
    pub median_ns: f64,
    /// Mean ns per iteration across samples.
    pub mean_ns: f64,
    /// Fastest sample's ns per iteration.
    pub min_ns: f64,
    /// Iterations per sample.
    pub iters: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Target wall-clock per sample.
const SAMPLE_TARGET_NS: u64 = 40_000_000;
/// Ceiling on a single benchmark's total measurement time.
const BENCH_BUDGET_NS: u64 = 3_000_000_000;

/// Measure `f`, choosing an iteration count so each sample runs about
/// `SAMPLE_TARGET_NS` (40 ms), bounded by an overall budget.
pub fn measure<F: FnMut()>(id: &str, samples: usize, mut f: F) -> Stats {
    // Warmup + calibration.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1) as u64;
    let iters = (SAMPLE_TARGET_NS / once).clamp(1, 1_000_000);
    let est_sample = once * iters;
    let samples = samples
        .min(((BENCH_BUDGET_NS / est_sample.max(1)) as usize).max(2))
        .max(2);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    Stats {
        id: id.to_owned(),
        median_ns: median,
        mean_ns: mean,
        min_ns: per_iter[0],
        iters,
        samples,
    }
}

/// Root harness object; collects results across groups.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Stats>,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: 10,
        }
    }

    /// All collected results.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// Print the aligned report.
    pub fn report(&self) {
        let width = self.results.iter().map(|s| s.id.len()).max().unwrap_or(0);
        println!(
            "{:width$}  {:>14}  {:>14}  {:>14}",
            "benchmark", "median", "mean", "min"
        );
        for s in &self.results {
            println!(
                "{:width$}  {:>14}  {:>14}  {:>14}   ({} iters × {} samples)",
                s.id,
                format_ns(s.median_ns),
                format_ns(s.mean_ns),
                format_ns(s.min_ns),
                s.iters,
                s.samples,
            );
        }
    }
}

/// Human-readable duration.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A benchmark group (criterion-compatible subset).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl IdLike, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.render());
        let mut bencher = Bencher {
            id: full,
            samples: self.sample_size,
            stats: None,
        };
        f(&mut bencher);
        if let Some(stats) = bencher.stats {
            self.criterion.results.push(stats);
        }
    }

    /// Benchmark a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (kept for criterion compatibility; a no-op).
    pub fn finish(self) {}
}

/// Benchmark identifiers: `"name"` or `BenchmarkId::new("name", param)`.
pub trait IdLike {
    /// Render to the `name[/param]` form.
    fn render(&self) -> String;
}

impl IdLike for &str {
    fn render(&self) -> String {
        (*self).to_owned()
    }
}

/// A `name/param` benchmark id.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Construct from a name and a displayable parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: param.to_string(),
        }
    }
}

impl IdLike for BenchmarkId {
    fn render(&self) -> String {
        format!("{}/{}", self.name, self.param)
    }
}

/// Passed to benchmark closures; `iter` runs the measured body.
pub struct Bencher {
    id: String,
    samples: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Measure one closure (the last `iter` call in a benchmark wins).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let stats = measure(&self.id, self.samples, || {
            std::hint::black_box(f());
        });
        self.stats = Some(stats);
    }
}

/// criterion-compatible group declaration.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// criterion-compatible entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_numbers() {
        let mut x = 0u64;
        let s = measure("t", 3, || {
            x = x.wrapping_add(1);
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.iters >= 1);
        assert!(s.samples >= 2);
    }

    #[test]
    fn group_collects_results() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("a", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("b", 7), &7, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        let ids: Vec<&str> = c.results().iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, vec!["g/a", "g/b/7"]);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
    }
}
