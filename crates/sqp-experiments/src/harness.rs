//! Shared experiment harness: argument parsing, corpus construction, and the
//! trained model roster reused by all accuracy/coverage experiments.

use sqp_core::{Adjacency, Cooccurrence, Mvmm, MvmmConfig, NGram, Recommender, Vmm, VmmConfig};
use sqp_logsim::{SimConfig, SimulatedLogs};
use sqp_sessions::{PipelineConfig, ProcessedLogs};

/// Command-line arguments shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Sessions in the training epoch.
    pub train_sessions: usize,
    /// Sessions in the test epoch.
    pub test_sessions: usize,
    /// Master seed.
    pub seed: u64,
    /// Aggregated-session frequency reduction threshold (drop ≤ t).
    pub reduction_threshold: u64,
    /// Use the 3-component MVMM instead of the 11-component ε sweep.
    pub quick: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            train_sessions: 120_000,
            test_sessions: 30_000,
            seed: 42,
            reduction_threshold: 1,
            quick: false,
        }
    }
}

impl ExpArgs {
    /// Parse `--train-sessions N --test-sessions N --seed N --reduction N
    /// --quick` from `std::env::args`, falling back to defaults.
    pub fn parse() -> Self {
        let mut args = Self::default();
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            let take_val = |i: &mut usize| -> Option<String> {
                *i += 1;
                argv.get(*i).cloned()
            };
            match argv[i].as_str() {
                "--train-sessions" => {
                    args.train_sessions = take_val(&mut i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(args.train_sessions)
                }
                "--test-sessions" => {
                    args.test_sessions = take_val(&mut i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(args.test_sessions)
                }
                "--seed" => {
                    args.seed = take_val(&mut i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(args.seed)
                }
                "--reduction" => {
                    args.reduction_threshold = take_val(&mut i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(args.reduction_threshold)
                }
                "--quick" => args.quick = true,
                other => eprintln!("warning: unknown argument {other}"),
            }
            i += 1;
        }
        args
    }

    /// The simulator configuration for these arguments.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            train_sessions: self.train_sessions,
            test_sessions: self.test_sessions,
            seed: self.seed,
            ..SimConfig::default()
        }
    }

    /// The pipeline configuration for these arguments.
    pub fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            reduction_threshold: self.reduction_threshold,
            ..PipelineConfig::default()
        }
    }
}

/// The generated + processed corpus every experiment works from.
pub struct Workbench {
    /// Raw simulated logs with ground truth.
    pub logs: SimulatedLogs,
    /// Pipeline output.
    pub processed: ProcessedLogs,
    /// The arguments that produced this bench.
    pub args: ExpArgs,
}

impl Workbench {
    /// Generate and process the corpus.
    pub fn build(args: &ExpArgs) -> Self {
        let logs = sqp_logsim::generate(&args.sim_config());
        let processed = sqp_sessions::process(&logs, &args.pipeline_config());
        Workbench {
            logs,
            processed,
            args: args.clone(),
        }
    }

    /// The weighted training sessions models consume.
    pub fn train_sessions(&self) -> &[(sqp_common::QuerySeq, u64)] {
        &self.processed.train.aggregated.sessions
    }
}

/// The paper's model roster, trained once and shared by the experiments.
pub struct TrainedModels {
    /// Adjacency baseline.
    pub adjacency: Adjacency,
    /// Co-occurrence baseline.
    pub cooccurrence: Cooccurrence,
    /// Variable-length N-gram.
    pub ngram: NGram,
    /// VMM (0.0) — the full-size PST.
    pub vmm_00: Vmm,
    /// VMM (0.05) — the paper's sweet spot.
    pub vmm_005: Vmm,
    /// VMM (0.1).
    pub vmm_01: Vmm,
    /// The MVMM mixture.
    pub mvmm: Mvmm,
}

impl TrainedModels {
    /// Train the full roster.
    pub fn train(wb: &Workbench) -> Self {
        let sessions = wb.train_sessions();
        let mvmm_cfg = if wb.args.quick {
            MvmmConfig::small()
        } else {
            MvmmConfig::epsilon_sweep()
        };
        TrainedModels {
            adjacency: Adjacency::train(sessions),
            cooccurrence: Cooccurrence::train(sessions),
            ngram: NGram::train(sessions),
            vmm_00: Vmm::train(sessions, VmmConfig::with_epsilon(0.0)),
            vmm_005: Vmm::train(sessions, VmmConfig::with_epsilon(0.05)),
            vmm_01: Vmm::train(sessions, VmmConfig::with_epsilon(0.1)),
            mvmm: Mvmm::train(sessions, &mvmm_cfg),
        }
    }

    /// All models as `(label, &dyn Recommender)` in the paper's order.
    pub fn all(&self) -> Vec<(&str, &dyn Recommender)> {
        vec![
            ("Co-occ.", &self.cooccurrence),
            ("Adj.", &self.adjacency),
            ("N-gram", &self.ngram),
            ("VMM (0)", &self.vmm_00),
            ("VMM (0.05)", &self.vmm_005),
            ("VMM (0.1)", &self.vmm_01),
            ("MVMM", &self.mvmm),
        ]
    }

    /// The §V-H user-study roster (Adj., Co-occ., N-gram, MVMM).
    pub fn user_study(&self) -> Vec<&dyn Recommender> {
        vec![&self.cooccurrence, &self.adjacency, &self.ngram, &self.mvmm]
    }
}

/// Standard experiment banner.
pub fn banner(id: &str, paper_artifact: &str, args: &ExpArgs) -> String {
    format!(
        "## {id} — reproducing {paper_artifact}\n\
         ## He et al., \"Web Query Recommendation via Sequential Query Prediction\", ICDE 2009\n\
         ## corpus: {} train / {} test sessions, seed {}, reduction ≤{}\n",
        args.train_sessions, args.test_sessions, args.seed, args.reduction_threshold
    )
}
