//! Beyond the paper's figures: ablations of the design choices called out in
//! DESIGN.md, and the §VI future-work items that are cheap to realize on the
//! simulator (retraining cadence, the Eq. (1) log-loss framework metric).

use crate::harness::Workbench;
use sqp_core::{
    Adjacency, BackoffConfig, BackoffNgram, Hmm, HmmConfig, Mvmm, MvmmConfig, NGram, Recommender,
    SequenceScorer, Vmm, VmmConfig,
};
use sqp_eval::report::{f4, headers, pct, render_table};
use sqp_eval::{overall_coverage, overall_ndcg};
use sqp_sessions::GroundTruth;
use std::time::Instant;

/// Ablation: the ε growth threshold, evaluated against both the reduced
/// ground truth (the paper's protocol, head-heavy) and the unreduced one
/// (tail included). ε prunes low-divergence deep states; its effect is
/// visible in tree size always, and in accuracy mostly on the tail.
pub fn ablation_epsilon(wb: &Workbench) -> String {
    let sessions = wb.train_sessions();
    // Unreduced ground truth over the same logs (the interner is assigned
    // before reduction, so ids are compatible by construction).
    let logs = &wb.logs;
    let mut unreduced_cfg = wb.args.pipeline_config();
    unreduced_cfg.reduction_threshold = 0;
    let unreduced = sqp_sessions::process(logs, &unreduced_cfg);
    assert_eq!(
        unreduced.interner.len(),
        wb.processed.interner.len(),
        "interners must agree for id compatibility"
    );
    let gt_reduced = &wb.processed.ground_truth;
    let gt_full: &GroundTruth = &unreduced.ground_truth;

    let mut rows = Vec::new();
    for eps in [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(eps));
        rows.push(vec![
            format!("{eps}"),
            vmm.node_count().to_string(),
            f4(overall_ndcg(&vmm, gt_reduced, 1)),
            f4(overall_ndcg(&vmm, gt_reduced, 5)),
            f4(overall_ndcg(&vmm, gt_full, 1)),
            f4(overall_ndcg(&vmm, gt_full, 5)),
            pct(overall_coverage(&vmm, gt_full)),
        ]);
    }
    let mut out = render_table(
        "Ablation — VMM epsilon sweep (tree size and accuracy)",
        &headers(&[
            "epsilon",
            "PST nodes",
            "NDCG@1 (reduced gt)",
            "NDCG@5 (reduced gt)",
            "NDCG@1 (full gt)",
            "NDCG@5 (full gt)",
            "coverage (full gt)",
        ]),
        &rows,
    );
    out.push_str(
        "\nexpected: node count shrinks monotonically with epsilon; accuracy is flat on \
         the popular (reduced) contexts and degrades on the tail once pruning bites\n",
    );
    out
}

/// Ablation: MVMM mixture size K — accuracy, coverage, merged tree size,
/// training time. The paper uses K = 11; is the mixture worth its K-fold
/// training cost?
pub fn ablation_mixture(wb: &Workbench) -> String {
    let sessions = wb.train_sessions();
    let gt = &wb.processed.ground_truth;
    let mut rows = Vec::new();
    for k in [1usize, 3, 6, 11] {
        let components: Vec<VmmConfig> = (0..k)
            .map(|i| VmmConfig::with_epsilon(0.1 * i as f64 / k.max(2) as f64))
            .collect();
        let cfg = MvmmConfig {
            components,
            fit: sqp_core::FitConfig::default(),
            parallel: true,
        };
        let start = Instant::now();
        let mvmm = Mvmm::train(sessions, &cfg);
        let elapsed = start.elapsed();
        rows.push(vec![
            k.to_string(),
            f4(overall_ndcg(&mvmm, gt, 1)),
            f4(overall_ndcg(&mvmm, gt, 5)),
            pct(overall_coverage(&mvmm, gt)),
            mvmm.merged_state_count().to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!(
                "[{}]",
                mvmm.sigmas()
                    .iter()
                    .map(|s| format!("{s:.2}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ]);
    }
    render_table(
        "Ablation — MVMM mixture size K",
        &headers(&[
            "K",
            "NDCG@1",
            "NDCG@5",
            "coverage",
            "merged nodes",
            "train ms",
            "sigmas",
        ]),
        &rows,
    )
}

/// Ablation: the data-reduction threshold of §V-A.4 — how much cleaning is
/// too much? Shows retention, ground-truth size, and downstream accuracy.
pub fn ablation_reduction(wb: &Workbench) -> String {
    let logs = &wb.logs;
    let mut rows = Vec::new();
    for threshold in [0u64, 1, 2, 5] {
        let mut cfg = wb.args.pipeline_config();
        cfg.reduction_threshold = threshold;
        let p = sqp_sessions::process(logs, &cfg);
        let sessions = &p.train.aggregated.sessions;
        let adj = Adjacency::train(sessions);
        let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));
        rows.push(vec![
            threshold.to_string(),
            pct(p.train.reduction.retention()),
            p.ground_truth.len().to_string(),
            f4(overall_ndcg(&adj, &p.ground_truth, 5)),
            f4(overall_ndcg(&vmm, &p.ground_truth, 5)),
            pct(overall_coverage(&vmm, &p.ground_truth)),
        ]);
    }
    let mut out = render_table(
        "Ablation — data-reduction threshold (drop aggregated sessions with freq <= t)",
        &headers(&[
            "threshold",
            "train retention",
            "gt contexts",
            "Adj NDCG@5",
            "VMM NDCG@5",
            "VMM coverage",
        ]),
        &rows,
    );
    out.push_str(
        "\nexpected: higher thresholds concentrate evaluation on popular sessions — \
         coverage and NDCG rise while the evaluated context pool shrinks\n",
    );
    out
}

/// Extension (§VI): retraining cadence. Train on the first half of the
/// training epoch vs all of it; newer data covers new trends (fresh canonical
/// sessions), so both coverage and accuracy should improve with retraining.
pub fn ext_retraining(wb: &Workbench) -> String {
    let sessions = wb.train_sessions();
    let gt = &wb.processed.ground_truth;
    let mut rows = Vec::new();
    for fraction in [0.25, 0.5, 0.75, 1.0] {
        let slice = sqp_eval::subsample(sessions, fraction);
        let vmm = Vmm::train(&slice, VmmConfig::with_epsilon(0.05));
        let mvmm = Mvmm::train(&slice, &MvmmConfig::small());
        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            slice.len().to_string(),
            f4(overall_ndcg(&vmm, gt, 5)),
            pct(overall_coverage(&vmm, gt)),
            f4(overall_ndcg(&mvmm, gt, 5)),
            pct(overall_coverage(&mvmm, gt)),
        ]);
    }
    let mut out = render_table(
        "Extension — retraining with more history (the paper's §VI deployment question)",
        &headers(&[
            "history used",
            "unique sessions",
            "VMM NDCG@5",
            "VMM coverage",
            "MVMM NDCG@5",
            "MVMM coverage",
        ]),
        &rows,
    );
    out.push_str("\nexpected: coverage grows monotonically with history; accuracy saturates\n");
    out
}

/// Extension: the Eq. (1) average log-loss — the framework objective the
/// paper optimizes but never plots. Lower is better; the mixture should not
/// be worse than its best component.
pub fn ext_logloss(wb: &Workbench) -> String {
    let sessions = wb.train_sessions();
    let ngram = NGram::train(sessions);
    let vmm0 = Vmm::train(sessions, VmmConfig::with_epsilon(0.0));
    let vmm05 = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));
    let mvmm = Mvmm::train(
        sessions,
        &MvmmConfig {
            parallel: true,
            ..MvmmConfig::small()
        },
    );

    // Score multi-query test sequences (support-weighted).
    let test_sessions: Vec<(&sqp_common::QuerySeq, u64)> = wb
        .processed
        .test
        .aggregated
        .sessions
        .iter()
        .filter(|(s, _)| s.len() >= 2)
        .map(|(s, f)| (s, *f))
        .collect();

    let loss = |scorer: &dyn SequenceScorer| -> f64 {
        let mut rows: Vec<(usize, f64)> = Vec::new();
        for (s, f) in &test_sessions {
            for _ in 0..*f {
                rows.push((s.len(), scorer.sequence_log10_prob(s)));
            }
        }
        sqp_common::math::average_log_loss(&rows)
    };

    let rows = vec![
        vec!["N-gram".to_string(), f4(loss(&ngram))],
        vec!["VMM (0)".to_string(), f4(loss(&vmm0))],
        vec!["VMM (0.05)".to_string(), f4(loss(&vmm05))],
        vec!["MVMM".to_string(), f4(loss(&mvmm))],
    ];
    let mut out = render_table(
        "Extension — average log-loss rate on test sequences (Eq. 1, log base 10)",
        &headers(&["method", "avg log-loss"]),
        &rows,
    );
    out.push_str(&format!(
        "\ntest sequences scored: {} (multi-query, support-weighted)\n\
         lower is better; the naive N-gram pays heavily for uncovered transitions\n",
        test_sessions
            .iter()
            .map(|(_, f)| *f as usize)
            .sum::<usize>()
    ));
    out
}

/// Extension: coverage/accuracy of the MVMM as the recommendation list size
/// N varies — the deployment knob of §I-B (the paper fixes N = 5).
pub fn ext_list_size(wb: &Workbench) -> String {
    let sessions = wb.train_sessions();
    let gt = &wb.processed.ground_truth;
    let mvmm = Mvmm::train(sessions, &MvmmConfig::small());
    let mut rows = Vec::new();
    for n in [1usize, 3, 5, 10] {
        // Hit-rate style: does the true top continuation appear in top-N?
        let mut hits = 0u64;
        let mut total = 0u64;
        for e in &gt.entries {
            let recs = mvmm.recommend(&e.context, n);
            if recs.is_empty() {
                continue;
            }
            total += e.support;
            let truth_top = e.top[0].0;
            if recs.iter().any(|r| r.query == truth_top) {
                hits += e.support;
            }
        }
        rows.push(vec![
            n.to_string(),
            pct(if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }),
        ]);
    }
    render_table(
        "Extension — hit rate of the true next query vs recommendation list size N",
        &headers(&["N", "hit rate (covered contexts)"]),
        &rows,
    )
}

/// Extension (§VI): "more sophisticated Markov models such as HMM" and the
/// back-off N-gram family the VMM descends from, benchmarked against the
/// paper's own line-up. Answers the paper's open question — does hidden-state
/// modelling raise the bar? — on the simulator.
pub fn ext_future_models(wb: &Workbench) -> String {
    let sessions = wb.train_sessions();
    let gt = &wb.processed.ground_truth;

    let mut rows = Vec::new();
    let mut add = |name: &str, model: &dyn Recommender, train_ms: f64| {
        rows.push(vec![
            name.to_string(),
            f4(overall_ndcg(model, gt, 1)),
            f4(overall_ndcg(model, gt, 5)),
            pct(overall_coverage(model, gt)),
            sqp_common::mem::format_megabytes(model.memory_bytes()),
            format!("{train_ms:.0}"),
        ]);
    };

    let t = Instant::now();
    let adj = Adjacency::train(sessions);
    add("Adj. (baseline)", &adj, t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));
    add("VMM (0.05)", &vmm, t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let mvmm = Mvmm::train(sessions, &MvmmConfig::small());
    add("MVMM", &mvmm, t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let backoff = BackoffNgram::train(sessions, BackoffConfig::default());
    add("Backoff N-gram", &backoff, t.elapsed().as_secs_f64() * 1e3);

    for k in [8usize, 16, 32] {
        let t = Instant::now();
        let hmm = Hmm::train(
            sessions,
            HmmConfig {
                n_states: k,
                ..HmmConfig::default()
            },
        );
        add(
            &format!("HMM (K={k})"),
            &hmm,
            t.elapsed().as_secs_f64() * 1e3,
        );
    }

    let mut out = render_table(
        "Extension — the paper's §VI future-work models vs its line-up",
        &headers(&["method", "NDCG@1", "NDCG@5", "coverage", "MB", "train ms"]),
        &rows,
    );
    out.push_str(
        "\nthe paper asks whether HMM-style hidden-intent models \"can further raise the \
         performance bar\"; on session data this sparse, explicit-context models \
         (VMM/MVMM/backoff) retain the edge while the HMM pays a large EM training cost\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{ExpArgs, Workbench};

    fn small_bench() -> Workbench {
        Workbench::build(&ExpArgs {
            train_sessions: 8_000,
            test_sessions: 2_000,
            quick: true,
            ..ExpArgs::default()
        })
    }

    #[test]
    fn ablations_and_extensions_run() {
        let wb = small_bench();
        for report in [
            ablation_epsilon(&wb),
            ablation_mixture(&wb),
            ablation_reduction(&wb),
            ext_retraining(&wb),
            ext_logloss(&wb),
            ext_list_size(&wb),
        ] {
            assert!(report.len() > 100, "suspiciously short report:\n{report}");
        }
    }

    #[test]
    fn epsilon_sweep_tree_sizes_are_monotone() {
        let wb = small_bench();
        let sessions = wb.train_sessions();
        let mut last = usize::MAX;
        for eps in [0.0, 0.05, 0.2, 1.0] {
            let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(eps));
            assert!(vmm.node_count() <= last, "tree grew at eps {eps}");
            last = vmm.node_count();
        }
    }

    #[test]
    fn retraining_coverage_is_monotone_in_history() {
        let wb = small_bench();
        let sessions = wb.train_sessions();
        let gt = &wb.processed.ground_truth;
        let half = sqp_eval::subsample(sessions, 0.5);
        let vmm_half = Vmm::train(&half, VmmConfig::with_epsilon(0.05));
        let vmm_full = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));
        assert!(overall_coverage(&vmm_full, gt) >= overall_coverage(&vmm_half, gt) - 1e-9);
    }
}
