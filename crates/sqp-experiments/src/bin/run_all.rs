//! Run the complete experiment suite — every table and figure of the paper —
//! on one shared corpus and one trained model roster.

use sqp_experiments::{
    banner, data_figs, model_figs, user_figs, ExpArgs, TrainedModels, Workbench,
};
use std::time::Instant;

fn section(title: &str) {
    println!("\n{}", "#".repeat(78));
    println!("# {title}");
    println!("{}", "#".repeat(78));
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "{}",
        banner("run_all", "the full evaluation suite (§V)", &args)
    );

    let t0 = Instant::now();
    eprintln!("generating logs and running the pipeline...");
    let wb = Workbench::build(&args);
    eprintln!(
        "corpus ready in {:.1}s; training models...",
        t0.elapsed().as_secs_f64()
    );
    let t1 = Instant::now();
    let models = TrainedModels::train(&wb);
    eprintln!("models trained in {:.1}s", t1.elapsed().as_secs_f64());

    section("Figure 1 / Table I — session patterns");
    println!("{}", data_figs::fig01_patterns(&wb));
    println!("{}", data_figs::tab01_pattern_examples(&wb));

    section("Figure 2 — prediction entropy");
    println!("{}", data_figs::fig02_entropy(&wb));

    section("Figure 3 / Table II — toy PST (exact reproduction)");
    println!("{}", data_figs::fig03_toy_pst());

    section("Table IV / Table V — dataset statistics");
    println!("{}", data_figs::tab04_dataset_stats(&wb));
    println!("{}", data_figs::tab05_sample_sessions(&wb));

    section("Figure 5 — session length histogram");
    println!("{}", data_figs::fig05_session_histogram(&wb));

    section("Figure 6 — power law of aggregated sessions");
    println!("{}", data_figs::fig06_power_law(&wb));

    section("Figure 7 — data reduction");
    println!("{}", data_figs::fig07_reduction(&wb));

    section("Figure 8 — accuracy: sequence vs pair-wise");
    println!("{}", model_figs::fig08_accuracy_pairwise(&wb, &models));

    section("Figure 9 — accuracy: MVMM vs VMM");
    println!("{}", model_figs::fig09_accuracy_vmm(&wb, &models));

    section("Figure 10 — coverage");
    println!("{}", model_figs::fig10_coverage(&wb, &models));

    section("Figure 11 — coverage vs context length");
    println!("{}", model_figs::fig11_coverage_by_length(&wb, &models));

    section("Table VI — unpredictability reasons");
    println!("{}", model_figs::tab06_unpredictable_reasons(&wb, &models));

    section("Table VII — memory footprint");
    println!("{}", model_figs::tab07_memory(&wb, &models));

    section("Figure 12 — training time");
    println!("{}", model_figs::fig12_training_time(&wb));

    section("Table VIII / Figures 13–14 — user study");
    println!("{}", user_figs::tab08_user_labels(&wb, &models));
    println!("{}", user_figs::fig13_user_eval(&wb, &models));
    println!("{}", user_figs::fig14_precision_positions(&wb, &models));

    eprintln!(
        "\nfull suite completed in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
