//! Extension (recommendation list size).
fn main() {
    sqp_experiments::run_data_experiment(
        "ext_list_size",
        "Extension (recommendation list size)",
        sqp_experiments::extras::ext_list_size,
    );
}
