//! Figure 3 + Table II: the paper's toy PST, reproduced exactly.
fn main() {
    println!("{}", sqp_experiments::data_figs::fig03_toy_pst());
}
