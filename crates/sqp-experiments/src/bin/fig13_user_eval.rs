//! Figure 13: user-evaluation precision and recall.
fn main() {
    sqp_experiments::run_model_experiment(
        "fig13",
        "Figure 13 (user evaluation precision/recall)",
        sqp_experiments::user_figs::fig13_user_eval,
    );
}
