//! Figure 12: training time versus training data.
fn main() {
    sqp_experiments::run_data_experiment(
        "fig12",
        "Figure 12 (training time scaling)",
        sqp_experiments::model_figs::fig12_training_time,
    );
}
