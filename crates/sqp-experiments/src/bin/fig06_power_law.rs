//! Figure 6: power-law distribution of aggregated sessions.
fn main() {
    sqp_experiments::run_data_experiment(
        "fig06",
        "Figure 6 (power law of aggregated sessions)",
        sqp_experiments::data_figs::fig06_power_law,
    );
}
