//! Figure 7: session histogram after data reduction.
fn main() {
    sqp_experiments::run_data_experiment(
        "fig07",
        "Figure 7 (histogram after data reduction)",
        sqp_experiments::data_figs::fig07_reduction,
    );
}
