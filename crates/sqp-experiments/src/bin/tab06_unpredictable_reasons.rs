//! Table VI: reasons for unpredictable queries.
fn main() {
    sqp_experiments::run_model_experiment(
        "tab06",
        "Table VI (reasons for unpredictable queries)",
        sqp_experiments::model_figs::tab06_unpredictable_reasons,
    );
}
