//! Table VII: memory footprint per method.
fn main() {
    sqp_experiments::run_model_experiment(
        "tab07",
        "Table VII (memory footprint)",
        sqp_experiments::model_figs::tab07_memory,
    );
}
