//! Ablation (data-reduction threshold).
fn main() {
    sqp_experiments::run_data_experiment(
        "ablation_reduction",
        "Ablation (data-reduction threshold)",
        sqp_experiments::extras::ablation_reduction,
    );
}
