//! Figure 9: NDCG@{1,3,5} — MVMM vs single VMMs.
fn main() {
    sqp_experiments::run_model_experiment(
        "fig09",
        "Figure 9 (accuracy: MVMM vs VMM)",
        sqp_experiments::model_figs::fig09_accuracy_vmm,
    );
}
