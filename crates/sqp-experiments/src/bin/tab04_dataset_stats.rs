//! Table IV: summary statistics of segmented sessions.
fn main() {
    sqp_experiments::run_data_experiment(
        "tab04",
        "Table IV (dataset summary statistics)",
        sqp_experiments::data_figs::tab04_dataset_stats,
    );
}
