//! Ablation (VMM epsilon sweep).
fn main() {
    sqp_experiments::run_data_experiment(
        "ablation_epsilon",
        "Ablation (VMM epsilon sweep)",
        sqp_experiments::extras::ablation_epsilon,
    );
}
