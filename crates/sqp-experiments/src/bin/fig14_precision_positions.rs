//! Figure 14: precision over the top-5 positions.
fn main() {
    sqp_experiments::run_model_experiment(
        "fig14",
        "Figure 14 (precision over top-5 positions)",
        sqp_experiments::user_figs::fig14_precision_positions,
    );
}
