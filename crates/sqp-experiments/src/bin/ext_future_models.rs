//! Extension: §VI future-work models (HMM, back-off N-gram) vs the line-up.
fn main() {
    sqp_experiments::run_data_experiment(
        "ext_future_models",
        "Extension (§VI future-work models: HMM, back-off N-gram)",
        sqp_experiments::extras::ext_future_models,
    );
}
