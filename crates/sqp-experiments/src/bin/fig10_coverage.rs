//! Figure 10: overall coverage per method.
fn main() {
    sqp_experiments::run_model_experiment(
        "fig10",
        "Figure 10 (coverage of various methods)",
        sqp_experiments::model_figs::fig10_coverage,
    );
}
