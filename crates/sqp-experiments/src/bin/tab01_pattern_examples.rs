//! Table I: sample search sequence patterns.
fn main() {
    sqp_experiments::run_data_experiment(
        "tab01",
        "Table I (sample search sequence patterns)",
        sqp_experiments::data_figs::tab01_pattern_examples,
    );
}
