//! Figure 11: coverage versus context length.
fn main() {
    sqp_experiments::run_model_experiment(
        "fig11",
        "Figure 11 (coverage vs context length)",
        sqp_experiments::model_figs::fig11_coverage_by_length,
    );
}
