//! Table V: sample sessions.
fn main() {
    sqp_experiments::run_data_experiment(
        "tab05",
        "Table V (sample sessions)",
        sqp_experiments::data_figs::tab05_sample_sessions,
    );
}
