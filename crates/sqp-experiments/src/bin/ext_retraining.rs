//! Extension (retraining cadence, §VI).
fn main() {
    sqp_experiments::run_data_experiment(
        "ext_retraining",
        "Extension (retraining cadence, §VI)",
        sqp_experiments::extras::ext_retraining,
    );
}
