//! Figure 1: distribution of the seven session-pattern types.
fn main() {
    sqp_experiments::run_data_experiment(
        "fig01",
        "Figure 1 (session pattern distribution)",
        sqp_experiments::data_figs::fig01_patterns,
    );
}
