//! Extension (Eq. 1 average log-loss).
fn main() {
    sqp_experiments::run_data_experiment(
        "ext_logloss",
        "Extension (Eq. 1 average log-loss)",
        sqp_experiments::extras::ext_logloss,
    );
}
