//! Ablation (MVMM mixture size).
fn main() {
    sqp_experiments::run_data_experiment(
        "ablation_mixture",
        "Ablation (MVMM mixture size)",
        sqp_experiments::extras::ablation_mixture,
    );
}
