//! Table VIII: user labeling distribution.
fn main() {
    sqp_experiments::run_model_experiment(
        "tab08",
        "Table VIII (user labeling distribution)",
        sqp_experiments::user_figs::tab08_user_labels,
    );
}
