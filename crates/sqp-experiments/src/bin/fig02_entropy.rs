//! Figure 2: average prediction entropy versus context length.
fn main() {
    sqp_experiments::run_data_experiment(
        "fig02",
        "Figure 2 (prediction entropy vs context length)",
        sqp_experiments::data_figs::fig02_entropy,
    );
}
