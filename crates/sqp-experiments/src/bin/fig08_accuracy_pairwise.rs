//! Figure 8: NDCG@{1,3,5} — sequence models vs pair-wise baselines.
fn main() {
    sqp_experiments::run_model_experiment(
        "fig08",
        "Figure 8 (accuracy: pair-wise vs sequence models)",
        sqp_experiments::model_figs::fig08_accuracy_pairwise,
    );
}
