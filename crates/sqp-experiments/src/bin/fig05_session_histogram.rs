//! Figure 5: session count versus session length.
fn main() {
    sqp_experiments::run_data_experiment(
        "fig05",
        "Figure 5 (session count vs session length)",
        sqp_experiments::data_figs::fig05_session_histogram,
    );
}
