//! Data-centric experiments: Figures 1–7 and Tables I, IV, V.

use crate::harness::Workbench;
use sqp_common::math::kl_divergence_base10;
use sqp_core::toy::{toy_corpus, toy_test_sequence, TOY_EPSILON, TOY_TEST_SEQUENCE_PROB};
use sqp_core::{SequenceScorer, Vmm, VmmConfig};
use sqp_eval::report::{f4, headers, pct, render_series, render_table};
use sqp_logsim::PatternType;
use sqp_sessions::patterns::{classify_session, order_sensitive_fraction, pattern_distribution};

/// Figure 1: distribution of the seven session-pattern types, classified by
/// the rule-based labeler, with generator ground truth and agreement rate.
pub fn fig01_patterns(wb: &Workbench) -> String {
    let vocab = &wb.logs.truth.vocabulary;
    let sample: Vec<&[String]> = wb
        .logs
        .truth
        .train_sessions
        .iter()
        .take(20_000)
        .map(|s| s.queries.as_slice())
        .collect();
    let counts = pattern_distribution(sample.iter().copied(), Some(vocab));
    let total: u64 = counts.iter().sum();

    // Generator ground truth over the same sample.
    let mut truth_counts = [0u64; 7];
    let mut agree = 0u64;
    let mut compared = 0u64;
    for s in wb.logs.truth.train_sessions.iter().take(20_000) {
        if let Some(t) = s.dominant_label() {
            truth_counts[t.index()] += 1;
            if let Some(c) = classify_session(&s.queries, Some(vocab)) {
                compared += 1;
                if c == t {
                    agree += 1;
                }
            }
        }
    }
    let truth_total: u64 = truth_counts.iter().sum();

    let rows: Vec<Vec<String>> = PatternType::ALL
        .iter()
        .map(|p| {
            vec![
                p.label().to_string(),
                pct(counts[p.index()] as f64 / total.max(1) as f64),
                pct(truth_counts[p.index()] as f64 / truth_total.max(1) as f64),
            ]
        })
        .collect();
    let mut out = render_table(
        "Figure 1 — session pattern distribution (multi-query sessions)",
        &headers(&["pattern", "classified", "generator truth"]),
        &rows,
    );
    out.push_str(&format!(
        "\norder-sensitive share (classified): {} (paper: 34.34%)\n\
         classifier agreement with generator truth: {}\n\
         sessions classified: {total}\n",
        pct(order_sensitive_fraction(&counts)),
        pct(agree as f64 / compared.max(1) as f64),
    ));
    out
}

/// Table I: one example session per pattern type.
pub fn tab01_pattern_examples(wb: &Workbench) -> String {
    let mut rows = Vec::new();
    for p in PatternType::ALL {
        let example = wb
            .logs
            .truth
            .train_sessions
            .iter()
            .find(|s| s.dominant_label() == Some(p))
            .map(|s| s.queries.join(" => "))
            .unwrap_or_else(|| "(none generated)".into());
        rows.push(vec![p.label().to_string(), example]);
    }
    render_table(
        "Table I — sample search sequence patterns (simulated)",
        &headers(&["search sequence pattern", "example"]),
        &rows,
    )
}

/// Figure 2: average prediction entropy versus context length.
pub fn fig02_entropy(wb: &Workbench) -> String {
    let pts = sqp_eval::entropy_by_context_length(wb.train_sessions(), 5);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.context_len.to_string(),
                f4(p.mean_entropy),
                p.contexts.to_string(),
            ]
        })
        .collect();
    let mut out = render_table(
        "Figure 2 — average prediction entropy vs context length (log base 10)",
        &headers(&["context length", "avg entropy", "#contexts"]),
        &rows,
    );
    out.push('\n');
    out.push_str(&render_series(
        "entropy",
        &pts.iter()
            .map(|p| (p.context_len as f64, p.mean_entropy))
            .collect::<Vec<_>>(),
    ));
    out.push_str("expected shape: monotone decrease (paper's curve drops dramatically)\n");
    out
}

/// Figure 3 + Table II: the toy PST, checked against the paper's numbers.
pub fn fig03_toy_pst() -> String {
    let corpus = toy_corpus();
    let vmm = Vmm::train(&corpus, VmmConfig::with_epsilon(TOY_EPSILON));

    let mut out = String::from(
        "Figure 3 — PST built from the Table II toy corpus (epsilon = 0.1)\n\
         =================================================================\n",
    );
    // States and their distributions.
    let mut states: Vec<_> = vmm.pst().iter().collect();
    states.sort_by_key(|n| (n.context.len(), n.context.clone()));
    for node in states {
        let label = if node.context.is_empty() {
            "e".to_string()
        } else {
            node.context
                .iter()
                .map(|q| format!("q{}", q.0))
                .collect::<Vec<_>>()
                .join("")
        };
        out.push_str(&format!(
            "state {:6}  (P(q0|s), P(q1|s)) = ({:.3}, {:.3})\n",
            label,
            node.dist.prob(sqp_common::QueryId(0)),
            node.dist.prob(sqp_common::QueryId(1)),
        ));
    }

    // The two KL decisions.
    let d_q1q0 = kl_divergence_base10(&[0.9, 0.1], &[0.3, 0.7], 0.0);
    let d_q0q1 = kl_divergence_base10(&[0.8, 0.2], &[0.5, 0.5], 0.0);
    out.push_str(&format!(
        "\nD_KL(q0 || q1q0) = {:.4}  (paper: 0.3449) -> {}\n",
        d_q1q0,
        if d_q1q0 > TOY_EPSILON {
            "added"
        } else {
            "rejected"
        }
    ));
    out.push_str(&format!(
        "D_KL(q1 || q0q1) = {:.4}  (paper: 0.0837) -> {}\n",
        d_q0q1,
        if d_q0q1 > TOY_EPSILON {
            "added"
        } else {
            "rejected"
        }
    ));

    // The walked-through sequence probability.
    let lp = vmm.sequence_log10_prob(&toy_test_sequence());
    out.push_str(&format!(
        "\nP([q0,q1,q0,q1,q1,q0]) = {:.6}  (paper: 1x0.1x0.8x0.7x0.2x0.8 = {:.6})\n",
        10f64.powf(lp),
        TOY_TEST_SEQUENCE_PROB
    ));
    let ok = (10f64.powf(lp) - TOY_TEST_SEQUENCE_PROB).abs() < 1e-9
        && vmm.node_count() == 4
        && (d_q1q0 - 0.3449).abs() < 1e-4
        && (d_q0q1 - 0.0837).abs() < 1e-4;
    out.push_str(&format!(
        "node count = {} (paper: states e, q0, q1, q1q0)\nverdict: {}\n",
        vmm.node_count(),
        if ok { "EXACT MATCH" } else { "MISMATCH" }
    ));
    out
}

/// Table IV: summary statistics of segmented sessions.
pub fn tab04_dataset_stats(wb: &Workbench) -> String {
    let tr = &wb.processed.train.stats;
    let te = &wb.processed.test.stats;
    let rows = vec![
        vec![
            "training".into(),
            tr.n_sessions.to_string(),
            tr.n_searches.to_string(),
            tr.n_unique_queries.to_string(),
            format!("{:.2}", tr.mean_session_length()),
        ],
        vec![
            "test".into(),
            te.n_sessions.to_string(),
            te.n_searches.to_string(),
            te.n_unique_queries.to_string(),
            format!("{:.2}", te.mean_session_length()),
        ],
    ];
    let mut out = render_table(
        "Table IV — summary statistics of segmented sessions",
        &headers(&[
            "data",
            "# sessions",
            "# searches",
            "# unique queries",
            "mean length",
        ]),
        &rows,
    );
    out.push_str(
        "\npaper scale: 2.0B/0.49B sessions, 3.9B/1.1B searches, 1.1B/0.36B unique queries\n\
         (simulated corpus preserves ratios and shapes, not absolute magnitudes)\n",
    );
    out
}

/// Table V: sample sessions of each length.
pub fn tab05_sample_sessions(wb: &Workbench) -> String {
    let interner = &wb.processed.interner;
    let mut rows = Vec::new();
    for len in 2..=5usize {
        if let Some((seq, freq)) = wb
            .processed
            .train
            .aggregated
            .sessions
            .iter()
            .find(|(s, _)| s.len() == len)
        {
            rows.push(vec![
                len.to_string(),
                interner.render(seq),
                freq.to_string(),
            ]);
        }
    }
    render_table(
        "Table V — sample sessions (most frequent per length)",
        &headers(&["length", "session", "frequency"]),
        &rows,
    )
}

/// Figure 5: session count versus session length (train and test).
pub fn fig05_session_histogram(wb: &Workbench) -> String {
    let mut out = String::new();
    for (name, epoch) in [
        ("training", &wb.processed.train),
        ("test", &wb.processed.test),
    ] {
        let rows: Vec<Vec<String>> = epoch
            .length_hist_before
            .iter()
            .map(|(len, count)| vec![len.to_string(), count.to_string()])
            .collect();
        out.push_str(&render_table(
            &format!("Figure 5 ({name}) — session count vs session length"),
            &headers(&["session length", "# sessions"]),
            &rows,
        ));
        out.push('\n');
    }
    out.push_str("expected shape: monotone decay with a visible tail beyond length 4\n");
    out
}

/// Figure 6: power-law distribution of aggregated session frequencies.
pub fn fig06_power_law(wb: &Workbench) -> String {
    let mut out = String::new();
    for (name, epoch) in [
        ("training", &wb.processed.train),
        ("test", &wb.processed.test),
    ] {
        let slope = sqp_common::hist::log_log_slope(&epoch.spectrum).unwrap_or(f64::NAN);
        out.push_str(&format!(
            "Figure 6 ({name}) — aggregated session rank/frequency\n\
             unique aggregated sessions: {}\n\
             log-log slope: {slope:.3} (a clean power law is a straight line)\n",
            epoch.spectrum.len()
        ));
        let sample: Vec<(f64, f64)> = epoch
            .spectrum
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                // Log-spaced sample of the spectrum for the series output.
                let i = *i + 1;
                i.is_power_of_two() || i % (epoch.spectrum.len() / 20).max(1) == 0
            })
            .map(|(_, &p)| p)
            .collect();
        out.push_str(&render_series(&format!("rank_freq_{name}"), &sample));
        out.push('\n');
    }
    out
}

/// Figure 7: session histogram after data reduction, with retention stats.
pub fn fig07_reduction(wb: &Workbench) -> String {
    let mut out = String::new();
    for (name, epoch, paper_pct) in [
        ("training", &wb.processed.train, "60.48%"),
        ("test", &wb.processed.test, "64.72%"),
    ] {
        let rows: Vec<Vec<String>> = epoch
            .length_hist_after
            .iter()
            .map(|(len, count)| vec![len.to_string(), count.to_string()])
            .collect();
        out.push_str(&render_table(
            &format!("Figure 7 ({name}) — session count vs length after reduction"),
            &headers(&["session length", "# sessions"]),
            &rows,
        ));
        out.push_str(&format!(
            "dropped unique aggregated sessions: {} (paper: ~40% at freq <= 5)\n\
             data retained: {} (paper: {paper_pct})\n\n",
            pct(epoch.reduction.dropped_unique_fraction()),
            pct(epoch.reduction.retention()),
        ));
    }
    out
}
