//! Model-centric experiments: Figures 8–12 and Tables VI–VII.

use crate::harness::{TrainedModels, Workbench};
use sqp_core::{Mvmm, MvmmConfig, Recommender, Vmm, VmmConfig};
use sqp_eval::report::{f4, headers, ms, pct, render_table};
use sqp_eval::{coverage_by_length, evaluate_accuracy, overall_coverage, reason_analysis};
use sqp_sessions::UnpredictableReason;

const MAX_CONTEXT_LEN: usize = 5;

fn accuracy_tables(
    title_prefix: &str,
    models: &[(&str, &dyn Recommender)],
    wb: &Workbench,
) -> String {
    let gt = &wb.processed.ground_truth;
    // Evaluate every model once.
    let evals: Vec<(&str, Vec<sqp_eval::AccuracyPoint>)> = models
        .iter()
        .map(|(name, m)| (*name, evaluate_accuracy(*m, gt, MAX_CONTEXT_LEN)))
        .collect();

    let mut out = String::new();
    for (cut, pick) in [
        (1usize, 0usize), // NDCG@1 → field selector below
        (3, 1),
        (5, 2),
    ] {
        let mut rows = Vec::new();
        for (name, pts) in &evals {
            let mut row = vec![name.to_string()];
            for p in pts {
                let v = match pick {
                    0 => p.ndcg1,
                    1 => p.ndcg3,
                    _ => p.ndcg5,
                };
                row.push(if p.covered_contexts == 0 {
                    "-".into()
                } else {
                    f4(v)
                });
            }
            rows.push(row);
        }
        let mut hdr = vec!["method".to_string()];
        hdr.extend((1..=MAX_CONTEXT_LEN).map(|l| format!("len {l}")));
        out.push_str(&render_table(
            &format!("{title_prefix} — NDCG@{cut} by context length"),
            &hdr,
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Figure 8: sequence models (MVMM, N-gram) versus the pair-wise baselines.
pub fn fig08_accuracy_pairwise(wb: &Workbench, models: &TrainedModels) -> String {
    let roster: Vec<(&str, &dyn Recommender)> = vec![
        ("Co-occ.", &models.cooccurrence),
        ("Adj.", &models.adjacency),
        ("N-gram", &models.ngram),
        ("MVMM", &models.mvmm),
    ];
    let mut out = accuracy_tables("Figure 8", &roster, wb);
    out.push_str(
        "expected shape: sequence methods above pair-wise at every length; \
         Adj. above Co-occ.; pair-wise accuracy decays with context length\n",
    );
    out
}

/// Figure 9: MVMM versus representative single VMMs.
pub fn fig09_accuracy_vmm(wb: &Workbench, models: &TrainedModels) -> String {
    let roster: Vec<(&str, &dyn Recommender)> = vec![
        ("VMM (0)", &models.vmm_00),
        ("VMM (0.05)", &models.vmm_005),
        ("VMM (0.1)", &models.vmm_01),
        ("MVMM", &models.mvmm),
    ];
    let mut out = accuracy_tables("Figure 9", &roster, wb);
    out.push_str(
        "expected shape: MVMM comparable to the best single VMM without \
         per-corpus epsilon tuning\n",
    );
    out
}

/// Figure 10: overall coverage per method.
pub fn fig10_coverage(wb: &Workbench, models: &TrainedModels) -> String {
    let gt = &wb.processed.ground_truth;
    let rows: Vec<Vec<String>> = models
        .all()
        .iter()
        .map(|(name, m)| vec![name.to_string(), pct(overall_coverage(*m, gt))])
        .collect();
    let mut out = render_table(
        "Figure 10 — coverage of various methods on test data",
        &headers(&["method", "coverage"]),
        &rows,
    );
    out.push_str("\npaper: Co-occ. 60.6%; Adj./VMM/MVMM tied at 56.8%; N-gram by far the worst\n");
    out
}

/// Figure 11: coverage versus context length for the sequence models.
pub fn fig11_coverage_by_length(wb: &Workbench, models: &TrainedModels) -> String {
    let gt = &wb.processed.ground_truth;
    let roster: Vec<(&str, &dyn Recommender)> = vec![
        ("N-gram", &models.ngram),
        ("VMM (0.05)", &models.vmm_005),
        ("MVMM", &models.mvmm),
        ("Adj.", &models.adjacency),
    ];
    let mut rows = Vec::new();
    for (name, m) in &roster {
        let pts = coverage_by_length(*m, gt, MAX_CONTEXT_LEN);
        let mut row = vec![name.to_string()];
        row.extend(pts.iter().map(|p| pct(p.fraction())));
        rows.push(row);
    }
    let mut hdr = vec!["method".to_string()];
    hdr.extend((1..=MAX_CONTEXT_LEN).map(|l| format!("len {l}")));
    let mut out = render_table("Figure 11 — coverage vs context length", &hdr, &rows);
    out.push_str(
        "\nexpected shape: N-gram collapses beyond length 3 (paper: <1%); \
         VMM/MVMM decay sub-linearly and track Adj.\n",
    );
    out
}

/// Table VI: measured reasons for unpredictable queries.
pub fn tab06_unpredictable_reasons(wb: &Workbench, models: &TrainedModels) -> String {
    let analysis = reason_analysis(
        &wb.processed.ground_truth,
        &wb.processed.train_index,
        &models.ngram,
    );
    let mut rows = Vec::new();
    for (model, counts) in &analysis {
        for r in UnpredictableReason::ALL {
            let c = counts.get(r);
            if c > 0 || matches!(r, UnpredictableReason::NewQuery) {
                rows.push(vec![
                    model.to_string(),
                    r.label().to_string(),
                    c.to_string(),
                    pct(c as f64 / counts.total.max(1) as f64),
                ]);
            }
        }
        rows.push(vec![
            model.to_string(),
            "covered (predictable)".into(),
            counts.covered.to_string(),
            pct(counts.covered as f64 / counts.total.max(1) as f64),
        ]);
    }
    let mut out = render_table(
        "Table VI — reasons for unpredictable queries (support-weighted)",
        &headers(&["model", "reason", "support", "share"]),
        &rows,
    );
    out.push_str(
        "\npaper structure: Co-occ. fails on (1)(2); Adj./VMM/MVMM add (3); N-gram adds (4)\n",
    );
    out
}

/// Table VII: memory footprint per method, plus the merged-PST node counts.
pub fn tab07_memory(wb: &Workbench, models: &TrainedModels) -> String {
    let mut rows: Vec<Vec<String>> = models
        .all()
        .iter()
        .map(|(name, m)| {
            vec![
                name.to_string(),
                sqp_common::mem::format_megabytes(m.memory_bytes()),
            ]
        })
        .collect();
    rows.push(vec![
        "MVMM (sum of components, un-merged)".into(),
        sqp_common::mem::format_megabytes(
            models
                .mvmm
                .components()
                .iter()
                .map(|c| c.memory_bytes())
                .sum(),
        ),
    ]);
    let mut out = render_table(
        "Table VII — memory footprint (MB)",
        &headers(&["method", "MB"]),
        &rows,
    );

    // The paper's merged-PST illustration: 2-bounded VMM(0.1) + 3-bounded
    // VMM(0.2) merge into barely more nodes than either alone.
    let sessions = wb.train_sessions();
    let v2 = Vmm::train(sessions, VmmConfig::bounded(2, 0.1));
    let v3 = Vmm::train(sessions, VmmConfig::bounded(3, 0.2));
    let mix = Mvmm::train(sessions, &MvmmConfig::depth_mixture(&[(2, 0.1), (3, 0.2)]));
    out.push_str(&format!(
        "\nmerged-PST illustration (§V-F.2):\n\
         2-bounded VMM (0.1): {} nodes\n\
         3-bounded VMM (0.2): {} nodes\n\
         merged MVMM PST:     {} nodes (paper example: 6,910,940 + 6,854,439 -> 7,211,288)\n",
        v2.node_count(),
        v3.node_count(),
        mix.merged_state_count(),
    ));
    out
}

/// Figure 12: training time versus amount of training data.
pub fn fig12_training_time(wb: &Workbench) -> String {
    let kinds = vec![
        sqp_eval::ModelKind::Adjacency,
        sqp_eval::ModelKind::Cooccurrence,
        sqp_eval::ModelKind::NGram,
        sqp_eval::ModelKind::Vmm(VmmConfig::with_epsilon(0.05)),
        sqp_eval::ModelKind::Mvmm(if wb.args.quick {
            MvmmConfig::small()
        } else {
            MvmmConfig::epsilon_sweep()
        }),
    ];
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let rows_data = sqp_eval::training_time_sweep(wb.train_sessions(), &fractions, &kinds);

    let mut hdr = vec!["fraction".to_string(), "unique sessions".to_string()];
    hdr.extend(kinds.iter().map(|k| format!("{} (ms)", k.label())));
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            let mut row = vec![
                format!("{:.0}%", r.fraction * 100.0),
                r.unique_sessions.to_string(),
            ];
            row.extend(r.times.iter().map(|(_, d)| ms(*d)));
            row
        })
        .collect();
    let mut out = render_table("Figure 12 — training time vs training data", &hdr, &rows);

    // Linearity check: time at 100% over time at 20% should be roughly 5x
    // (generously banded — wall-clock noise at millisecond scale).
    if let (Some(first), Some(last)) = (rows_data.first(), rows_data.last()) {
        out.push('\n');
        for i in 0..kinds.len() {
            let t0 = first.times[i].1.as_secs_f64().max(1e-6);
            let t1 = last.times[i].1.as_secs_f64();
            out.push_str(&format!(
                "{}: x{:.1} time for x5 data (linear scaling ~ x5)\n",
                first.times[i].0,
                t1 / t0
            ));
        }
    }
    out.push_str("\npaper: all methods scale linearly; MVMM ~ K x single VMM (parallelizable)\n");
    out
}
