//! User-study experiments: Table VIII and Figures 13–14 (§V-H).

use crate::harness::{TrainedModels, Workbench};
use sqp_eval::report::{headers, pct, render_table};
use sqp_eval::{run_user_eval, UserEvalConfig, UserEvalResult};

/// Run the §V-H protocol once (shared by the three artifacts).
pub fn user_eval(wb: &Workbench, models: &TrainedModels) -> UserEvalResult {
    let cfg = UserEvalConfig {
        per_length: 500,
        lengths: vec![1, 2, 3, 4],
        top_n: 5,
        seed: wb.args.seed,
        approve_truth_top: true,
    };
    run_user_eval(
        &models.user_study(),
        &wb.processed.ground_truth,
        &wb.processed.interner,
        &wb.logs.truth.vocabulary,
        &cfg,
    )
}

/// Table VIII: user labeling distribution over the four methods.
pub fn tab08_user_labels(wb: &Workbench, models: &TrainedModels) -> String {
    let res = user_eval(wb, models);
    let mut hdr = vec!["".to_string()];
    hdr.extend(res.methods.iter().map(|m| m.name.clone()));
    let mut predicted = vec!["# predicted queries".to_string()];
    predicted.extend(res.methods.iter().map(|m| m.predicted.to_string()));
    let mut approved = vec!["# approved queries".to_string()];
    approved.extend(res.methods.iter().map(|m| m.approved.to_string()));
    let mut out = render_table(
        "Table VIII — labeling distribution over four methods (oracle labeler)",
        &hdr,
        &[predicted, approved],
    );
    out.push_str(&format!(
        "\nsampled contexts: {} (paper: 2,000; 500 per length 1-4)\n\
         unique approved pool: {} (paper: 9,489)\n\
         paper row shapes: Co-occ. predicts most, MVMM gets the most approvals per prediction\n",
        res.sampled_contexts, res.pool_size
    ));
    out
}

/// Figure 13: precision and recall of the user evaluation.
pub fn fig13_user_eval(wb: &Workbench, models: &TrainedModels) -> String {
    let res = user_eval(wb, models);
    let rows: Vec<Vec<String>> = res
        .methods
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                pct(m.precision()),
                pct(m.recall(res.pool_size)),
            ]
        })
        .collect();
    let mut out = render_table(
        "Figure 13 — user evaluation: precision / recall",
        &headers(&["method", "precision", "recall"]),
        &rows,
    );
    out.push_str(
        "\npaper: MVMM best overall at 86.1% precision / 55.2% recall; \
         pair-wise methods predict more but approve less\n",
    );
    out
}

/// Figure 14: precision across the top-5 positions.
pub fn fig14_precision_positions(wb: &Workbench, models: &TrainedModels) -> String {
    let res = user_eval(wb, models);
    let mut hdr = vec!["method".to_string()];
    hdr.extend((1..=5).map(|p| format!("pos {p}")));
    let rows: Vec<Vec<String>> = res
        .methods
        .iter()
        .map(|m| {
            let mut row = vec![m.name.clone()];
            row.extend((1..=5).map(|p| pct(m.precision_at_position(p))));
            row
        })
        .collect();
    let mut out = render_table("Figure 14 — precision over top-5 positions", &hdr, &rows);
    out.push_str(
        "\npaper: sequence models strongest at position 1; \
         pair-wise methods inconsistent across positions\n",
    );
    out
}
