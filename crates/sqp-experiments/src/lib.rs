//! # sqp-experiments — one binary per table and figure of the paper
//!
//! Every artifact of the paper's evaluation section (§V) has a function here
//! and a thin binary wrapper in `src/bin/`. `run_all` executes the full
//! suite, reusing one corpus and one trained model roster.
//!
//! All binaries accept `--train-sessions N --test-sessions N --seed N
//! --reduction N --quick`.

#![deny(missing_docs)]

pub mod data_figs;
pub mod extras;
pub mod harness;
pub mod model_figs;
pub mod user_figs;

pub use harness::{banner, ExpArgs, TrainedModels, Workbench};

/// Run a data-only experiment (no models needed).
pub fn run_data_experiment(id: &str, artifact: &str, f: impl Fn(&Workbench) -> String) {
    let args = ExpArgs::parse();
    println!("{}", banner(id, artifact, &args));
    let wb = Workbench::build(&args);
    println!("{}", f(&wb));
}

/// Run an experiment that needs the trained model roster.
pub fn run_model_experiment(
    id: &str,
    artifact: &str,
    f: impl Fn(&Workbench, &TrainedModels) -> String,
) {
    let args = ExpArgs::parse();
    println!("{}", banner(id, artifact, &args));
    let wb = Workbench::build(&args);
    eprintln!("corpus ready; training models...");
    let models = TrainedModels::train(&wb);
    println!("{}", f(&wb, &models));
}
