//! Base-10 information-theoretic helpers.
//!
//! Footnote 2 of the paper: *"log base 10 is adopted through the paper"*. All
//! entropies, KL divergences and log-losses in this workspace therefore use
//! `log10`, which is what makes the published toy-example numbers (e.g.
//! D_KL = 0.3449) reproducible to four decimals.

/// Natural-feeling alias so call sites read like the paper.
#[inline]
pub fn log10(x: f64) -> f64 {
    x.log10()
}

/// Shannon entropy in base 10 of a (possibly unnormalized) positive weight
/// vector. Zero-weight entries are skipped (0·log 0 ≡ 0).
///
/// Returns 0 for empty or single-outcome distributions.
pub fn entropy_base10(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &w in weights {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log10();
        }
    }
    h
}

/// Entropy (base 10) of integer counts, convenience for counting maps.
pub fn entropy_of_counts<I: IntoIterator<Item = u64>>(counts: I) -> f64 {
    let v: Vec<f64> = counts.into_iter().map(|c| c as f64).collect();
    entropy_base10(&v)
}

/// Kullback–Leibler divergence D_KL(P ‖ Q) in base 10.
///
/// `p` and `q` are parallel probability vectors. Terms with `p[i] == 0`
/// contribute nothing; a term with `p[i] > 0` and `q[i] == 0` is handled by
/// flooring `q[i]` at `q_floor` (the caller decides how unobserved mass is
/// smoothed — the PST growth criterion passes fully-supported distributions).
pub fn kl_divergence_base10(p: &[f64], q: &[f64], q_floor: f64) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            let qi = qi.max(q_floor);
            d += pi * (pi / qi).log10();
        }
    }
    d
}

/// Gaussian probability density `N(x; 0, σ²)` used for the MVMM mixture
/// weight `w(D,T)` (Eq. 4 of the paper): `exp(-x²/2σ²) / (σ√(2π))`.
#[inline]
pub fn gaussian_pdf(x: f64, sigma: f64) -> f64 {
    debug_assert!(sigma > 0.0);
    let z = x / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

/// First derivative of [`gaussian_pdf`] with respect to σ (analytic, used by
/// the Newton fit of the MVMM mixture parameters).
#[inline]
pub fn gaussian_pdf_dsigma(x: f64, sigma: f64) -> f64 {
    let g = gaussian_pdf(x, sigma);
    g * (x * x / (sigma * sigma * sigma) - 1.0 / sigma)
}

/// Second derivative of [`gaussian_pdf`] with respect to σ.
#[inline]
pub fn gaussian_pdf_d2sigma(x: f64, sigma: f64) -> f64 {
    let g = gaussian_pdf(x, sigma);
    let a = x * x / (sigma * sigma * sigma) - 1.0 / sigma; // g'/g
    let a_prime = -3.0 * x * x / (sigma * sigma * sigma * sigma) + 1.0 / (sigma * sigma);
    g * (a * a + a_prime)
}

/// Average log-loss rate of Eq. (1): `-(1/|T|) Σ_t (1/|s_t|) Σ_j log10 P(q_j |
/// prefix)`. `seq_logps` carries, per test sequence, `(len, Σ log10 P)`.
pub fn average_log_loss(seq_logps: &[(usize, f64)]) -> f64 {
    if seq_logps.is_empty() {
        return 0.0;
    }
    let sum: f64 = seq_logps
        .iter()
        .filter(|(len, _)| *len >= 2)
        .map(|(len, lp)| lp / *len as f64)
        .sum();
    -sum / seq_logps.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn entropy_of_uniform_two_outcomes() {
        // H = log10(2) ≈ 0.30103
        assert!(close(
            entropy_base10(&[1.0, 1.0]),
            std::f64::consts::LOG10_2,
            1e-9
        ));
    }

    #[test]
    fn entropy_paper_java_example() {
        // Paper §I: "Java" followed by "Sun Java" 60 times and "Java island"
        // 40 times → entropy 0.29.
        let h = entropy_of_counts([60, 40]);
        assert!(close(h, 0.29, 0.005), "h = {h}");
        // Given context "Indonesia": 9 vs 1 → entropy 0.14.
        let h2 = entropy_of_counts([9, 1]);
        assert!(close(h2, 0.14, 0.005), "h2 = {h2}");
    }

    #[test]
    fn entropy_degenerate_cases() {
        assert_eq!(entropy_base10(&[]), 0.0);
        assert_eq!(entropy_base10(&[5.0]), 0.0);
        assert_eq!(entropy_base10(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_paper_toy_numbers() {
        // Table II toy corpus: KL(P(·|q0) ‖ P(·|q1q0)) with
        // P(·|q0) = (0.9, 0.1) and P(·|q1q0) = (0.3, 0.7) → 0.3449.
        let d = kl_divergence_base10(&[0.9, 0.1], &[0.3, 0.7], 0.0);
        assert!(close(d, 0.3449, 1e-4), "d = {d}");
        // KL(P(·|q1) ‖ P(·|q0q1)) with (0.8, 0.2) vs (0.5, 0.5) → 0.0837.
        let d2 = kl_divergence_base10(&[0.8, 0.2], &[0.5, 0.5], 0.0);
        assert!(close(d2, 0.0837, 1e-4), "d2 = {d2}");
    }

    #[test]
    fn kl_is_zero_for_identical() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence_base10(&p, &p, 0.0).abs() < 1e-12);
    }

    #[test]
    fn kl_nonnegative_on_grid() {
        for i in 1..10 {
            for j in 1..10 {
                let p = [i as f64 / 10.0, 1.0 - i as f64 / 10.0];
                let q = [j as f64 / 10.0, 1.0 - j as f64 / 10.0];
                assert!(kl_divergence_base10(&p, &q, 0.0) >= -1e-12);
            }
        }
    }

    #[test]
    fn gaussian_pdf_peak_and_symmetry() {
        let g0 = gaussian_pdf(0.0, 1.0);
        assert!(close(g0, 0.3989422804, 1e-9));
        assert!(close(
            gaussian_pdf(1.5, 2.0),
            gaussian_pdf(-1.5, 2.0),
            1e-15
        ));
        assert!(gaussian_pdf(3.0, 1.0) < g0);
    }

    #[test]
    fn gaussian_derivatives_match_finite_differences() {
        let (x, sigma, h) = (1.3, 0.9, 1e-6);
        let fd1 = (gaussian_pdf(x, sigma + h) - gaussian_pdf(x, sigma - h)) / (2.0 * h);
        assert!(close(gaussian_pdf_dsigma(x, sigma), fd1, 1e-6));
        let fd2 =
            (gaussian_pdf_dsigma(x, sigma + h) - gaussian_pdf_dsigma(x, sigma - h)) / (2.0 * h);
        assert!(close(gaussian_pdf_d2sigma(x, sigma), fd2, 1e-5));
    }

    #[test]
    fn average_log_loss_simple() {
        // One sequence of length 2 with P = 0.1 for its single prediction:
        // loss = -(1/1) * (log10(0.1)/2) = 0.5
        let l = average_log_loss(&[(2, (0.1f64).log10())]);
        assert!(close(l, 0.5, 1e-12));
        assert_eq!(average_log_loss(&[]), 0.0);
    }
}
