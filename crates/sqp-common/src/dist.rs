//! Edit distances.
//!
//! Two uses in the workspace:
//! * the MVMM mixture weight `w(D,T)` is a Gaussian of the edit distance
//!   between the live user context and the PST state a component matched
//!   (sequences of `QueryId`s);
//! * the session-pattern classifier detects *spelling change* via character
//!   edit distance between query strings.

/// Levenshtein distance between two slices of any `Eq` items
/// (insertions, deletions and substitutions all cost 1).
///
/// Two-row dynamic program: O(|a|·|b|) time, O(min(|a|,|b|)) space.
pub fn levenshtein<T: Eq>(a: &[T], b: &[T]) -> usize {
    // Ensure `b` is the shorter side so the row stays small.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ai) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let cost = usize::from(ai != bj);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// Levenshtein distance between two strings, by Unicode scalar values.
pub fn levenshtein_str(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    levenshtein(&av, &bv)
}

/// Normalized string edit distance in [0, 1]: distance / max(len).
/// Returns 0 for two empty strings.
pub fn normalized_levenshtein_str(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein_str(a, b) as f64 / max_len as f64
}

/// Damerau-style check used by the spelling classifier: true when `a` and `b`
/// differ by a single adjacent transposition (e.g. "goggle" vs "google" is a
/// substitution, "form" vs "from" is a transposition).
pub fn is_adjacent_transposition(a: &str, b: &str) -> bool {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.len() != bv.len() {
        return false;
    }
    let diffs: Vec<usize> = (0..av.len()).filter(|&i| av[i] != bv[i]).collect();
    matches!(diffs.as_slice(),
        &[i, j] if j == i + 1 && av[i] == bv[j] && av[j] == bv[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein_str("kitten", "sitting"), 3);
        assert_eq!(levenshtein_str("goggle", "google"), 1); // paper's Table I typo
        assert_eq!(levenshtein_str("youtub", "youtube"), 1);
        assert_eq!(levenshtein_str("", ""), 0);
        assert_eq!(levenshtein_str("abc", ""), 3);
        assert_eq!(levenshtein_str("", "abc"), 3);
    }

    #[test]
    fn works_on_id_slices() {
        assert_eq!(levenshtein(&[1u32, 2, 3], &[1, 3]), 1);
        assert_eq!(levenshtein(&[1u32, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(levenshtein::<u32>(&[], &[7, 8]), 2);
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_levenshtein_str("", ""), 0.0);
        assert_eq!(normalized_levenshtein_str("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein_str("abc", "xyz"), 1.0);
        let d = normalized_levenshtein_str("google", "goggle");
        assert!(d > 0.0 && d < 0.5);
    }

    #[test]
    fn transposition_detection() {
        assert!(is_adjacent_transposition("form", "from"));
        assert!(is_adjacent_transposition("gogole", "google"));
        assert!(!is_adjacent_transposition("google", "google"));
        assert!(!is_adjacent_transposition("goggle", "google")); // substitution
        assert!(!is_adjacent_transposition("abc", "abcd"));
    }

    #[test]
    fn symmetry_small_cases() {
        let cases = [("abc", "acb"), ("query one", "query two"), ("a", "")];
        for (a, b) in cases {
            assert_eq!(levenshtein_str(a, b), levenshtein_str(b, a));
        }
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::rng::{Rng, StdRng};

    fn rand_str(rng: &mut StdRng, alphabet: u8, max_len: usize) -> String {
        let len = rng.random_range(0usize..=max_len);
        (0..len)
            .map(|_| (b'a' + rng.random_range(0..alphabet)) as char)
            .collect()
    }

    #[test]
    fn metric_axioms_hold() {
        for case in 0..256u64 {
            let mut rng = StdRng::seed_from_u64(case);
            let a = rand_str(&mut rng, 3, 12);
            let b = rand_str(&mut rng, 3, 12);
            let c = rand_str(&mut rng, 3, 12);
            // Identity and symmetry.
            assert_eq!(levenshtein_str(&a, &a), 0, "case {case}");
            let ab = levenshtein_str(&a, &b);
            assert_eq!(ab, levenshtein_str(&b, &a), "case {case}");
            // Bounds.
            let (la, lb) = (a.chars().count(), b.chars().count());
            assert!(ab <= la.max(lb), "case {case}");
            assert!(ab >= la.abs_diff(lb), "case {case}");
            assert_eq!(ab == 0, a == b, "case {case}");
            // Triangle inequality.
            let bc = levenshtein_str(&b, &c);
            let ac = levenshtein_str(&a, &c);
            assert!(ac <= ab + bc, "case {case}: {a:?} {b:?} {c:?}");
        }
    }

    #[test]
    fn single_edit_is_distance_one() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(500 + case);
            let a = {
                let mut s = rand_str(&mut rng, 26, 9);
                s.push('m'); // guarantee non-empty
                s
            };
            let chars: Vec<char> = a.chars().collect();
            let i = rng.random_range(0usize..chars.len());
            let mut edited = chars.clone();
            edited[i] = if edited[i] == 'z' { 'a' } else { 'z' };
            let edited: String = edited.into_iter().collect();
            assert_eq!(levenshtein_str(&a, &edited), 1, "case {case}");
        }
    }

    #[test]
    fn id_slices_match_char_encoding() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(900 + case);
            let gen_ids = |rng: &mut StdRng| -> Vec<u32> {
                let len = rng.random_range(0usize..10);
                (0..len).map(|_| rng.random_range(0u32..4)).collect()
            };
            let a = gen_ids(&mut rng);
            let b = gen_ids(&mut rng);
            // Encode ids as distinct chars and compare implementations.
            let enc =
                |v: &[u32]| -> String { v.iter().map(|&x| (b'a' + x as u8) as char).collect() };
            assert_eq!(
                levenshtein(&a, &b),
                levenshtein_str(&enc(&a), &enc(&b)),
                "case {case}"
            );
        }
    }
}
