//! Edit distances.
//!
//! Two uses in the workspace:
//! * the MVMM mixture weight `w(D,T)` is a Gaussian of the edit distance
//!   between the live user context and the PST state a component matched
//!   (sequences of `QueryId`s);
//! * the session-pattern classifier detects *spelling change* via character
//!   edit distance between query strings.

/// Levenshtein distance between two slices of any `Eq` items
/// (insertions, deletions and substitutions all cost 1).
///
/// Two-row dynamic program: O(|a|·|b|) time, O(min(|a|,|b|)) space.
pub fn levenshtein<T: Eq>(a: &[T], b: &[T]) -> usize {
    // Ensure `b` is the shorter side so the row stays small.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ai) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let cost = usize::from(ai != bj);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// Levenshtein distance between two strings, by Unicode scalar values.
pub fn levenshtein_str(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    levenshtein(&av, &bv)
}

/// Normalized string edit distance in [0, 1]: distance / max(len).
/// Returns 0 for two empty strings.
pub fn normalized_levenshtein_str(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein_str(a, b) as f64 / max_len as f64
}

/// Damerau-style check used by the spelling classifier: true when `a` and `b`
/// differ by a single adjacent transposition (e.g. "goggle" vs "google" is a
/// substitution, "form" vs "from" is a transposition).
pub fn is_adjacent_transposition(a: &str, b: &str) -> bool {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.len() != bv.len() {
        return false;
    }
    let diffs: Vec<usize> = (0..av.len()).filter(|&i| av[i] != bv[i]).collect();
    matches!(diffs.as_slice(),
        &[i, j] if j == i + 1 && av[i] == bv[j] && av[j] == bv[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein_str("kitten", "sitting"), 3);
        assert_eq!(levenshtein_str("goggle", "google"), 1); // paper's Table I typo
        assert_eq!(levenshtein_str("youtub", "youtube"), 1);
        assert_eq!(levenshtein_str("", ""), 0);
        assert_eq!(levenshtein_str("abc", ""), 3);
        assert_eq!(levenshtein_str("", "abc"), 3);
    }

    #[test]
    fn works_on_id_slices() {
        assert_eq!(levenshtein(&[1u32, 2, 3], &[1, 3]), 1);
        assert_eq!(levenshtein(&[1u32, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(levenshtein::<u32>(&[], &[7, 8]), 2);
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_levenshtein_str("", ""), 0.0);
        assert_eq!(normalized_levenshtein_str("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein_str("abc", "xyz"), 1.0);
        let d = normalized_levenshtein_str("google", "goggle");
        assert!(d > 0.0 && d < 0.5);
    }

    #[test]
    fn transposition_detection() {
        assert!(is_adjacent_transposition("form", "from"));
        assert!(is_adjacent_transposition("gogole", "google"));
        assert!(!is_adjacent_transposition("google", "google"));
        assert!(!is_adjacent_transposition("goggle", "google")); // substitution
        assert!(!is_adjacent_transposition("abc", "abcd"));
    }

    #[test]
    fn symmetry_small_cases() {
        let cases = [("abc", "acb"), ("query one", "query two"), ("a", "")];
        for (a, b) in cases {
            assert_eq!(levenshtein_str(a, b), levenshtein_str(b, a));
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn identity(a in "[a-c]{0,12}") {
            prop_assert_eq!(levenshtein_str(&a, &a), 0);
        }

        #[test]
        fn symmetry(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            prop_assert_eq!(levenshtein_str(&a, &b), levenshtein_str(&b, &a));
        }

        #[test]
        fn upper_and_lower_bounds(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            let d = levenshtein_str(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            prop_assert!(d <= la.max(lb));
            prop_assert!(d >= la.abs_diff(lb));
            prop_assert_eq!(d == 0, a == b);
        }

        #[test]
        fn triangle_inequality(
            a in "[a-b]{0,8}", b in "[a-b]{0,8}", c in "[a-b]{0,8}"
        ) {
            let ab = levenshtein_str(&a, &b);
            let bc = levenshtein_str(&b, &c);
            let ac = levenshtein_str(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn single_edit_is_distance_one(a in "[a-z]{1,10}", idx in 0usize..10) {
            let chars: Vec<char> = a.chars().collect();
            let i = idx % chars.len();
            let mut edited = chars.clone();
            edited[i] = if edited[i] == 'z' { 'a' } else { 'z' };
            let edited: String = edited.into_iter().collect();
            prop_assert_eq!(levenshtein_str(&a, &edited), 1);
        }

        #[test]
        fn id_slices_match_char_encoding(
            a in proptest::collection::vec(0u32..4, 0..10),
            b in proptest::collection::vec(0u32..4, 0..10),
        ) {
            // Encode ids as distinct chars and compare implementations.
            let enc = |v: &[u32]| -> String {
                v.iter().map(|&x| (b'a' + x as u8) as char).collect()
            };
            prop_assert_eq!(levenshtein(&a, &b), levenshtein_str(&enc(&a), &enc(&b)));
        }
    }
}
