//! Shared substrate for the sequential-query-prediction (SQP) workspace.
//!
//! This crate collects the small, dependency-free building blocks every other
//! crate in the workspace relies on:
//!
//! * [`QueryId`] — interned query identifier, and the [`intern::Interner`]
//!   that maps query strings to ids and back;
//! * [`hash`] — an FxHash-style hasher ([`FxHashMap`], [`FxHashSet`]) used for
//!   all hot integer-keyed maps (the std SipHash default is a measurable cost
//!   for the billions of lookups the pipeline performs);
//! * [`math`] — base-10 information-theoretic helpers (the paper fixes
//!   log base 10 throughout: entropy, KL divergence, Gaussian pdf);
//! * [`dist`] — Levenshtein edit distance over arbitrary `Eq` slices (used by
//!   the MVMM mixture weighting and the spelling-change classifier);
//! * [`topk`] — deterministic top-k selection of scored items;
//! * [`hist`] — integer-keyed histograms (session-length distributions);
//! * [`counter`] — convenience counting maps;
//! * [`arena`] — the arena-backed suffix trie shared by window counting and
//!   the serve path (zero-allocation counting, binary-search lookups);
//! * [`rng`] — a seedable xoshiro256++ PRNG (the workspace builds with no
//!   external crates, so this replaces `rand`);
//! * [`breaker`] — the shared Closed/Open/HalfOpen circuit breaker and
//!   capped-exponential [`Backoff`] used by both the supervised retrain loop
//!   (`sqp-store`) and the remote serving client (`sqp-net`);
//! * [`fsio`], [`clock`], [`hazard`] — the fault seams: filesystem, time,
//!   and chaos-injection-point traits the resilient serving stack crosses,
//!   with real/no-op production implementations (`sqp-faults` provides the
//!   fault-injecting ones);
//! * [`bytes`] — little-endian byte buffers for the wire codecs;
//! * [`mem`] — approximate heap-size accounting for the memory-footprint
//!   experiment (Table VII of the paper).

#![deny(missing_docs)]

pub mod arena;
pub mod breaker;
pub mod bytes;
pub mod clock;
pub mod counter;
pub mod dist;
pub mod fsio;
pub mod hash;
pub mod hazard;
pub mod hist;
pub mod intern;
pub mod math;
pub mod mem;
pub mod rng;
pub mod topk;

pub use arena::{SuffixTrie, TrieBuilder};
pub use breaker::{Admission, Backoff, Breaker, BreakerConfig, BreakerState, BreakerStats};
pub use clock::{Clock, RealClock};
pub use counter::Counter;
pub use fsio::{FsIo, RealFs};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hazard::{Hazard, NoHazard};
pub use hist::Histogram;
pub use intern::{Interner, SharedInterner};
pub use mem::HeapSize;

/// Identifier of an interned query string.
///
/// Queries are interned once by the session pipeline; all models operate on
/// dense `u32` ids, which keeps sessions at 4 bytes/query and makes hash maps
/// fast. The id is an index into the owning [`Interner`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[repr(transparent)]
pub struct QueryId(pub u32);

impl QueryId {
    /// Index form, for slicing into interner-parallel arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for QueryId {
    #[inline]
    fn from(v: u32) -> Self {
        QueryId(v)
    }
}

impl From<QueryId> for u32 {
    #[inline]
    fn from(v: QueryId) -> Self {
        v.0
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A query sequence (session or context) of interned ids.
pub type QuerySeq = Box<[QueryId]>;

/// Convenience constructor used pervasively in tests.
pub fn seq(ids: &[u32]) -> QuerySeq {
    ids.iter().copied().map(QueryId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_id_roundtrip() {
        let q = QueryId::from(42u32);
        assert_eq!(u32::from(q), 42);
        assert_eq!(q.index(), 42);
        assert_eq!(q.to_string(), "q42");
    }

    #[test]
    fn seq_builds_boxed_slice() {
        let s = seq(&[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s[1], QueryId(2));
    }

    #[test]
    fn query_id_is_four_bytes() {
        assert_eq!(std::mem::size_of::<QueryId>(), 4);
    }
}
