//! FxHash-style hashing.
//!
//! The workspace performs enormous numbers of lookups keyed by small integers
//! (`QueryId`) and short id sequences. The std `HashMap` default (SipHash 1-3)
//! is DoS-resistant but slow for such keys; the Fx algorithm (a multiply-xor
//! scheme popularised by Firefox and rustc) is the standard replacement in
//! database-style Rust code. We implement it here directly (~30 lines) rather
//! than pulling a dependency.
//!
//! HashDoS resistance is irrelevant for this workload: all keys originate from
//! our own interner, not from untrusted input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx algorithm (64-bit golden-ratio-like).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: `hash = (hash.rotate_left(5) ^ word) * K` per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash a single value with the Fx hasher (for quick fingerprints).
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fx_hash_one(&12345u64), fx_hash_one(&12345u64));
        assert_ne!(fx_hash_one(&12345u64), fx_hash_one(&12346u64));
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn byte_paths_agree_on_prefix_free_inputs() {
        // Writing the same logical bytes in one call vs. chunks must agree
        // only when chunk boundaries match word boundaries; sanity-check the
        // whole-slice path on assorted lengths.
        for len in 0..32 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut a = FxHasher::default();
            a.write(&bytes);
            let mut b = FxHasher::default();
            b.write(&bytes);
            assert_eq!(a.finish(), b.finish());
        }
    }

    #[test]
    fn spreads_sequential_ids() {
        // Sequential u32 keys should not collide in the low bits too badly;
        // verify at least 900 distinct low-10-bit buckets out of 1024 inserts.
        let mut buckets = std::collections::HashSet::new();
        for i in 0u32..1024 {
            buckets.insert(fx_hash_one(&i) & 0x3ff);
        }
        assert!(buckets.len() > 600, "poor dispersion: {}", buckets.len());
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("a");
        s.insert("a");
        s.insert("b");
        assert_eq!(s.len(), 2);
    }
}
