//! The chaos seam: named injection points crossed by resilient code.
//!
//! A fault seam that is not exercised does not exist. Components that must
//! survive thread panics and stalls announce each crossing of a hazardous
//! boundary — "about to train", "serving this shard" — through
//! [`Hazard::strike`]. In production the hazard is [`NoHazard`] (a no-op
//! virtual call, nanoseconds); under chaos testing the fault plan's hazard
//! may stall the thread (a slow shard) or panic (a crashed worker) at
//! deterministic, seed-replayable points.
//!
//! Site names are dotted paths owned by the crossing component
//! (`"store.retrain.train"`, `"serve.shard.3"`). A hazard implementation
//! matches on them; unknown sites must be treated as no-ops so components
//! can add seams without breaking existing fault plans.

/// A chaos injection point. Implementations may sleep or panic; they must
/// not otherwise affect the caller.
pub trait Hazard: Send + Sync {
    /// Announce that the calling thread is crossing the named seam. A chaos
    /// implementation may stall the thread here, or panic to simulate a
    /// crashed worker — callers that supervise work (e.g. the retrain loop)
    /// catch such panics at their isolation boundary.
    fn strike(&self, site: &str);
}

/// The production hazard: nothing ever happens.
///
/// # Examples
///
/// ```
/// use sqp_common::hazard::{Hazard, NoHazard};
///
/// NoHazard.strike("store.retrain.train"); // a no-op
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NoHazard;

impl Hazard for NoHazard {
    #[inline]
    fn strike(&self, _site: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn custom_hazards_observe_sites() {
        struct Counting(AtomicUsize);
        impl Hazard for Counting {
            fn strike(&self, site: &str) {
                if site.starts_with("serve.") {
                    self.0.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let h = Counting(AtomicUsize::new(0));
        h.strike("serve.shard.0");
        h.strike("store.retrain.train");
        assert_eq!(h.0.load(Ordering::Relaxed), 1);
    }
}
