//! Arena-backed suffix trie — the training/serving counting core.
//!
//! The naive way to count the windows of a session corpus is a hashmap keyed
//! by owned `Box<[QueryId]>` sequences: every one of the O(L²) windows of a
//! length-L session is allocated, hashed in full, and probed. At web-log
//! scale that is the dominant training cost. This module replaces it with a
//! flat-arena trie:
//!
//! * **counting** walks the trie with borrowed `&[QueryId]` slices. Each
//!   window extends the previous one by a single edge, so a session
//!   contributes O(L·D) *constant-time* steps (one u64-keyed probe each),
//!   zero per-window allocations, and no re-hashing of whole sequences;
//! * **freezing** lays the nodes out in a canonical breadth-first order with
//!   id-sorted CSR child arrays, so lookups on the serve path are
//!   allocation-free binary searches (O(log fan-out) per edge) and
//!   iteration order is deterministic regardless of how many threads
//!   counted;
//! * **merging** two builders is linear in the smaller one, which is what
//!   makes sharded parallel counting both cheap and exactly equal to the
//!   sequential result (counts are additive, layout is canonicalized).
//!
//! Node payloads are the window statistics of the paper's Eq. (6): total
//! weighted occurrences and occurrences at a session start. Continuation
//! (next-query) distributions need no storage at all — the continuations of
//! window `w` are exactly the children of `w`'s node, because every
//! occurrence of `w` followed by `q` is an occurrence of the window `w·q`.

use crate::QueryId;

/// Open-addressing `u64 → u32` table for trie edges: flat storage, linear
/// probing, one multiply-shift hash per probe. This is the single hottest
/// structure in training — a SwissTable-style general map costs measurably
/// more per descent step than this specialized layout.
#[derive(Debug)]
struct EdgeMap {
    /// Interleaved `(key, value + 1)` slots; value 0 marks an empty slot.
    /// One cache line per probe.
    slots: Vec<(u64, u32)>,
    len: usize,
    shift: u32,
}

const EDGE_HASH_K: u64 = 0x9e37_79b9_7f4a_7c15;

impl EdgeMap {
    /// Sized so `expected` entries fit without growing.
    fn with_capacity(expected: usize) -> Self {
        let cap = (expected * 2).next_power_of_two().max(1024);
        EdgeMap {
            slots: vec![(0, 0); cap],
            len: 0,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    #[inline]
    fn slot(&self, key: u64) -> usize {
        (key.wrapping_mul(EDGE_HASH_K) >> self.shift) as usize
    }

    /// Value for `key`, inserting `fresh` when absent. Returns `(value,
    /// inserted)`.
    #[inline]
    fn get_or_insert(&mut self, key: u64, fresh: u32) -> (u32, bool) {
        let mask = self.slots.len() - 1;
        let mut i = self.slot(key);
        loop {
            let (k, v) = self.slots[i];
            if v == 0 {
                self.slots[i] = (key, fresh + 1);
                self.len += 1;
                if self.len * 8 >= self.slots.len() * 5 {
                    self.grow();
                }
                return (fresh, true);
            }
            if k == key {
                return (v - 1, false);
            }
            i = (i + 1) & mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); cap]);
        self.shift = 64 - cap.trailing_zeros();
        let mask = cap - 1;
        for (k, v) in old {
            if v != 0 {
                let mut i = self.slot(k);
                while self.slots[i].1 != 0 {
                    i = (i + 1) & mask;
                }
                self.slots[i] = (k, v);
            }
        }
    }

    /// Iterate `(key, value)` pairs in table order.
    fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.slots
            .iter()
            .filter(|(_, v)| *v != 0)
            .map(|&(k, v)| (k, v - 1))
    }
}

/// Growable trie used during counting. Nodes live in parallel flat vectors;
/// edges in one global `u64`-keyed map (`parent << 32 | query`), so a
/// descent step is a single integer hash probe.
#[derive(Debug)]
pub struct TrieBuilder {
    /// Per-node `(total, at_start)` — one cache line per touch.
    counts: Vec<(u64, u64)>,
    /// Depth-1 children indexed directly by query id (ids are dense from the
    /// interner): `node + 1`, 0 = absent. Every window starts with a root
    /// step, so this array removes the hottest hash probe entirely.
    root_children: Vec<u32>,
    /// Edges below depth 1.
    edges: EdgeMap,
}

impl Default for TrieBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TrieBuilder {
    /// A builder holding only the root.
    pub fn new() -> Self {
        Self::with_edge_capacity(0)
    }

    /// A builder sized for roughly `expected_edges` distinct windows —
    /// avoids rehashing mid-count when the caller can estimate the corpus.
    pub fn with_edge_capacity(expected_edges: usize) -> Self {
        TrieBuilder {
            counts: vec![(0, 0)],
            root_children: Vec::new(),
            edges: EdgeMap::with_capacity(expected_edges),
        }
    }

    #[inline]
    fn edge_key(parent: u32, q: QueryId) -> u64 {
        (u64::from(parent) << 32) | u64::from(q.0)
    }

    /// Child of `parent` along `q`, created on first use.
    #[inline]
    pub fn child_or_insert(&mut self, parent: u32, q: QueryId) -> u32 {
        if parent == 0 {
            return self.root_child_or_insert(q);
        }
        let next_id = self.counts.len() as u32;
        let (id, inserted) = self.edges.get_or_insert(Self::edge_key(parent, q), next_id);
        if inserted {
            self.counts.push((0, 0));
        }
        id
    }

    #[inline]
    fn root_child_or_insert(&mut self, q: QueryId) -> u32 {
        let qi = q.0 as usize;
        if qi >= self.root_children.len() {
            self.root_children.resize(qi + 1, 0);
        }
        let v = self.root_children[qi];
        if v != 0 {
            return v - 1;
        }
        let id = self.counts.len() as u32;
        self.counts.push((0, 0));
        self.root_children[qi] = id + 1;
        id
    }

    /// Count every window of `session` up to `depth_limit` queries, weighted
    /// by `weight`. Windows starting at position 0 also count as
    /// session-start occurrences.
    pub fn count_session(&mut self, session: &[QueryId], weight: u64, depth_limit: usize) {
        // Position 0: the only windows that count as session starts.
        if !session.is_empty() {
            let limit = depth_limit.min(session.len());
            let mut node = 0u32;
            for &q in &session[..limit] {
                node = self.child_or_insert(node, q);
                let c = &mut self.counts[node as usize];
                c.0 += weight;
                c.1 += weight;
            }
        }
        for start in 1..session.len() {
            let limit = depth_limit.min(session.len() - start);
            let mut node = 0u32;
            for &q in &session[start..start + limit] {
                node = self.child_or_insert(node, q);
                self.counts[node as usize].0 += weight;
            }
        }
    }

    /// Iterate root edges `(query, child)` in ascending query order.
    fn root_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.root_children
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(q, &v)| (q as u32, v - 1))
    }

    /// Add every count of `other` into `self`. Node ids differ between
    /// builders; the walk maps them via the edge structure, creating missing
    /// nodes on the fly. Builders always create a parent before its
    /// children, so a single ascending pass over `other`'s edges suffices.
    pub fn merge(&mut self, other: &TrieBuilder) {
        let mut map = vec![u32::MAX; other.counts.len()];
        map[0] = 0;
        self.counts[0].0 += other.counts[0].0;
        self.counts[0].1 += other.counts[0].1;
        // Depth-1 first (their parent is the root, already mapped)…
        for (q, child) in other.root_edges() {
            let mapped = self.root_child_or_insert(QueryId(q));
            map[child as usize] = mapped;
            self.counts[mapped as usize].0 += other.counts[child as usize].0;
            self.counts[mapped as usize].1 += other.counts[child as usize].1;
        }
        // …then deeper edges in ascending child-id order: a builder always
        // creates a parent before its children, so parents are mapped by the
        // time their children come up.
        let mut edges: Vec<(u32, u64)> = other
            .edges
            .iter()
            .map(|(key, child)| (child, key))
            .collect();
        edges.sort_unstable();
        for (child, key) in edges {
            let parent = (key >> 32) as u32;
            let q = QueryId(key as u32);
            let mapped_parent = map[parent as usize];
            debug_assert_ne!(mapped_parent, u32::MAX, "child visited before parent");
            let mapped = self.child_or_insert(mapped_parent, q);
            map[child as usize] = mapped;
            self.counts[mapped as usize].0 += other.counts[child as usize].0;
            self.counts[mapped as usize].1 += other.counts[child as usize].1;
        }
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.counts.len() <= 1
    }

    /// Canonicalize into the immutable serving layout. `window_len` is the
    /// deepest depth that counts as a *window*; deeper nodes (there is at
    /// most one extra level) exist only as continuation evidence of the
    /// level above.
    pub fn freeze(self, window_len: u32) -> SuffixTrie {
        // Group edges by parent with a counting sort (one pass for degrees,
        // one to scatter), then order each node's few children with a small
        // in-place sort — far cheaper than globally sorting all E edges.
        let n = self.counts.len();
        let n_edges = n - 1;
        let mut first_edge = vec![0u32; n + 1];
        first_edge[1] = self.root_edges().count() as u32;
        for (key, _) in self.edges.iter() {
            first_edge[(key >> 32) as usize + 1] += 1;
        }
        for i in 1..=n {
            first_edge[i] += first_edge[i - 1];
        }
        let mut edges: Vec<(u32, u32)> = vec![(0, 0); n_edges];
        {
            let mut cursor = first_edge.clone();
            for (q, child) in self.root_edges() {
                edges[cursor[0] as usize] = (q, child);
                cursor[0] += 1;
            }
            for (key, child) in self.edges.iter() {
                let p = (key >> 32) as usize;
                edges[cursor[p] as usize] = (key as u32, child);
                cursor[p] += 1;
            }
        }
        // Root edges arrive pre-sorted from the dense array; deeper nodes
        // have few children each.
        for p in 1..n {
            let lo = first_edge[p] as usize;
            let hi = first_edge[p + 1] as usize;
            edges[lo..hi].sort_unstable();
        }

        // Breadth-first renumbering with children visited in id order gives
        // a canonical layout: ids ascend by (depth, path) lexicographically,
        // so two tries with equal counts freeze identically no matter how
        // the counts were sharded. One pass fills everything: a child's
        // metadata is known when its parent is dequeued, and a node's child
        // range is closed in the same step.
        let mut queue_old: Vec<u32> = Vec::with_capacity(n);
        queue_old.push(0);
        let mut nodes = Vec::with_capacity(n);
        nodes.push(Node {
            total: self.counts[0].0,
            at_start: self.counts[0].1,
            cont_total: 0,
            first_child: 0,
            n_children: 0,
            parent: 0,
            key: QueryId(0),
            depth: 0,
        });
        let mut child_keys = Vec::with_capacity(n_edges);
        let mut child_ids = Vec::with_capacity(n_edges);
        let mut child_totals = Vec::with_capacity(n_edges);
        let mut head = 0usize;
        while head < queue_old.len() {
            let old = queue_old[head] as usize;
            let lo = first_edge[old] as usize;
            let hi = first_edge[old + 1] as usize;
            let first_child = child_keys.len() as u32;
            let depth = nodes[head].depth;
            let mut cont_total = 0u64;
            for &(q, child_old) in &edges[lo..hi] {
                let new_id = queue_old.len() as u32;
                queue_old.push(child_old);
                let (total, at_start) = self.counts[child_old as usize];
                nodes.push(Node {
                    total,
                    at_start,
                    cont_total: 0,
                    first_child: 0,
                    n_children: 0,
                    parent: head as u32,
                    key: QueryId(q),
                    depth: depth + 1,
                });
                child_keys.push(QueryId(q));
                child_ids.push(new_id);
                child_totals.push(total);
                cont_total += total;
            }
            nodes[head].first_child = first_child;
            nodes[head].n_children = (hi - lo) as u32;
            nodes[head].cont_total = cont_total;
            head += 1;
        }
        debug_assert_eq!(nodes.len(), n);

        SuffixTrie {
            nodes,
            child_keys,
            child_ids,
            child_totals,
            window_len,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Node {
    total: u64,
    at_start: u64,
    /// Sum of child totals = weighted occurrences with a continuation.
    cont_total: u64,
    first_child: u32,
    n_children: u32,
    parent: u32,
    key: QueryId,
    depth: u32,
}

/// Immutable arena suffix trie in canonical breadth-first layout.
///
/// Node `0` is the root (the empty window). Child edges are stored in one
/// CSR block per node, sorted by `QueryId`, so a path lookup is a cascade of
/// binary searches with no allocation and no hashing.
#[derive(Clone, Debug, PartialEq)]
pub struct SuffixTrie {
    nodes: Vec<Node>,
    child_keys: Vec<QueryId>,
    child_ids: Vec<u32>,
    child_totals: Vec<u64>,
    window_len: u32,
}

impl SuffixTrie {
    /// An empty trie (root only).
    pub fn empty() -> Self {
        TrieBuilder::new().freeze(0)
    }

    /// The root node id.
    pub const ROOT: u32 = 0;

    /// Number of nodes including the root and continuation-only nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Deepest depth that counts as a window.
    pub fn window_len(&self) -> usize {
        self.window_len as usize
    }

    /// Number of nodes that are windows (depth ≤ [`SuffixTrie::window_len`],
    /// excluding the root). BFS layout orders ids by depth, so this is a
    /// partition point.
    pub fn window_count(&self) -> usize {
        self.nodes
            .partition_point(|n| n.depth <= self.window_len)
            .saturating_sub(1)
    }

    /// Child of `node` along `q`.
    #[inline]
    pub fn child(&self, node: u32, q: QueryId) -> Option<u32> {
        let nd = &self.nodes[node as usize];
        let lo = nd.first_child as usize;
        let hi = lo + nd.n_children as usize;
        let keys = &self.child_keys[lo..hi];
        keys.binary_search(&q).ok().map(|i| self.child_ids[lo + i])
    }

    /// Node reached by walking `path` from the root, at any depth.
    pub fn find(&self, path: &[QueryId]) -> Option<u32> {
        let mut node = Self::ROOT;
        for &q in path {
            node = self.child(node, q)?;
        }
        Some(node)
    }

    /// Node of a *window* (length bounded by [`SuffixTrie::window_len`]).
    #[inline]
    pub fn window(&self, w: &[QueryId]) -> Option<u32> {
        if w.len() > self.window_len as usize {
            return None;
        }
        self.find(w)
    }

    /// Weighted occurrences of the node's window anywhere in a session.
    #[inline]
    pub fn total(&self, node: u32) -> u64 {
        self.nodes[node as usize].total
    }

    /// Weighted occurrences at a session start.
    #[inline]
    pub fn at_start(&self, node: u32) -> u64 {
        self.nodes[node as usize].at_start
    }

    /// Weighted occurrences followed by some query (continuation support).
    #[inline]
    pub fn cont_total(&self, node: u32) -> u64 {
        self.nodes[node as usize].cont_total
    }

    /// Depth of the node (root = 0).
    #[inline]
    pub fn depth(&self, node: u32) -> usize {
        self.nodes[node as usize].depth as usize
    }

    /// Parent id (the root's parent is the root itself).
    #[inline]
    pub fn parent(&self, node: u32) -> u32 {
        self.nodes[node as usize].parent
    }

    /// Edge label leading into the node (meaningless for the root).
    #[inline]
    pub fn key(&self, node: u32) -> QueryId {
        self.nodes[node as usize].key
    }

    /// Continuation distribution of the node's window as parallel id-sorted
    /// slices `(queries, weighted counts)` — the merged-walk input for KL
    /// tests and distribution building. Borrowed straight from the arena:
    /// no allocation, no copy.
    #[inline]
    pub fn continuations(&self, node: u32) -> (&[QueryId], &[u64]) {
        let nd = &self.nodes[node as usize];
        let lo = nd.first_child as usize;
        let hi = lo + nd.n_children as usize;
        (&self.child_keys[lo..hi], &self.child_totals[lo..hi])
    }

    /// Child edges of the node as parallel id-sorted slices
    /// `(queries, child node ids)`.
    #[inline]
    pub fn children(&self, node: u32) -> (&[QueryId], &[u32]) {
        let nd = &self.nodes[node as usize];
        let lo = nd.first_child as usize;
        let hi = lo + nd.n_children as usize;
        (&self.child_keys[lo..hi], &self.child_ids[lo..hi])
    }

    /// Reconstruct the node's window into `out` (cleared first), oldest
    /// query first.
    pub fn path(&self, node: u32, out: &mut Vec<QueryId>) {
        out.clear();
        let mut n = node;
        while n != Self::ROOT {
            out.push(self.key(n));
            n = self.parent(n);
        }
        out.reverse();
    }

    /// Ids of all window nodes in canonical `(depth, path)` order — exactly
    /// the old hashmap counter's candidate ordering, obtained here by
    /// construction instead of a sort.
    pub fn window_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        (1..self.nodes.len() as u32).take_while(|&n| self.depth(n) <= self.window_len as usize)
    }

    /// Approximate owned heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.child_keys.capacity() * std::mem::size_of::<QueryId>()
            + self.child_ids.capacity() * std::mem::size_of::<u32>()
            + self.child_totals.capacity() * std::mem::size_of::<u64>()
    }

    /// Flatten for serialization: one `(parent, key, total, at_start)` row
    /// per non-root node, in id order. Within the canonical layout this
    /// round-trips exactly through [`SuffixTrie::from_parts`].
    pub fn parts(&self) -> impl Iterator<Item = (u32, u32, u64, u64)> + '_ {
        self.nodes
            .iter()
            .skip(1)
            .map(|n| (n.parent, n.key.0, n.total, n.at_start))
    }

    /// Rebuild from [`SuffixTrie::parts`] rows. Validates the parent
    /// ordering instead of trusting the input (it may come from disk).
    pub fn from_parts(
        window_len: u32,
        rows: &[(u32, u32, u64, u64)],
    ) -> Result<SuffixTrie, String> {
        // Keys we serialize are dense interner ids, so any legitimate key is
        // comfortably below this bound; without it a single crafted row with
        // a huge depth-1 key would force a multi-gigabyte dense-array
        // allocation before any error could be returned.
        let max_key = rows.len() * 16 + 65_536;
        let mut builder = TrieBuilder::new();
        // ids in the flat form are 1-based row indexes; parents must come
        // earlier, which also guarantees the builder walk is valid.
        let mut ids = Vec::with_capacity(rows.len() + 1);
        ids.push(0u32);
        for (i, &(parent, key, total, at_start)) in rows.iter().enumerate() {
            let id = (i + 1) as u32;
            if parent >= id {
                return Err(format!("node {id} references later parent {parent}"));
            }
            if key as usize > max_key {
                return Err(format!("node {id} has implausible query id {key}"));
            }
            let before = builder.len();
            let mapped = builder.child_or_insert(ids[parent as usize], QueryId(key));
            if builder.len() == before {
                return Err(format!("duplicate edge into node {id}"));
            }
            builder.counts[mapped as usize] = (total, at_start);
            ids.push(mapped);
        }
        Ok(builder.freeze(window_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;

    fn build(sessions: &[(&[u32], u64)], depth_limit: usize) -> TrieBuilder {
        let mut b = TrieBuilder::new();
        for (s, f) in sessions {
            let ids = seq(s);
            b.count_session(&ids, *f, depth_limit);
        }
        b
    }

    #[test]
    fn counts_windows_at_all_positions() {
        // Session [0,1,0]: windows [0]×2, [1], [0,1], [1,0], [0,1,0].
        let t = build(&[(&[0, 1, 0], 1)], 3).freeze(3);
        assert_eq!(t.total(t.window(&seq(&[0])).unwrap()), 2);
        assert_eq!(t.total(t.window(&seq(&[1])).unwrap()), 1);
        assert_eq!(t.total(t.window(&seq(&[0, 1])).unwrap()), 1);
        assert_eq!(t.total(t.window(&seq(&[1, 0])).unwrap()), 1);
        assert_eq!(t.total(t.window(&seq(&[0, 1, 0])).unwrap()), 1);
        assert!(t.window(&seq(&[1, 1])).is_none());
    }

    #[test]
    fn at_start_only_for_prefix_windows() {
        let t = build(&[(&[0, 1, 0], 5)], 3).freeze(3);
        assert_eq!(t.at_start(t.window(&seq(&[0])).unwrap()), 5);
        assert_eq!(t.at_start(t.window(&seq(&[0, 1])).unwrap()), 5);
        assert_eq!(t.at_start(t.window(&seq(&[1, 0])).unwrap()), 0);
    }

    #[test]
    fn continuations_are_child_totals() {
        let t = build(&[(&[0, 1], 3), (&[0, 0], 2)], 2).freeze(2);
        let n0 = t.window(&seq(&[0])).unwrap();
        let (keys, counts) = t.continuations(n0);
        assert_eq!(keys, &[QueryId(0), QueryId(1)]);
        assert_eq!(counts, &[2, 3]);
        assert_eq!(t.cont_total(n0), 5);
    }

    #[test]
    fn depth_limit_truncates() {
        let t = build(&[(&[0, 1, 2, 3], 1)], 2).freeze(1);
        // Depth-2 nodes exist as continuation evidence…
        assert!(t.find(&seq(&[0, 1])).is_some());
        // …but are not windows.
        assert!(t.window(&seq(&[0, 1])).is_none());
        // Depth 3 was never counted.
        assert!(t.find(&seq(&[0, 1, 2])).is_none());
    }

    #[test]
    fn merge_equals_joint_build() {
        let sessions: &[(&[u32], u64)] =
            &[(&[0, 1, 0], 2), (&[1, 0], 3), (&[2, 0, 1], 1), (&[0], 7)];
        let joint = build(sessions, 4).freeze(3);
        let mut a = build(&sessions[..2], 4);
        let b = build(&sessions[2..], 4);
        a.merge(&b);
        assert_eq!(a.freeze(3), joint);
    }

    #[test]
    fn canonical_layout_is_shard_invariant() {
        // Different insertion orders must freeze identically.
        let fwd = build(&[(&[3, 1], 1), (&[0, 2], 1)], 2).freeze(2);
        let rev = build(&[(&[0, 2], 1), (&[3, 1], 1)], 2).freeze(2);
        assert_eq!(fwd, rev);
        // BFS ids ascend by (depth, path).
        let mut last_depth = 0;
        for n in 0..fwd.len() as u32 {
            assert!(fwd.depth(n) >= last_depth);
            last_depth = fwd.depth(n);
        }
    }

    #[test]
    fn path_reconstruction() {
        let t = build(&[(&[4, 2, 9], 1)], 3).freeze(3);
        let n = t.window(&seq(&[4, 2, 9])).unwrap();
        let mut out = Vec::new();
        t.path(n, &mut out);
        assert_eq!(out, seq(&[4, 2, 9]).to_vec());
    }

    #[test]
    fn window_nodes_in_length_then_lex_order() {
        let t = build(&[(&[1, 0], 1), (&[0, 1], 1)], 2).freeze(2);
        let mut buf = Vec::new();
        let windows: Vec<Vec<QueryId>> = t
            .window_nodes()
            .map(|n| {
                t.path(n, &mut buf);
                buf.clone()
            })
            .collect();
        let expect: Vec<Vec<QueryId>> = [&[0u32][..], &[1], &[0, 1], &[1, 0]]
            .iter()
            .map(|s| seq(s).to_vec())
            .collect();
        assert_eq!(windows, expect);
    }

    #[test]
    fn parts_roundtrip() {
        let t = build(&[(&[0, 1, 0], 2), (&[1, 1], 5)], 3).freeze(2);
        let rows: Vec<_> = t.parts().collect();
        let back = SuffixTrie::from_parts(2, &rows).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_parts_rejects_forward_parents() {
        assert!(SuffixTrie::from_parts(1, &[(5, 0, 1, 1)]).is_err());
    }

    #[test]
    fn empty_trie() {
        let t = SuffixTrie::empty();
        assert!(t.is_empty());
        assert_eq!(t.window_count(), 0);
        assert!(t.window(&seq(&[0])).is_none());
        assert_eq!(t.window_nodes().count(), 0);
    }
}
