//! Query-string interning.
//!
//! The paper's corpus has ~1.1B unique queries; ours is smaller but the same
//! principle applies: every query string is stored exactly once and all
//! downstream structures hold dense 4-byte [`QueryId`]s. The interner is the
//! single owner of query text — the lookup index holds only `QueryId`s
//! hashed through the string table, so each query costs its UTF-8 bytes plus
//! a few words of bookkeeping, not two copies of the text.

use crate::hash::fx_hash_one;
use crate::QueryId;
use std::sync::{Arc, RwLock};

const EMPTY_SLOT: u32 = u32::MAX;

/// Bijective map between query strings and [`QueryId`]s.
///
/// Ids are assigned densely in first-seen order, so `resolve` is an O(1)
/// vector index and parallel arrays indexed by `QueryId::index()` are cheap.
/// The reverse index is an open-addressing table of ids probed by string
/// hash; strings themselves live only in the id-ordered table.
///
/// # Examples
///
/// ```
/// use sqp_common::Interner;
///
/// let mut interner = Interner::new();
/// let id = interner.intern("kidney stones");
/// assert_eq!(interner.intern("kidney stones"), id); // idempotent
/// assert_eq!(interner.resolve(id), "kidney stones");
/// assert_eq!(interner.get("unseen query"), None);   // lookup never interns
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug)]
pub struct Interner {
    strings: Vec<Box<str>>,
    /// Open-addressing slots holding ids (EMPTY_SLOT = vacant). Capacity is
    /// a power of two; load factor is kept under ~0.75.
    slots: Vec<u32>,
    /// Total bytes of interned string content.
    string_bytes: usize,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self {
            strings: Vec::new(),
            slots: vec![EMPTY_SLOT; 16],
            string_bytes: 0,
        }
    }

    /// Create an interner sized for roughly `capacity` distinct queries.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity * 2).next_power_of_two().max(16);
        Self {
            strings: Vec::with_capacity(capacity),
            slots: vec![EMPTY_SLOT; slots],
            string_bytes: 0,
        }
    }

    #[inline]
    fn probe_start(&self, query: &str) -> usize {
        fx_hash_one(&query.as_bytes()) as usize & (self.slots.len() - 1)
    }

    /// Slot index holding `query`'s id, or the vacant slot where it belongs.
    #[inline]
    fn find_slot(&self, query: &str) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = self.probe_start(query);
        loop {
            let id = self.slots[i];
            if id == EMPTY_SLOT || self.strings[id as usize].as_ref() == query {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mask = new_len - 1;
        let mut slots = vec![EMPTY_SLOT; new_len];
        for (id, s) in self.strings.iter().enumerate() {
            let mut i = fx_hash_one(&s.as_bytes()) as usize & mask;
            while slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = id as u32;
        }
        self.slots = slots;
    }

    /// Intern `query`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, query: &str) -> QueryId {
        let mut slot = self.find_slot(query);
        if self.slots[slot] != EMPTY_SLOT {
            return QueryId(self.slots[slot]);
        }
        if (self.strings.len() + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
            // Growth moved every slot; the pre-grow probe is stale.
            slot = self.find_slot(query);
        }
        let id = u32::try_from(self.strings.len()).expect("more than u32::MAX queries");
        self.string_bytes += query.len();
        self.strings.push(query.into());
        self.slots[slot] = id;
        QueryId(id)
    }

    /// Look up an id without interning. Returns `None` for unseen queries.
    pub fn get(&self, query: &str) -> Option<QueryId> {
        let id = self.slots[self.find_slot(query)];
        (id != EMPTY_SLOT).then_some(QueryId(id))
    }

    /// Resolve an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: QueryId) -> &str {
        &self.strings[id.index()]
    }

    /// Resolve an id, returning `None` if out of range.
    pub fn try_resolve(&self, id: QueryId) -> Option<&str> {
        self.strings.get(id.index()).map(|s| s.as_ref())
    }

    /// Number of distinct interned queries, the paper's `|Q|`.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no query has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Bytes of query text resident (each string stored exactly once).
    pub fn bytes_resident(&self) -> usize {
        self.string_bytes
    }

    /// Iterate `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (QueryId(i as u32), s.as_ref()))
    }

    /// Intern every element of a textual session, producing an id sequence.
    pub fn intern_session<S: AsRef<str>>(&mut self, queries: &[S]) -> crate::QuerySeq {
        queries.iter().map(|q| self.intern(q.as_ref())).collect()
    }

    /// Render an id sequence as human-readable ` ⇒ `-joined text.
    pub fn render(&self, seq: &[QueryId]) -> String {
        seq.iter()
            .map(|&q| self.resolve(q))
            .collect::<Vec<_>>()
            .join(" => ")
    }

    /// Append the interner's wire form to `buf`.
    ///
    /// Layout (all integers little-endian, strings in id order so ids are
    /// implicit): `n_queries: u32`, `content_bytes: u64`, then per query
    /// `len: u32` followed by `len` UTF-8 bytes. Documented byte-for-byte in
    /// the repository's `FORMAT.md` (the interner block of snapshot v3).
    ///
    /// # Examples
    ///
    /// ```
    /// use sqp_common::bytes::BytesMut;
    /// use sqp_common::Interner;
    ///
    /// let mut original = Interner::new();
    /// let id = original.intern("kidney stones");
    /// let mut buf = BytesMut::with_capacity(64);
    /// original.serialize_into(&mut buf);
    /// let restored = Interner::deserialize(&mut buf.freeze()).unwrap();
    /// assert_eq!(restored.resolve(id), "kidney stones"); // same ids
    /// ```
    pub fn serialize_into(&self, buf: &mut crate::bytes::BytesMut) {
        buf.put_u32_le(self.strings.len() as u32);
        buf.put_u64_le(self.string_bytes as u64);
        for s in &self.strings {
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
    }

    /// Reconstruct an interner serialized with
    /// [`serialize_into`](Interner::serialize_into), assigning identical ids.
    ///
    /// The declared query count pre-sizes both the string table and the id
    /// index, so loading performs one allocation per string plus two for the
    /// tables — no rehash-driven growth. Fails (without panicking) on
    /// truncation, non-UTF-8 content, duplicate strings, or a content-byte
    /// total that disagrees with the declared header.
    pub fn deserialize(data: &mut crate::bytes::Bytes) -> Result<Interner, String> {
        if data.remaining() < 12 {
            return Err("truncated interner header".into());
        }
        let n = data.get_u32_le() as usize;
        let declared_bytes = data.get_u64_le() as usize;
        // Sanity bound before pre-sizing: every string costs ≥ 4 bytes of
        // length prefix, so a corrupt count cannot force a huge allocation.
        if data.remaining() < n * 4 {
            return Err("truncated interner body".into());
        }
        let mut out = Interner::with_capacity(n);
        for i in 0..n {
            if data.remaining() < 4 {
                return Err(format!("truncated length of interned string {i}"));
            }
            let len = data.get_u32_le() as usize;
            if data.remaining() < len {
                return Err(format!("truncated content of interned string {i}"));
            }
            let mut raw = vec![0u8; len];
            data.copy_to_slice(&mut raw);
            let s = String::from_utf8(raw)
                .map_err(|_| format!("interned string {i} is not valid UTF-8"))?;
            let id = out.intern(&s);
            if id.index() != i {
                return Err(format!("duplicate interned string at id {i}"));
            }
        }
        if out.string_bytes != declared_bytes {
            return Err(format!(
                "interner content bytes mismatch: header says {declared_bytes}, read {}",
                out.string_bytes
            ));
        }
        Ok(out)
    }
}

impl crate::mem::HeapSize for Interner {
    fn heap_size_bytes(&self) -> usize {
        // One copy of every string + the Box headers + the id table.
        self.string_bytes
            + self.strings.capacity() * std::mem::size_of::<Box<str>>()
            + self.slots.capacity() * std::mem::size_of::<u32>()
    }
}

/// Thread-shareable interner for the parallel training paths.
#[derive(Clone, Default)]
pub struct SharedInterner {
    inner: Arc<RwLock<Interner>>,
}

impl SharedInterner {
    /// Wrap a fresh interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing interner.
    pub fn from_interner(interner: Interner) -> Self {
        Self {
            inner: Arc::new(RwLock::new(interner)),
        }
    }

    /// Intern with a write lock.
    pub fn intern(&self, query: &str) -> QueryId {
        self.inner
            .write()
            .expect("interner lock poisoned")
            .intern(query)
    }

    /// Read-only lookup.
    pub fn get(&self, query: &str) -> Option<QueryId> {
        self.inner
            .read()
            .expect("interner lock poisoned")
            .get(query)
    }

    /// Resolve to an owned string (the lock cannot escape).
    pub fn resolve_owned(&self, id: QueryId) -> Option<String> {
        self.inner
            .read()
            .expect("interner lock poisoned")
            .try_resolve(id)
            .map(str::to_owned)
    }

    /// Distinct query count.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner lock poisoned").len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner
            .read()
            .expect("interner lock poisoned")
            .is_empty()
    }

    /// Run `f` with the underlying interner borrowed read-only.
    pub fn with<R>(&self, f: impl FnOnce(&Interner) -> R) -> R {
        f(&self.inner.read().expect("interner lock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("kidney stones");
        let b = i.intern("kidney stones");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let id = i.intern("nokia n73 themes");
        assert_eq!(i.resolve(id), "nokia n73 themes");
        assert_eq!(i.get("nokia n73 themes"), Some(id));
        assert_eq!(i.get("unknown"), None);
        assert!(i.try_resolve(QueryId(999)).is_none());
    }

    #[test]
    fn survives_growth_beyond_initial_table() {
        let mut i = Interner::with_capacity(4);
        let ids: Vec<QueryId> = (0..5000).map(|k| i.intern(&format!("query {k}"))).collect();
        assert_eq!(i.len(), 5000);
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(i.get(&format!("query {k}")), Some(*id));
            assert_eq!(i.resolve(*id), format!("query {k}"));
        }
    }

    #[test]
    fn bytes_resident_counts_content_once() {
        let mut i = Interner::new();
        i.intern("abcd");
        i.intern("ef");
        i.intern("abcd"); // duplicate — no extra bytes
        assert_eq!(i.bytes_resident(), 6);
    }

    #[test]
    fn intern_session_and_render() {
        let mut i = Interner::new();
        let s = i.intern_session(&["sign language", "learn sign language"]);
        assert_eq!(s.len(), 2);
        assert_eq!(i.render(&s), "sign language => learn sign language");
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let collected: Vec<_> = i.iter().map(|(id, s)| (id.0, s.to_owned())).collect();
        assert_eq!(collected, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn serialization_roundtrip_preserves_ids() {
        let mut original = Interner::new();
        let ids: Vec<QueryId> = (0..500)
            .map(|k| original.intern(&format!("query número {k}")))
            .collect();
        let mut buf = crate::bytes::BytesMut::with_capacity(1024);
        original.serialize_into(&mut buf);
        let restored = Interner::deserialize(&mut buf.freeze()).unwrap();
        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.bytes_resident(), original.bytes_resident());
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(restored.resolve(*id), format!("query número {k}"));
            assert_eq!(restored.get(&format!("query número {k}")), Some(*id));
        }
    }

    #[test]
    fn empty_interner_roundtrips() {
        let mut buf = crate::bytes::BytesMut::with_capacity(16);
        Interner::new().serialize_into(&mut buf);
        let restored = Interner::deserialize(&mut buf.freeze()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn deserialize_rejects_truncation_and_garbage() {
        let mut original = Interner::new();
        original.intern("alpha");
        original.intern("beta");
        let mut buf = crate::bytes::BytesMut::with_capacity(64);
        original.serialize_into(&mut buf);
        let blob = buf.freeze();
        for cut in 0..blob.len() {
            let mut prefix = blob.slice(0..cut);
            assert!(
                Interner::deserialize(&mut prefix).is_err(),
                "cut at {cut} should fail"
            );
        }
        // Bad declared content total.
        let mut raw = blob.to_vec();
        raw[4] ^= 0xff;
        assert!(Interner::deserialize(&mut crate::bytes::Bytes::from(raw)).is_err());
        // Duplicate strings break the id bijection.
        let mut dup = crate::bytes::BytesMut::with_capacity(32);
        dup.put_u32_le(2);
        dup.put_u64_le(4);
        for _ in 0..2 {
            dup.put_u32_le(2);
            dup.put_slice(b"xy");
        }
        assert!(Interner::deserialize(&mut dup.freeze()).is_err());
        // Invalid UTF-8 content.
        let mut bad = crate::bytes::BytesMut::with_capacity(32);
        bad.put_u32_le(1);
        bad.put_u64_le(2);
        bad.put_u32_le(2);
        bad.put_slice(&[0xff, 0xfe]);
        assert!(Interner::deserialize(&mut bad.freeze()).is_err());
    }

    #[test]
    fn shared_interner_threaded() {
        let shared = SharedInterner::new();
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..100 {
                    s.intern(&format!("query-{}", (t * 7 + k) % 50));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.len(), 50);
        let id = shared.get("query-0").unwrap();
        assert_eq!(shared.resolve_owned(id).unwrap(), "query-0");
    }

    #[test]
    fn heap_size_grows_with_content() {
        use crate::mem::HeapSize;
        let mut small = Interner::new();
        small.intern("a");
        let mut big = Interner::new();
        for k in 0..1000 {
            big.intern(&format!("some longer query text number {k}"));
        }
        assert!(big.heap_size_bytes() > small.heap_size_bytes());
        // The single-copy layout stays within ~2× of raw content for long
        // strings (the old double-store was > 2× by construction).
        assert!(big.heap_size_bytes() < big.bytes_resident() * 2 + 64 * 1024);
    }
}
