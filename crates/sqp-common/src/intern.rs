//! Query-string interning.
//!
//! The paper's corpus has ~1.1B unique queries; ours is smaller but the same
//! principle applies: every query string is stored exactly once and all
//! downstream structures hold dense 4-byte [`QueryId`]s. The interner is the
//! single owner of query text.

use crate::hash::FxHashMap;
use crate::QueryId;
use parking_lot::RwLock;
use std::sync::Arc;

/// Bijective map between query strings and [`QueryId`]s.
///
/// Ids are assigned densely in first-seen order, so `resolve` is an O(1)
/// vector index and parallel arrays indexed by `QueryId::index()` are cheap.
#[derive(Default, Debug)]
pub struct Interner {
    map: FxHashMap<Box<str>, QueryId>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner sized for roughly `capacity` distinct queries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            strings: Vec::with_capacity(capacity),
        }
    }

    /// Intern `query`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, query: &str) -> QueryId {
        if let Some(&id) = self.map.get(query) {
            return id;
        }
        let id = QueryId(u32::try_from(self.strings.len()).expect("more than u32::MAX queries"));
        let boxed: Box<str> = query.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Look up an id without interning. Returns `None` for unseen queries.
    pub fn get(&self, query: &str) -> Option<QueryId> {
        self.map.get(query).copied()
    }

    /// Resolve an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: QueryId) -> &str {
        &self.strings[id.index()]
    }

    /// Resolve an id, returning `None` if out of range.
    pub fn try_resolve(&self, id: QueryId) -> Option<&str> {
        self.strings.get(id.index()).map(|s| s.as_ref())
    }

    /// Number of distinct interned queries, the paper's `|Q|`.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no query has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (QueryId(i as u32), s.as_ref()))
    }

    /// Intern every element of a textual session, producing an id sequence.
    pub fn intern_session<S: AsRef<str>>(&mut self, queries: &[S]) -> crate::QuerySeq {
        queries.iter().map(|q| self.intern(q.as_ref())).collect()
    }

    /// Render an id sequence as human-readable ` ⇒ `-joined text.
    pub fn render(&self, seq: &[QueryId]) -> String {
        seq.iter()
            .map(|&q| self.resolve(q))
            .collect::<Vec<_>>()
            .join(" => ")
    }
}

impl crate::mem::HeapSize for Interner {
    fn heap_size_bytes(&self) -> usize {
        let strings: usize = self
            .strings
            .iter()
            .map(|s| s.len() + std::mem::size_of::<Box<str>>())
            .sum();
        // Map keys share content size with `strings` clones; count them too,
        // plus per-entry table overhead.
        let map_entries = self.map.len()
            * (std::mem::size_of::<Box<str>>() + std::mem::size_of::<QueryId>() + 8);
        let map_content: usize = self.map.keys().map(|k| k.len()).sum();
        strings + map_entries + map_content + self.strings.capacity() * std::mem::size_of::<Box<str>>()
    }
}

/// Thread-shareable interner for the parallel training paths.
#[derive(Clone, Default)]
pub struct SharedInterner {
    inner: Arc<RwLock<Interner>>,
}

impl SharedInterner {
    /// Wrap a fresh interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing interner.
    pub fn from_interner(interner: Interner) -> Self {
        Self {
            inner: Arc::new(RwLock::new(interner)),
        }
    }

    /// Intern with a write lock.
    pub fn intern(&self, query: &str) -> QueryId {
        self.inner.write().intern(query)
    }

    /// Read-only lookup.
    pub fn get(&self, query: &str) -> Option<QueryId> {
        self.inner.read().get(query)
    }

    /// Resolve to an owned string (the lock cannot escape).
    pub fn resolve_owned(&self, id: QueryId) -> Option<String> {
        self.inner.read().try_resolve(id).map(str::to_owned)
    }

    /// Distinct query count.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Run `f` with the underlying interner borrowed read-only.
    pub fn with<R>(&self, f: impl FnOnce(&Interner) -> R) -> R {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("kidney stones");
        let b = i.intern("kidney stones");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let id = i.intern("nokia n73 themes");
        assert_eq!(i.resolve(id), "nokia n73 themes");
        assert_eq!(i.get("nokia n73 themes"), Some(id));
        assert_eq!(i.get("unknown"), None);
        assert!(i.try_resolve(QueryId(999)).is_none());
    }

    #[test]
    fn intern_session_and_render() {
        let mut i = Interner::new();
        let s = i.intern_session(&["sign language", "learn sign language"]);
        assert_eq!(s.len(), 2);
        assert_eq!(i.render(&s), "sign language => learn sign language");
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let collected: Vec<_> = i.iter().map(|(id, s)| (id.0, s.to_owned())).collect();
        assert_eq!(collected, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn shared_interner_threaded() {
        let shared = SharedInterner::new();
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..100 {
                    s.intern(&format!("query-{}", (t * 7 + k) % 50));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.len(), 50);
        let id = shared.get("query-0").unwrap();
        assert_eq!(shared.resolve_owned(id).unwrap(), "query-0");
    }

    #[test]
    fn heap_size_grows_with_content() {
        use crate::mem::HeapSize;
        let mut small = Interner::new();
        small.intern("a");
        let mut big = Interner::new();
        for k in 0..1000 {
            big.intern(&format!("some longer query text number {k}"));
        }
        assert!(big.heap_size_bytes() > small.heap_size_bytes());
    }
}
