//! Deterministic top-k selection.
//!
//! Every recommender returns the k highest-scoring candidate queries. Ties
//! must break deterministically (by ascending id) so that experiments are
//! reproducible bit-for-bit across runs and platforms.

use crate::QueryId;
use std::cmp::Ordering;

/// A scored recommendation candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scored {
    /// Candidate query.
    pub query: QueryId,
    /// Model score (higher is better); NaN is not permitted.
    pub score: f64,
}

impl Scored {
    /// Construct a candidate.
    pub fn new(query: QueryId, score: f64) -> Self {
        debug_assert!(!score.is_nan(), "NaN score for {query}");
        Self { query, score }
    }
}

/// Total order: higher score first, ties by ascending query id.
fn cmp_desc(a: &Scored, b: &Scored) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.query.cmp(&b.query))
}

/// Select the top `k` items from `items`, ordered best-first.
///
/// Uses a full sort for small inputs and a bounded selection otherwise;
/// output ordering is always the deterministic total order above.
pub fn top_k(mut items: Vec<Scored>, k: usize) -> Vec<Scored> {
    if k == 0 || items.is_empty() {
        return Vec::new();
    }
    if items.len() > k * 4 && items.len() > 64 {
        // Partial selection first to avoid sorting the long tail.
        items.select_nth_unstable_by(k - 1, cmp_desc);
        items.truncate(k);
    }
    items.sort_unstable_by(cmp_desc);
    items.truncate(k);
    items
}

/// Top-k over `(QueryId, u64)` count pairs — the common case when ranking
/// next-query candidates straight from frequency counts.
pub fn top_k_counts<I: IntoIterator<Item = (QueryId, u64)>>(counts: I, k: usize) -> Vec<Scored> {
    top_k(
        counts
            .into_iter()
            .map(|(q, c)| Scored::new(q, c as f64))
            .collect(),
        k,
    )
}

/// Merge scored lists (summing scores of duplicate queries) and take top-k.
/// Used by the MVMM when combining component predictions.
pub fn merge_top_k(lists: &[Vec<Scored>], k: usize) -> Vec<Scored> {
    let mut acc: crate::FxHashMap<QueryId, f64> = crate::FxHashMap::default();
    for list in lists {
        for s in list {
            *acc.entry(s.query).or_insert(0.0) += s.score;
        }
    }
    top_k(acc.into_iter().map(|(q, s)| Scored::new(q, s)).collect(), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(q: u32, score: f64) -> Scored {
        Scored::new(QueryId(q), score)
    }

    #[test]
    fn orders_by_score_desc() {
        let out = top_k(vec![s(1, 0.2), s(2, 0.9), s(3, 0.5)], 3);
        let ids: Vec<u32> = out.iter().map(|x| x.query.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn ties_break_by_ascending_id() {
        let out = top_k(vec![s(9, 1.0), s(3, 1.0), s(5, 1.0)], 2);
        let ids: Vec<u32> = out.iter().map(|x| x.query.0).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn truncates_to_k() {
        let items: Vec<Scored> = (0..100).map(|i| s(i, i as f64)).collect();
        let out = top_k(items, 5);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].query.0, 99);
        assert_eq!(out[4].query.0, 95);
    }

    #[test]
    fn k_zero_and_empty() {
        assert!(top_k(vec![s(1, 1.0)], 0).is_empty());
        assert!(top_k(Vec::new(), 5).is_empty());
    }

    #[test]
    fn counts_helper() {
        let out = top_k_counts([(QueryId(7), 3u64), (QueryId(2), 10)], 1);
        assert_eq!(out[0].query.0, 2);
        assert_eq!(out[0].score, 10.0);
    }

    #[test]
    fn merge_sums_duplicates() {
        let a = vec![s(1, 0.5), s(2, 0.1)];
        let b = vec![s(1, 0.4), s(3, 0.3)];
        let out = merge_top_k(&[a, b], 3);
        assert_eq!(out[0].query.0, 1);
        assert!((out[0].score - 0.9).abs() < 1e-12);
        assert_eq!(out[1].query.0, 3);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::rng::{Rng, StdRng};

    #[test]
    fn equals_full_sort_prefix() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(case);
            let n = rng.random_range(0usize..200);
            let k = rng.random_range(0usize..16);
            // Deduplicate ids to keep the expected order well-defined.
            let mut seen = std::collections::HashSet::new();
            let items: Vec<Scored> = (0..n)
                .map(|_| (rng.random_range(0u32..64), rng.random_range(0u64..50)))
                .filter(|(q, _)| seen.insert(*q))
                .map(|(q, c)| Scored::new(QueryId(q), c as f64))
                .collect();

            let mut expect = items.clone();
            expect.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap()
                    .then_with(|| a.query.cmp(&b.query))
            });
            expect.truncate(k);

            let got = top_k(items, k);
            assert_eq!(got, expect, "case {case}");
        }
    }

    #[test]
    fn output_is_sorted_and_bounded() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(1000 + case);
            let n = rng.random_range(0usize..300);
            let k = rng.random_range(1usize..10);
            let items: Vec<Scored> = (0..n)
                .map(|_| {
                    Scored::new(
                        QueryId(rng.random_range(0u32..1000)),
                        rng.random::<f64>() * 100.0,
                    )
                })
                .collect();
            let out = top_k(items, k);
            assert!(out.len() <= k, "case {case}");
            for w in out.windows(2) {
                assert!(w[0].score >= w[1].score, "case {case}");
            }
        }
    }
}
