//! Counting maps.
//!
//! Thin ergonomic layer over [`FxHashMap`] for the frequency counting that
//! dominates model training: next-query distributions, pair counts,
//! aggregated session frequencies.

use crate::hash::FxHashMap;
use std::hash::Hash;

/// A multiset: key → occurrence count.
#[derive(Clone, Debug)]
pub struct Counter<K: Eq + Hash> {
    map: FxHashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash> Default for Counter<K> {
    fn default() -> Self {
        Self {
            map: FxHashMap::default(),
            total: 0,
        }
    }
}

impl<K: Eq + Hash> Counter<K> {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `weight` occurrences of `key`.
    pub fn add(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        *self.map.entry(key).or_insert(0) += weight;
        self.total += weight;
    }

    /// Add one occurrence.
    pub fn observe(&mut self, key: K) {
        self.add(key, 1);
    }

    /// Count for `key` (0 when absent).
    pub fn get<Q>(&self, key: &Q) -> u64
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no key has been observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(key, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.map.iter().map(|(k, &v)| (k, v))
    }

    /// Consume into the underlying map.
    pub fn into_map(self) -> FxHashMap<K, u64> {
        self.map
    }

    /// Probability of `key` under the empirical distribution.
    pub fn probability<Q>(&self, key: &Q) -> f64
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        if self.total == 0 {
            0.0
        } else {
            self.get(key) as f64 / self.total as f64
        }
    }

    /// Retain only entries with count ≥ `min`, returning removed total weight.
    pub fn prune_below(&mut self, min: u64) -> u64 {
        let mut removed = 0u64;
        self.map.retain(|_, v| {
            if *v >= min {
                true
            } else {
                removed += *v;
                false
            }
        });
        self.total -= removed;
        removed
    }
}

impl<K: Eq + Hash + Clone> Counter<K> {
    /// Merge counts from another counter.
    pub fn merge(&mut self, other: &Counter<K>) {
        for (k, v) in other.iter() {
            self.add(k.clone(), v);
        }
    }
}

impl<K: Eq + Hash> FromIterator<K> for Counter<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        let mut c = Counter::new();
        for k in iter {
            c.observe(k);
        }
        c
    }
}

impl<K: Eq + Hash + Ord + Clone> Counter<K> {
    /// Entries sorted by descending count, ties by ascending key.
    pub fn sorted_desc(&self) -> Vec<(K, u64)> {
        let mut v: Vec<(K, u64)> = self.iter().map(|(k, c)| (k.clone(), c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_total() {
        let mut c: Counter<&str> = Counter::new();
        c.observe("java");
        c.observe("java");
        c.add("sun java", 3);
        assert_eq!(c.get("java"), 2);
        assert_eq!(c.get("sun java"), 3);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.total(), 5);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn probability_sums_to_one() {
        let c: Counter<u32> = [1u32, 1, 2, 3].into_iter().collect();
        let p: f64 = [1u32, 2, 3].iter().map(|k| c.probability(k)).sum();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probability_of_empty_counter() {
        let c: Counter<u32> = Counter::new();
        assert_eq!(c.probability(&1), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn prune_below_removes_and_adjusts_total() {
        let mut c: Counter<u32> = Counter::new();
        c.add(1, 10);
        c.add(2, 2);
        c.add(3, 1);
        let removed = c.prune_below(3);
        assert_eq!(removed, 3);
        assert_eq!(c.total(), 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), 10);
    }

    #[test]
    fn merge_adds() {
        let a: Counter<u32> = [1u32, 2].into_iter().collect();
        let mut b: Counter<u32> = [2u32].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.get(&1), 1);
        assert_eq!(b.get(&2), 2);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn sorted_desc_breaks_ties_by_key() {
        let mut c: Counter<u32> = Counter::new();
        c.add(5, 2);
        c.add(1, 2);
        c.add(9, 7);
        assert_eq!(c.sorted_desc(), vec![(9, 7), (1, 2), (5, 2)]);
    }

    #[test]
    fn zero_weight_add_is_noop() {
        let mut c: Counter<u32> = Counter::new();
        c.add(1, 0);
        assert!(c.is_empty());
        assert_eq!(c.total(), 0);
    }
}
