//! Integer-keyed histograms.
//!
//! Used for the session-length distributions (Figures 5 and 7 of the paper)
//! and the aggregated-session frequency spectrum behind the power-law plot
//! (Figure 6).

use std::collections::BTreeMap;

/// A histogram over `u64` keys with `u64` weights.
///
/// Backed by a `BTreeMap` so iteration is in key order, which is what the
/// figure printers need.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `weight` observations of `key`.
    pub fn add(&mut self, key: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        *self.buckets.entry(key).or_insert(0) += weight;
        self.total += weight;
    }

    /// Add a single observation of `key`.
    pub fn observe(&mut self, key: u64) {
        self.add(key, 1);
    }

    /// Total weight across all buckets.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Weight in `key`'s bucket.
    pub fn count(&self, key: u64) -> u64 {
        self.buckets.get(&key).copied().unwrap_or(0)
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.buckets.len()
    }

    /// Largest observed key, if any.
    pub fn max_key(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// Iterate `(key, weight)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&k, &v)| (k, v))
    }

    /// Weighted mean of the keys (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.iter().map(|(k, v)| k as f64 * v as f64).sum();
        sum / self.total as f64
    }

    /// Fraction of total weight in buckets with `key <= bound`.
    pub fn cumulative_fraction(&self, bound: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .iter()
            .take_while(|(k, _)| *k <= bound)
            .map(|(_, v)| v)
            .sum();
        below as f64 / self.total as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        for k in iter {
            h.observe(k);
        }
        h
    }
}

/// Least-squares slope of `log10(y)` vs `log10(x)` — the power-law exponent
/// estimate used for Figure 6 (rank/frequency of aggregated sessions).
///
/// Returns `None` when fewer than two usable points exist.
pub fn log_log_slope(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.log10(), y.log10()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counting() {
        let mut h = Histogram::new();
        h.observe(2);
        h.observe(2);
        h.add(3, 5);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(3), 5);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.total(), 7);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.max_key(), Some(3));
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut h = Histogram::new();
        h.add(1, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.distinct(), 0);
    }

    #[test]
    fn mean_and_cumulative() {
        let h: Histogram = [1u64, 1, 2, 4].into_iter().collect();
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert!((h.cumulative_fraction(1) - 0.5).abs() < 1e-12);
        assert!((h.cumulative_fraction(2) - 0.75).abs() < 1e-12);
        assert!((h.cumulative_fraction(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums() {
        let a: Histogram = [1u64, 2].into_iter().collect();
        let mut b: Histogram = [2u64, 3].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.count(1), 1);
        assert_eq!(b.count(2), 2);
        assert_eq!(b.count(3), 1);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn iteration_in_key_order() {
        let mut h = Histogram::new();
        h.observe(5);
        h.observe(1);
        h.observe(3);
        let keys: Vec<u64> = h.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn slope_of_exact_power_law() {
        // y = 100 * x^-2
        let pts: Vec<(f64, f64)> = (1..50)
            .map(|i| (i as f64, 100.0 * (i as f64).powf(-2.0)))
            .collect();
        let slope = log_log_slope(&pts).unwrap();
        assert!((slope + 2.0).abs() < 1e-9, "slope = {slope}");
    }

    #[test]
    fn slope_requires_two_points() {
        assert!(log_log_slope(&[]).is_none());
        assert!(log_log_slope(&[(1.0, 1.0)]).is_none());
        assert!(log_log_slope(&[(0.0, 1.0), (0.0, 2.0)]).is_none());
    }
}
