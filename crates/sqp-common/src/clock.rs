//! The time seam: wall-clock reads and sleeps behind a trait.
//!
//! Resilience code waits — retry backoff, circuit-breaker cooldowns — and
//! waiting is untestable against the real clock (a chaos run exercising a
//! minutes-long cooldown must not take minutes). Every component that
//! sleeps or compares durations does so through [`Clock`]; production uses
//! [`RealClock`], and the fault-injection layer substitutes a virtual clock
//! whose `sleep` advances time instantly and deterministically.

use std::time::Duration;

/// Monotonic time reads and sleeps, as an injectable seam.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary fixed origin. Only differences are
    /// meaningful; the origin is stable for the life of the clock.
    fn now_millis(&self) -> u64;

    /// Block the calling thread for (at least) `dur` — or, for a virtual
    /// clock, advance time by `dur` without blocking.
    fn sleep(&self, dur: Duration);
}

/// The process's real monotonic clock.
///
/// # Examples
///
/// ```
/// use sqp_common::clock::{Clock, RealClock};
/// use std::time::Duration;
///
/// let t0 = RealClock.now_millis();
/// RealClock.sleep(Duration::from_millis(2));
/// assert!(RealClock.now_millis() >= t0);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct RealClock;

impl Clock for RealClock {
    fn now_millis(&self) -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        // Monotonic origin fixed at first use; only gaps matter.
        static ORIGIN: OnceLock<Instant> = OnceLock::new();
        ORIGIN.get_or_init(Instant::now).elapsed().as_millis() as u64
    }

    fn sleep(&self, dur: Duration) {
        std::thread::sleep(dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let a = RealClock.now_millis();
        RealClock.sleep(Duration::from_millis(1));
        let b = RealClock.now_millis();
        assert!(b >= a);
    }
}
