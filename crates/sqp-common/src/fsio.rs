//! The filesystem seam: every snapshot-store disk operation behind a trait.
//!
//! Production code talks to the real filesystem through [`RealFs`]; the
//! fault-injection layer (`sqp-faults`) wraps the same trait to inject disk
//! write/read errors, short reads, and corrupt-on-write faults at exactly
//! the seams the store exercises. Keeping the trait here (rather than in
//! the store) lets the chaos crate stay dependency-light and lets any crate
//! adopt the seam without a store dependency.
//!
//! The trait is deliberately small: it covers the handful of operations the
//! snapshot lifecycle performs (whole-file read, atomic whole-file write,
//! rename, delete, directory listing) rather than mirroring `std::fs`.

use std::io;
use std::path::{Path, PathBuf};

/// Filesystem operations the snapshot store performs, as an injectable seam.
///
/// All methods are whole-operation granularity (no partial-write streaming):
/// a fault injector can therefore model the interesting failure classes —
/// an errored write, a torn/corrupted file, a short read — without having
/// to emulate POSIX byte-level semantics.
pub trait FsIo: Send + Sync {
    /// Read the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Write `bytes` to `path` atomically: either the old content (or
    /// absence) survives, or the full new content does — readers never
    /// observe a half-written file at `path`.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Rename `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Paths of the entries directly inside `dir`, in unspecified order.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The real filesystem: thin delegation to `std::fs`.
///
/// # Examples
///
/// ```
/// use sqp_common::fsio::{FsIo, RealFs};
///
/// let dir = std::env::temp_dir().join(format!("sqp-fsio-doc-{}", std::process::id()));
/// RealFs.create_dir_all(&dir).unwrap();
/// let path = dir.join("probe.bin");
/// RealFs.write_atomic(&path, b"hello").unwrap();
/// assert_eq!(RealFs.read(&path).unwrap(), b"hello");
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

impl FsIo for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // Write-to-temp + rename: the canonical atomic publish. The temp
        // file lives next to the target so the rename never crosses a
        // filesystem boundary.
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::read_dir(dir)?
            .map(|entry| entry.map(|e| e.path()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join(format!("sqp-fsio-test-{}", std::process::id()));
        RealFs.create_dir_all(&dir).unwrap();
        let path = dir.join("value.bin");
        RealFs.write_atomic(&path, b"v1").unwrap();
        RealFs.write_atomic(&path, b"v2").unwrap();
        assert_eq!(RealFs.read(&path).unwrap(), b"v2");
        let listed = RealFs.list(&dir).unwrap();
        assert_eq!(listed, vec![path.clone()], "tmp file left behind");
        RealFs.rename(&path, &dir.join("renamed.bin")).unwrap();
        RealFs.remove_file(&dir.join("renamed.bin")).unwrap();
        assert!(RealFs.list(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_missing_is_a_typed_error() {
        let err = RealFs.read(Path::new("/nonexistent/sqp-fsio")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
