//! Little-endian byte buffers for the wire codecs.
//!
//! A minimal, dependency-free stand-in for the `bytes` crate: [`BytesMut`] is
//! an append-only writer, [`Bytes`] a cheaply cloneable read cursor over
//! shared immutable storage. Only the little-endian accessors the log and
//! model codecs use are provided. Readers never panic on short input — every
//! accessor is paired with [`Bytes::remaining`] checks at the call sites, and
//! misuse panics loudly rather than reading garbage.
//!
//! The network wire protocol (`sqp-net`, see `WIRE.md`) additionally codes
//! small integers as LEB128 varints over plain `Vec<u8>` / `&[u8]` buffers —
//! plain slices rather than [`Bytes`], because a per-connection codec reuses
//! one buffer for its whole lifetime and must never reallocate on the steady
//! state path. [`put_uvarint`] / [`get_uvarint`] are those helpers.

use std::sync::Arc;

/// Shared immutable byte storage with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wrap a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Unread bytes left.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.end - self.start
    }

    /// Total unread length (alias of [`Bytes::remaining`], `bytes`-style).
    #[inline]
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// True when fully consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The unread bytes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the unread bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view of the unread bytes (shares storage).
    ///
    /// # Panics
    /// Panics when the range exceeds [`Bytes::remaining`].
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.remaining());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    #[inline]
    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.remaining(), "read past end of buffer");
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }

    /// Read a little-endian `u16`.
    #[inline]
    pub fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a little-endian `f64`.
    #[inline]
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Copy exactly `dst.len()` bytes out.
    #[inline]
    pub fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(self.take(dst.len()));
    }

    /// Split off the next `n` bytes as a shared view.
    pub fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = self.slice(0..n);
        self.start += n;
        out
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.remaining())
    }
}

/// Append-only byte writer.
#[derive(Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Writer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Append a little-endian `u16`.
    #[inline]
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    #[inline]
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    #[inline]
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    #[inline]
    pub fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    #[inline]
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// The bytes written so far (e.g. to checksum a partially built
    /// buffer before appending the checksum itself).
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Finish writing, producing shareable storage.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Finish writing, taking the backing vector without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

/// Longest legal LEB128 encoding of a `u64`: ⌈64 / 7⌉ bytes.
pub const MAX_UVARINT_LEN: usize = 10;

/// Append `v` as an unsigned LEB128 varint: 7 value bits per byte, low
/// group first, high bit set on every byte except the last. Values below
/// 128 cost one byte, which is what makes varints the right coding for the
/// wire protocol's counts and string lengths (see `WIRE.md`).
#[inline]
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decode an unsigned LEB128 varint from `bytes` starting at `*at`,
/// advancing `*at` past it. Returns `None` on truncated input or on an
/// encoding longer than [`MAX_UVARINT_LEN`] / overflowing 64 bits —
/// malformed network input must surface as a typed decode error, never a
/// panic or a silently wrapped value.
#[inline]
pub fn get_uvarint(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let &byte = bytes.get(*at)?;
        *at += 1;
        let group = u64::from(byte & 0x7f);
        // The 10th byte may only carry the single remaining bit (64 = 9*7 + 1).
        if shift == 63 && group > 1 {
            return None;
        }
        value |= group << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encoded length of `v` as an unsigned LEB128 varint, in bytes.
#[inline]
pub fn uvarint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 1);
        w.put_f64_le(0.25);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 8 + 8 + 3);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), 0.25);
        let mut buf = [0u8; 3];
        r.copy_to_slice(&mut buf);
        assert_eq!(&buf, b"abc");
        assert!(r.is_empty());
    }

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(b.remaining(), 5); // original untouched
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(head.as_slice(), &[9, 8]);
        assert_eq!(b.as_slice(), &[7, 6]);
    }

    #[test]
    fn equality_ignores_cursor_origin() {
        let a = Bytes::from(vec![0, 1, 2]);
        let b = Bytes::from(vec![9, 0, 1, 2]).slice(1..4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn u16_roundtrip() {
        let mut w = BytesMut::default();
        w.put_u16_le(0xBEEF);
        let mut r = w.freeze();
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert!(r.is_empty());
    }

    #[test]
    fn uvarint_known_encodings() {
        // The WIRE.md reference table: these exact bytes are normative.
        for (value, bytes) in [
            (0u64, &[0x00][..]),
            (1, &[0x01]),
            (127, &[0x7f]),
            (128, &[0x80, 0x01]),
            (300, &[0xac, 0x02]),
            (16_384, &[0x80, 0x80, 0x01]),
            (
                u64::MAX,
                &[0xff; 9].iter().copied().chain([0x01]).collect::<Vec<_>>()[..],
            ),
        ] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, value);
            assert_eq!(buf, bytes, "encoding of {value}");
            assert_eq!(uvarint_len(value), bytes.len(), "length of {value}");
            let mut at = 0;
            assert_eq!(get_uvarint(&buf, &mut at), Some(value));
            assert_eq!(at, buf.len());
        }
    }

    #[test]
    fn uvarint_roundtrips_across_magnitudes() {
        let mut buf = Vec::new();
        let values: Vec<u64> = (0..64).map(|s| (1u64 << s).wrapping_sub(1)).collect();
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut at = 0;
        for &v in &values {
            assert_eq!(get_uvarint(&buf, &mut at), Some(v));
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        // Truncated: continuation bit set, then nothing.
        let mut at = 0;
        assert_eq!(get_uvarint(&[0x80], &mut at), None);
        // Empty input.
        let mut at = 0;
        assert_eq!(get_uvarint(&[], &mut at), None);
        // 11 bytes of continuation: longer than any legal u64 encoding.
        let mut at = 0;
        assert_eq!(get_uvarint(&[0x80; 11], &mut at), None);
        // 10th byte carries more than the one remaining bit (2^64 exactly).
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut at = 0;
        assert_eq!(get_uvarint(&overflow, &mut at), None);
    }
}
