//! Approximate heap-size accounting.
//!
//! Table VII of the paper compares the resident memory footprint of each
//! trained model. Rust has no reflective heap profiler in-process, so models
//! implement [`HeapSize`] with explicit accounting: owned containers sum the
//! sizes of their elements plus per-entry bookkeeping. The estimates are
//! intentionally conservative and, most importantly, *consistent across
//! models*, which is all the comparison needs.

/// Approximate number of heap bytes owned by a value (excluding the inline
/// `size_of::<Self>()` bytes of the value itself).
pub trait HeapSize {
    /// Estimated owned heap bytes.
    fn heap_size_bytes(&self) -> usize;
}

/// Per-entry overhead charged for hash-table entries (control bytes, load
/// factor slack). A SwissTable-style map stores ~1.14×(K,V) plus 1 control
/// byte per slot; 16 bytes is a round, defensible charge.
pub const HASH_ENTRY_OVERHEAD: usize = 16;

impl<T> HeapSize for Vec<T> {
    fn heap_size_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl<T> HeapSize for Box<[T]> {
    fn heap_size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl HeapSize for String {
    fn heap_size_bytes(&self) -> usize {
        self.capacity()
    }
}

impl HeapSize for Box<str> {
    fn heap_size_bytes(&self) -> usize {
        self.len()
    }
}

impl<K, V, S> HeapSize for std::collections::HashMap<K, V, S> {
    fn heap_size_bytes(&self) -> usize {
        self.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + HASH_ENTRY_OVERHEAD)
    }
}

impl<T, S> HeapSize for std::collections::HashSet<T, S> {
    fn heap_size_bytes(&self) -> usize {
        self.len() * (std::mem::size_of::<T>() + HASH_ENTRY_OVERHEAD)
    }
}

/// Heap bytes of a map whose values themselves own heap memory.
pub fn map_deep_heap_size<K, V: HeapSize, S>(map: &std::collections::HashMap<K, V, S>) -> usize {
    let shallow =
        map.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + HASH_ENTRY_OVERHEAD);
    let deep: usize = map.values().map(HeapSize::heap_size_bytes).sum();
    shallow + deep
}

/// Render a byte count the way Table VII does (megabytes, one decimal).
pub fn format_megabytes(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_accounts_capacity() {
        let v: Vec<u64> = Vec::with_capacity(100);
        assert_eq!(v.heap_size_bytes(), 800);
    }

    #[test]
    fn boxed_slice_accounts_len() {
        let b: Box<[u32]> = vec![1, 2, 3].into_boxed_slice();
        assert_eq!(b.heap_size_bytes(), 12);
    }

    #[test]
    fn string_accounts_capacity() {
        let mut s = String::with_capacity(32);
        s.push('x');
        assert_eq!(s.heap_size_bytes(), 32);
    }

    #[test]
    fn map_shallow_and_deep() {
        let mut m: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        m.insert(1, Vec::with_capacity(10));
        m.insert(2, Vec::with_capacity(20));
        let shallow = m.heap_size_bytes();
        let deep = map_deep_heap_size(&m);
        assert!(deep >= shallow + 30 * 4);
    }

    #[test]
    fn megabyte_formatting() {
        assert_eq!(format_megabytes(0), "0.0");
        assert_eq!(format_megabytes(1024 * 1024), "1.0");
        assert_eq!(format_megabytes(1024 * 1024 * 3 / 2), "1.5");
    }
}
