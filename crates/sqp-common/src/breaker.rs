//! The shared Closed/Open/HalfOpen circuit breaker and capped-exponential
//! retry backoff.
//!
//! Two independent resilience layers run the *same* failure-containment
//! state machine: the supervised retrain loop (`sqp-store::Supervisor`
//! trips to serve-last-good when retraining keeps failing) and the remote
//! serving client (`sqp-net::RemoteEngine` trips a flapping endpoint out
//! of its failover rotation). This module is that state machine, extracted
//! once so a third copy never grows:
//!
//! * **Closed** — normal operation; consecutive failures are counted.
//! * **Open** — tripped after `threshold` consecutive failures. Admission
//!   is refused until the cooldown elapses; the protected resource rests.
//! * **HalfOpen** — cooldown elapsed: exactly **one** caller is admitted
//!   as a probe (single-flight). Probe success closes the breaker; probe
//!   failure re-trips it for another cooldown, regardless of the
//!   threshold.
//!
//! Time enters only as caller-supplied `now_millis` values (from the
//! [`Clock`](crate::clock::Clock) seam), so cooldown-heavy scenarios test
//! in microseconds on a virtual clock. The companion [`Backoff`] produces
//! the capped-exponential (optionally jittered, deterministically seeded)
//! wait schedule retry loops sleep between attempts.

use crate::rng::{Rng, StdRng};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Circuit-breaker position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Tripped: admission is refused until the cooldown elapses. The
    /// protected resource keeps whatever last-good behavior it has.
    Open,
    /// Cooldown elapsed: one single-flight probe is in flight (or about to
    /// be) — success closes the breaker, failure re-trips it.
    HalfOpen,
}

/// Trip/cooldown parameters of a [`Breaker`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open (min 1). A failed
    /// half-open probe re-trips immediately regardless of this threshold.
    pub threshold: u32,
    /// How long a tripped breaker refuses admission before allowing one
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// What [`Breaker::admit`] decided for one caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The breaker is closed; proceed normally.
    Allowed,
    /// The breaker was open, the cooldown has elapsed, and *this* caller
    /// holds the single half-open probe slot. The caller **must** resolve
    /// the probe with [`record_success`](Breaker::record_success),
    /// [`record_failure`](Breaker::record_failure), or — when the guarded
    /// work turns out to be a no-op — [`cancel_probe`](Breaker::cancel_probe).
    Probe,
    /// Admission refused: the breaker is open (cooldown still running) or
    /// another caller already holds the half-open probe slot.
    Refused {
        /// Milliseconds until the cooldown elapses (0 while a concurrent
        /// probe is in flight).
        remaining_millis: u64,
    },
}

/// Counters and position of one breaker, snapshotted by [`Breaker::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerStats {
    /// Current position.
    pub state: BreakerState,
    /// Consecutive failures recorded since the last success.
    pub consecutive_failures: u32,
    /// Times the breaker tripped open (including half-open re-trips).
    pub trips: u64,
    /// Times a half-open probe closed the breaker again.
    pub recoveries: u64,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    open_until_millis: u64,
    probe_in_flight: bool,
    consecutive_failures: u32,
    trips: u64,
    recoveries: u64,
}

/// A thread-safe Closed/Open/HalfOpen circuit breaker with single-flight
/// half-open probing.
///
/// # Examples
///
/// ```
/// use sqp_common::breaker::{Admission, Breaker, BreakerConfig, BreakerState};
/// use std::time::Duration;
///
/// let breaker = Breaker::new(BreakerConfig {
///     threshold: 2,
///     cooldown: Duration::from_millis(100),
/// });
/// assert_eq!(breaker.admit(0), Admission::Allowed);
/// breaker.record_failure(0);
/// breaker.record_failure(1); // second consecutive failure: trips open
/// assert_eq!(breaker.state(), BreakerState::Open);
/// assert!(matches!(breaker.admit(50), Admission::Refused { remaining_millis: 51 }));
/// // Cooldown elapsed: exactly one probe is admitted.
/// assert_eq!(breaker.admit(101), Admission::Probe);
/// assert!(matches!(breaker.admit(101), Admission::Refused { .. }));
/// breaker.record_success();
/// assert_eq!(breaker.state(), BreakerState::Closed);
/// assert_eq!(breaker.stats().recoveries, 1);
/// ```
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl Breaker {
    /// A closed breaker with `cfg`'s trip threshold and cooldown.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                open_until_millis: 0,
                probe_in_flight: false,
                consecutive_failures: 0,
                trips: 0,
                recoveries: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Poison recovery: every mutation is a handful of scalar stores
        // that leave `Inner` valid at any interleaving point, so a panic
        // elsewhere while holding the lock cannot corrupt it.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The breaker's configuration.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Decide whether a caller may proceed at `now_millis` (from the
    /// [`Clock`](crate::clock::Clock) seam).
    pub fn admit(&self, now_millis: u64) -> Admission {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => Admission::Allowed,
            BreakerState::Open if now_millis < inner.open_until_millis => Admission::Refused {
                remaining_millis: inner.open_until_millis - now_millis,
            },
            BreakerState::Open => {
                inner.state = BreakerState::HalfOpen;
                inner.probe_in_flight = true;
                Admission::Probe
            }
            BreakerState::HalfOpen if inner.probe_in_flight => Admission::Refused {
                remaining_millis: 0,
            },
            BreakerState::HalfOpen => {
                inner.probe_in_flight = true;
                Admission::Probe
            }
        }
    }

    /// Record a success: reset the failure streak and close the breaker
    /// (counting a recovery when it was not already closed).
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.probe_in_flight = false;
        inner.consecutive_failures = 0;
        if inner.state != BreakerState::Closed {
            inner.recoveries += 1;
            inner.state = BreakerState::Closed;
        }
    }

    /// Record a failure at `now_millis`. Trips the breaker open — starting
    /// a fresh cooldown — when the consecutive-failure threshold is
    /// reached, or immediately on any half-open probe failure. Returns
    /// `true` when this call tripped the breaker.
    pub fn record_failure(&self, now_millis: u64) -> bool {
        let mut inner = self.lock();
        let probe_failed = inner.state == BreakerState::HalfOpen;
        inner.probe_in_flight = false;
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        if probe_failed || inner.consecutive_failures >= self.cfg.threshold.max(1) {
            inner.state = BreakerState::Open;
            inner.open_until_millis =
                now_millis.saturating_add(self.cfg.cooldown.as_millis() as u64);
            inner.trips += 1;
            true
        } else {
            false
        }
    }

    /// Release a held [`Admission::Probe`] slot without resolving it —
    /// for callers whose admitted work turned out to be a no-op (e.g. an
    /// empty retrain window). The breaker stays half-open; the next
    /// admission becomes the probe instead. Harmless to call when no
    /// probe is held.
    pub fn cancel_probe(&self) {
        self.lock().probe_in_flight = false;
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Snapshot position and counters.
    pub fn stats(&self) -> BreakerStats {
        let inner = self.lock();
        BreakerStats {
            state: inner.state,
            consecutive_failures: inner.consecutive_failures,
            trips: inner.trips,
            recoveries: inner.recoveries,
        }
    }
}

/// Capped-exponential backoff schedule with optional deterministic jitter.
///
/// Each [`next_delay`](Backoff::next_delay) call returns the current delay
/// and doubles it (saturating at the cap). With a jitter fraction `j`, the
/// returned delay is scaled by a factor drawn uniformly from `[1 - j, 1]`
/// out of a seeded xoshiro256++ stream — deterministic for a given seed,
/// so retry storms decorrelate across clients without sacrificing
/// replayability.
///
/// # Examples
///
/// ```
/// use sqp_common::breaker::Backoff;
/// use std::time::Duration;
///
/// let mut plain = Backoff::new(Duration::from_millis(50), Duration::from_millis(150));
/// assert_eq!(plain.next_delay(), Duration::from_millis(50));
/// assert_eq!(plain.next_delay(), Duration::from_millis(100));
/// assert_eq!(plain.next_delay(), Duration::from_millis(150)); // capped
/// assert_eq!(plain.next_delay(), Duration::from_millis(150));
/// ```
#[derive(Debug)]
pub struct Backoff {
    next: Duration,
    cap: Duration,
    jitter: f64,
    rng: StdRng,
}

impl Backoff {
    /// A jitter-free schedule: `initial`, `2·initial`, … capped at `cap`.
    pub fn new(initial: Duration, cap: Duration) -> Self {
        Self::with_jitter(initial, cap, 0.0, 0)
    }

    /// A jittered schedule seeded by `seed`; `jitter` is clamped to
    /// `[0, 1]` and scales each delay by a uniform draw from
    /// `[1 - jitter, 1]`.
    pub fn with_jitter(initial: Duration, cap: Duration, jitter: f64, seed: u64) -> Self {
        Self {
            next: initial,
            cap,
            jitter: jitter.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The delay to sleep before the upcoming retry; advances the
    /// schedule.
    pub fn next_delay(&mut self) -> Duration {
        let base = self.next;
        self.next = std::cmp::min(self.next.saturating_mul(2), self.cap);
        if self.jitter <= 0.0 {
            return base;
        }
        let draw: f64 = self.rng.random();
        base.mul_f64(1.0 - self.jitter * draw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ms: u64) -> BreakerConfig {
        BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn trips_at_threshold_and_not_before() {
        let b = Breaker::new(cfg(3, 100));
        assert!(!b.record_failure(0));
        assert!(!b.record_failure(1));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record_failure(2));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().trips, 1);
        assert!(matches!(
            b.admit(50),
            Admission::Refused {
                remaining_millis: 52
            }
        ));
    }

    #[test]
    fn success_resets_the_streak() {
        let b = Breaker::new(cfg(2, 100));
        b.record_failure(0);
        b.record_success();
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cooldown_probe_is_single_flight() {
        let b = Breaker::new(cfg(1, 100));
        b.record_failure(0);
        assert!(matches!(b.admit(99), Admission::Refused { .. }));
        assert_eq!(b.admit(100), Admission::Probe);
        // The slot is held: everyone else is refused until it resolves.
        assert!(matches!(
            b.admit(100),
            Admission::Refused {
                remaining_millis: 0
            }
        ));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let s = b.stats();
        assert_eq!((s.trips, s.recoveries), (1, 1));
    }

    #[test]
    fn failed_probe_retrips_regardless_of_threshold() {
        let b = Breaker::new(cfg(10, 100));
        for t in 0..10 {
            b.record_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(200), Admission::Probe);
        assert!(b.record_failure(200), "one probe failure re-trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().trips, 2);
        assert!(matches!(
            b.admit(250),
            Admission::Refused {
                remaining_millis: 50
            }
        ));
    }

    #[test]
    fn cancelled_probe_frees_the_slot() {
        let b = Breaker::new(cfg(1, 10));
        b.record_failure(0);
        assert_eq!(b.admit(20), Admission::Probe);
        b.cancel_probe();
        // The state is still HalfOpen, but the next caller gets the probe.
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(20), Admission::Probe);
        // cancel_probe with no probe held is a no-op.
        let open = Breaker::new(cfg(1, 1000));
        open.record_failure(0);
        open.cancel_probe();
        assert_eq!(open.state(), BreakerState::Open);
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let take = |seed| {
            let mut b = Backoff::with_jitter(
                Duration::from_millis(40),
                Duration::from_millis(500),
                0.5,
                seed,
            );
            (0..6).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(take(7), take(7), "same seed, same schedule");
        assert_ne!(take(7), take(8), "different seeds decorrelate");
        let mut b = Backoff::with_jitter(
            Duration::from_millis(40),
            Duration::from_millis(500),
            0.5,
            7,
        );
        let mut raw = Duration::from_millis(40);
        for _ in 0..8 {
            let d = b.next_delay();
            assert!(
                d <= raw && d >= raw.mul_f64(0.5),
                "{d:?} outside [{raw:?}/2, {raw:?}]"
            );
            raw = std::cmp::min(raw * 2, Duration::from_millis(500));
        }
    }
}
