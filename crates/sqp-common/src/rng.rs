//! Seedable pseudo-random number generation.
//!
//! The workspace builds in hermetic environments with no crates.io access, so
//! instead of the `rand` crate this module provides the small slice of it the
//! simulator and tests actually use: a fast, high-quality, *seedable* PRNG
//! (`xoshiro256++`) behind a [`Rng`] trait with `random`, `random_range` and
//! `random_bool`. Streams are deterministic per seed and stable across
//! platforms and releases — experiment corpora must be bit-reproducible.

/// Uniform random generation over a handful of primitive types.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of a primitive type (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    #[inline]
    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform integer in a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    #[inline]
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.random::<f64>() < p
    }
}

/// Types [`Rng::random`] can produce.
pub trait Sample {
    /// Draw one uniform value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for f64 {
    /// 53 uniform mantissa bits → `[0, 1)`.
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::random_range`] can sample.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw one uniform element.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce_u64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Map a uniform `u64` onto `0..span` with negligible bias (multiply-shift;
/// span is tiny relative to 2^64 everywhere in this workspace).
#[inline]
fn reduce_u64(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
///
/// Not cryptographic — it drives synthetic-log generation and randomized
/// tests, where speed and reproducibility are what matter.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Deterministically expand a 64-bit seed into the full state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            // SplitMix64.
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.random_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.random_range(5u32..=9);
            assert!((5..=9).contains(&b));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.random_range(4u64..=4), 4);
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..50_000).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(3u32..3);
    }
}
