//! Per-query training statistics for the unpredictability analysis
//! (the paper's Table VI).
//!
//! Table VI lists "the main reasons for which a test query q cannot be
//! predicted given user context s" — here `q` is the *current* query (the
//! last query of the context) and "predicted" means the model can produce
//! any recommendation list at all:
//!
//! * (1) `q` never occurs in the (reduced) training data — kills every model;
//! * (2) `q` occurs only in training sessions of length one — it co-occurs
//!   with nothing and follows/precedes nothing;
//! * (3) `q` only appears at the **last** position of training sessions — it
//!   is never followed by anything, so Adjacency/VMM/MVMM/N-gram have no
//!   continuation evidence, while Co-occurrence still works;
//! * (4) the whole context is not a trained N-gram state (N-gram only; a
//!   property of the context, classified by the evaluator).

use crate::aggregate::Aggregated;
use sqp_common::QueryId;

/// Why a model cannot produce a prediction (Table VI).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnpredictableReason {
    /// (1) the query is new — it never occurs in the (reduced) training data.
    NewQuery,
    /// (2) the query occurs only in training sessions of length one.
    OnlySingletonSessions,
    /// (3) the query only appears at the last position of training sessions.
    OnlyLastPosition,
    /// (4) the user context is not a trained N-gram state (N-gram only).
    ContextNotTrained,
}

impl UnpredictableReason {
    /// Table VI row label.
    pub fn label(self) -> &'static str {
        match self {
            UnpredictableReason::NewQuery => "(1) q is a new query",
            UnpredictableReason::OnlySingletonSessions => {
                "(2) q only appears in training sessions of length one"
            }
            UnpredictableReason::OnlyLastPosition => {
                "(3) q only appears at the last position of training sessions"
            }
            UnpredictableReason::ContextNotTrained => {
                "(4) user context s is not a trained N-gram state"
            }
        }
    }

    /// All reason codes, in Table VI order.
    pub const ALL: [UnpredictableReason; 4] = [
        UnpredictableReason::NewQuery,
        UnpredictableReason::OnlySingletonSessions,
        UnpredictableReason::OnlyLastPosition,
        UnpredictableReason::ContextNotTrained,
    ];
}

/// Occurrence statistics for every query in the (reduced) training corpus.
#[derive(Clone, Debug)]
pub struct QueryTrainingIndex {
    /// Total weighted occurrences per query id.
    total: Vec<u64>,
    /// Occurrences inside sessions of length ≥ 2.
    in_multi: Vec<u64>,
    /// Occurrences at a non-last position of a length ≥ 2 session, i.e. the
    /// query is observed being *followed* by something.
    followed: Vec<u64>,
    /// Occurrences at positions ≥ 1, i.e. the query is observed as a
    /// *successor* (it can be the target of a recommendation).
    as_successor: Vec<u64>,
}

impl QueryTrainingIndex {
    /// Build over the (reduced) training corpus. `n_queries` must cover every
    /// id interned at build time; later (test-only) ids are reported as new.
    pub fn build(train: &Aggregated, n_queries: usize) -> Self {
        let mut idx = QueryTrainingIndex {
            total: vec![0; n_queries],
            in_multi: vec![0; n_queries],
            followed: vec![0; n_queries],
            as_successor: vec![0; n_queries],
        };
        for (s, f) in &train.sessions {
            for (pos, q) in s.iter().enumerate() {
                let i = q.index();
                idx.total[i] += f;
                if s.len() >= 2 {
                    idx.in_multi[i] += f;
                    if pos + 1 < s.len() {
                        idx.followed[i] += f;
                    }
                    if pos >= 1 {
                        idx.as_successor[i] += f;
                    }
                }
            }
        }
        idx
    }

    /// Total training occurrences of `q` (0 when unseen or out of range).
    pub fn occurrences(&self, q: QueryId) -> u64 {
        self.total.get(q.index()).copied().unwrap_or(0)
    }

    /// Occurrences of `q` in multi-query sessions.
    pub fn in_multi_sessions(&self, q: QueryId) -> u64 {
        self.in_multi.get(q.index()).copied().unwrap_or(0)
    }

    /// Occurrences where `q` is followed by another query.
    pub fn followed_count(&self, q: QueryId) -> u64 {
        self.followed.get(q.index()).copied().unwrap_or(0)
    }

    /// Occurrences of `q` as a successor (position ≥ 1).
    pub fn successor_count(&self, q: QueryId) -> u64 {
        self.as_successor.get(q.index()).copied().unwrap_or(0)
    }

    /// Structural reason no session-ordered model (Adjacency, VMM, MVMM,
    /// N-gram) can predict anything when the current query is `q`, or `None`
    /// when prediction is possible in principle. Reasons are checked in
    /// Table VI order (1) → (3).
    pub fn classify(&self, q: QueryId) -> Option<UnpredictableReason> {
        let i = q.index();
        if i >= self.total.len() || self.total[i] == 0 {
            return Some(UnpredictableReason::NewQuery);
        }
        if self.in_multi[i] == 0 {
            return Some(UnpredictableReason::OnlySingletonSessions);
        }
        if self.followed[i] == 0 {
            return Some(UnpredictableReason::OnlyLastPosition);
        }
        None
    }

    /// Like [`classify`](Self::classify) but for Co-occurrence, which ignores
    /// order: only reasons (1) and (2) apply.
    pub fn classify_cooccurrence(&self, q: QueryId) -> Option<UnpredictableReason> {
        let i = q.index();
        if i >= self.total.len() || self.total[i] == 0 {
            return Some(UnpredictableReason::NewQuery);
        }
        if self.in_multi[i] == 0 {
            return Some(UnpredictableReason::OnlySingletonSessions);
        }
        None
    }

    /// Known query universe size at build time.
    pub fn n_queries(&self) -> usize {
        self.total.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregated;
    use sqp_common::{seq, QueryId};

    fn corpus() -> Aggregated {
        Aggregated::from_weighted(vec![
            (seq(&[0, 1, 2]), 5), // 0 leads, 1 mid, 2 last
            (seq(&[3]), 7),       // singleton only
            (seq(&[4, 2]), 2),    // 4 leads, 2 last again
        ])
    }

    #[test]
    fn occurrence_accounting() {
        let idx = QueryTrainingIndex::build(&corpus(), 6);
        assert_eq!(idx.occurrences(QueryId(0)), 5);
        assert_eq!(idx.occurrences(QueryId(2)), 7);
        assert_eq!(idx.occurrences(QueryId(3)), 7);
        assert_eq!(idx.occurrences(QueryId(5)), 0);
        assert_eq!(idx.n_queries(), 6);
    }

    #[test]
    fn followed_and_successor_counts() {
        let idx = QueryTrainingIndex::build(&corpus(), 6);
        assert_eq!(idx.followed_count(QueryId(0)), 5);
        assert_eq!(idx.followed_count(QueryId(1)), 5);
        assert_eq!(idx.followed_count(QueryId(2)), 0); // always last
        assert_eq!(idx.successor_count(QueryId(2)), 7);
        assert_eq!(idx.successor_count(QueryId(0)), 0);
        assert_eq!(idx.in_multi_sessions(QueryId(3)), 0);
    }

    #[test]
    fn classify_reasons_in_order() {
        let idx = QueryTrainingIndex::build(&corpus(), 6);
        use UnpredictableReason::*;
        // 5 never occurs; 9 out of range.
        assert_eq!(idx.classify(QueryId(5)), Some(NewQuery));
        assert_eq!(idx.classify(QueryId(9)), Some(NewQuery));
        // 3 only in a singleton session.
        assert_eq!(idx.classify(QueryId(3)), Some(OnlySingletonSessions));
        // 2 appears only at last positions: never followed.
        assert_eq!(idx.classify(QueryId(2)), Some(OnlyLastPosition));
        // 0, 1, 4 are followed by something: predictable.
        assert_eq!(idx.classify(QueryId(0)), None);
        assert_eq!(idx.classify(QueryId(1)), None);
        assert_eq!(idx.classify(QueryId(4)), None);
    }

    #[test]
    fn cooccurrence_ignores_position() {
        let idx = QueryTrainingIndex::build(&corpus(), 6);
        use UnpredictableReason::*;
        // 2 is fine for co-occurrence (it co-occurs with 0, 1, 4)…
        assert_eq!(idx.classify_cooccurrence(QueryId(2)), None);
        // …but singleton-only and unseen queries still fail.
        assert_eq!(
            idx.classify_cooccurrence(QueryId(3)),
            Some(OnlySingletonSessions)
        );
        assert_eq!(idx.classify_cooccurrence(QueryId(5)), Some(NewQuery));
    }

    #[test]
    fn reason_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            UnpredictableReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
