//! Session segmentation — the paper's §V-A.2.
//!
//! *"Both machine IDs and timestamps were used as cues … we adopt the
//! 30-minute rule convention by cutting at time-points where more than 30
//! minutes have passed between an issued query and URL click."*
//!
//! Records are grouped per machine, ordered by time, and cut whenever the gap
//! between a query and the previous record's **last activity** (query or
//! final click) exceeds the cutoff.

use sqp_common::FxHashMap;
use sqp_logsim::RawLogRecord;

/// The conventional 30-minute cutoff (White et al., Jansen et al.).
pub const DEFAULT_CUTOFF_SECS: u64 = 30 * 60;

/// A segmented session: consecutive queries of one machine within the cutoff.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextSession {
    /// Machine that issued the session.
    pub machine_id: u64,
    /// Timestamp of the first query.
    pub start_time: u64,
    /// Query texts in issue order.
    pub queries: Vec<String>,
}

impl TextSession {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the session holds no queries (never produced by [`segment`]).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Machine count below which parallel segmentation is not worth the thread
/// startup.
const PARALLEL_MIN_MACHINES: usize = 256;

/// Segment raw records into sessions with the given cutoff.
///
/// Output is deterministic: sessions are ordered by machine id, then start
/// time. Every record lands in exactly one session; order within a machine is
/// preserved.
pub fn segment(records: &[RawLogRecord], cutoff_secs: u64) -> Vec<TextSession> {
    segment_with_parallelism(records, cutoff_secs, false)
}

/// [`segment`], optionally sharding machines across threads. Machines are
/// independent and output order is by machine id either way, so the result
/// is identical to the sequential one — `parallel` is purely a throughput
/// knob for the per-machine sort + scan that dominates segmentation.
pub fn segment_with_parallelism(
    records: &[RawLogRecord],
    cutoff_secs: u64,
    parallel: bool,
) -> Vec<TextSession> {
    let mut by_machine: FxHashMap<u64, Vec<&RawLogRecord>> = FxHashMap::default();
    for r in records {
        by_machine.entry(r.machine_id).or_default().push(r);
    }

    let mut groups: Vec<(u64, Vec<&RawLogRecord>)> = by_machine.into_iter().collect();
    groups.sort_unstable_by_key(|(m, _)| *m);

    let threads = if parallel && groups.len() >= PARALLEL_MIN_MACHINES {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(groups.len())
    } else {
        1
    };

    if threads <= 1 {
        let mut sessions = Vec::new();
        for (m, recs) in groups {
            segment_machine(m, recs, cutoff_secs, &mut sessions);
        }
        return sessions;
    }

    let chunk = groups.len().div_ceil(threads);
    let shards: Vec<Vec<TextSession>> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .chunks_mut(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let mut sessions = Vec::new();
                    for (m, recs) in shard {
                        segment_machine(*m, std::mem::take(recs), cutoff_secs, &mut sessions);
                    }
                    sessions
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("segmentation shard panicked"))
            .collect()
    });
    shards.into_iter().flatten().collect()
}

/// Sort one machine's records by time and cut at over-cutoff gaps.
fn segment_machine(
    machine_id: u64,
    mut recs: Vec<&RawLogRecord>,
    cutoff_secs: u64,
    sessions: &mut Vec<TextSession>,
) {
    recs.sort_by_key(|r| r.timestamp);

    let mut current: Option<TextSession> = None;
    let mut last_activity = 0u64;
    for r in recs {
        let split = match &current {
            None => true,
            Some(_) => r.timestamp.saturating_sub(last_activity) > cutoff_secs,
        };
        if split {
            if let Some(s) = current.take() {
                sessions.push(s);
            }
            current = Some(TextSession {
                machine_id,
                start_time: r.timestamp,
                queries: Vec::new(),
            });
        }
        current.as_mut().unwrap().queries.push(r.query.clone());
        last_activity = last_activity.max(r.last_activity());
    }
    if let Some(s) = current.take() {
        sessions.push(s);
    }
}

/// Segment with the conventional 30-minute rule.
pub fn segment_default(records: &[RawLogRecord]) -> Vec<TextSession> {
    segment(records, DEFAULT_CUTOFF_SECS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_logsim::Click;

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    #[test]
    fn splits_on_large_gap() {
        let records = vec![
            rec(1, 0, "a"),
            rec(1, 100, "b"),
            rec(1, 100 + 30 * 60 + 1, "c"), // gap just over cutoff
        ];
        let sessions = segment_default(&records);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].queries, vec!["a", "b"]);
        assert_eq!(sessions[1].queries, vec!["c"]);
    }

    #[test]
    fn gap_exactly_cutoff_does_not_split() {
        // Paper: "more than 30 minutes" — a gap of exactly 30:00 stays.
        let records = vec![rec(1, 0, "a"), rec(1, 30 * 60, "b")];
        let sessions = segment_default(&records);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].queries, vec!["a", "b"]);
    }

    #[test]
    fn clicks_extend_the_session_window() {
        // Query at t=0 with a click at t=25min; next query at t=50min.
        // Gap from last activity (25min) is 25min < cutoff ⇒ same session.
        let records = vec![
            RawLogRecord {
                machine_id: 1,
                timestamp: 0,
                query: "a".into(),
                clicks: vec![Click {
                    url: "u".into(),
                    timestamp: 25 * 60,
                }],
            },
            rec(1, 50 * 60, "b"),
        ];
        let sessions = segment_default(&records);
        assert_eq!(sessions.len(), 1);

        // Without the click the same pair splits.
        let no_click = vec![rec(1, 0, "a"), rec(1, 50 * 60, "b")];
        assert_eq!(segment_default(&no_click).len(), 2);
    }

    #[test]
    fn machines_are_independent() {
        let records = vec![
            rec(2, 0, "m2-a"),
            rec(1, 10, "m1-a"),
            rec(2, 20, "m2-b"),
            rec(1, 30, "m1-b"),
        ];
        let sessions = segment_default(&records);
        assert_eq!(sessions.len(), 2);
        // Deterministic machine order.
        assert_eq!(sessions[0].machine_id, 1);
        assert_eq!(sessions[0].queries, vec!["m1-a", "m1-b"]);
        assert_eq!(sessions[1].queries, vec!["m2-a", "m2-b"]);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let records = vec![rec(1, 100, "b"), rec(1, 0, "a")];
        let sessions = segment_default(&records);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].queries, vec!["a", "b"]);
        assert_eq!(sessions[0].start_time, 0);
    }

    #[test]
    fn empty_input() {
        assert!(segment_default(&[]).is_empty());
    }

    #[test]
    fn every_record_in_exactly_one_session() {
        let records: Vec<RawLogRecord> = (0..50)
            .map(|i| rec(i % 3, i * 700, &format!("q{i}")))
            .collect();
        let sessions = segment_default(&records);
        let total: usize = sessions.iter().map(|s| s.queries.len()).sum();
        assert_eq!(total, records.len());
    }

    #[test]
    fn custom_cutoff() {
        let records = vec![rec(1, 0, "a"), rec(1, 100, "b")];
        assert_eq!(segment(&records, 50).len(), 2);
        assert_eq!(segment(&records, 150).len(), 1);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use sqp_common::rng::{Rng, StdRng};

    #[test]
    fn partition_invariants() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(case);
            let cutoff = rng.random_range(500u64..2500);
            // Build per-machine monotone timelines.
            let mut clocks = std::collections::HashMap::new();
            let mut records = Vec::new();
            for i in 0..rng.random_range(1usize..80) {
                let m = rng.random_range(0u64..4);
                let gap = rng.random_range(0u64..4000);
                let t = clocks.entry(m).or_insert(0u64);
                *t += gap;
                records.push(RawLogRecord {
                    machine_id: m,
                    timestamp: *t,
                    query: format!("q{i}"),
                    clicks: vec![],
                });
            }
            let sessions = segment(&records, cutoff);

            // 1. Partition: total query count preserved.
            let total: usize = sessions.iter().map(|s| s.queries.len()).sum();
            assert_eq!(total, records.len(), "case {case}");

            // 2. No session is empty.
            for s in &sessions {
                assert!(!s.queries.is_empty(), "case {case}");
            }

            // 3. Within a machine, consecutive sessions start later and
            //    later.
            for m in 0u64..4 {
                let mine: Vec<&TextSession> =
                    sessions.iter().filter(|s| s.machine_id == m).collect();
                for w in mine.windows(2) {
                    assert!(w[1].start_time > w[0].start_time, "case {case}");
                }
            }
        }
    }

    #[test]
    fn parallel_segmentation_is_identical() {
        let mut rng = StdRng::seed_from_u64(77);
        // Enough machines to cross the parallel threshold.
        let mut records = Vec::new();
        let mut clocks = std::collections::HashMap::new();
        for i in 0..20_000usize {
            let m = rng.random_range(0u64..600);
            let t = clocks.entry(m).or_insert(0u64);
            *t += rng.random_range(0u64..4000);
            records.push(RawLogRecord {
                machine_id: m,
                timestamp: *t,
                query: format!("q{i}"),
                clicks: vec![],
            });
        }
        let sequential = segment_with_parallelism(&records, 1800, false);
        let parallel = segment_with_parallelism(&records, 1800, true);
        assert_eq!(sequential, parallel);
    }
}
