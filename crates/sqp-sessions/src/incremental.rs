//! Incremental corpus maintenance for continuous retraining.
//!
//! A production deployment never retrains on "the" corpus — it retrains on
//! *recent* traffic. [`SlidingCorpus`] is the minimal structure that makes
//! the offline pipeline (§V-A) re-runnable continuously: raw log records
//! are appended as they arrive, the oldest records fall off once a capacity
//! is exceeded, and each retrain runs the ordinary
//! `segment → aggregate → reduce` pipeline over the current window. Keeping
//! the window in *raw record* form (rather than pre-segmented sessions) is
//! deliberate: the 30-minute rule can merge a user's new records into their
//! most recent session, so segmentation is only correct when re-run over
//! the full window.

use sqp_logsim::RawLogRecord;
use std::collections::VecDeque;

/// A bounded, append-only window over recent raw log records.
///
/// Records are kept in arrival order; [`append`](SlidingCorpus::append)
/// drops the oldest records once the configured capacity is exceeded.
/// Capacity is counted in records, not sessions — the retrainer re-segments
/// anyway, and record count is the quantity that bounds memory.
///
/// # Examples
///
/// ```
/// use sqp_logsim::RawLogRecord;
/// use sqp_sessions::SlidingCorpus;
///
/// let rec = |ts, q: &str| RawLogRecord {
///     machine_id: 1, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let mut corpus = SlidingCorpus::new(2);
/// corpus.append([rec(100, "old"), rec(160, "mid"), rec(220, "new")]);
/// assert_eq!(corpus.len(), 2);          // capacity 2: "old" fell off
/// assert_eq!(corpus.dropped(), 1);
/// assert_eq!(corpus.records()[0].query, "mid");
/// ```
#[derive(Debug)]
pub struct SlidingCorpus {
    records: VecDeque<RawLogRecord>,
    capacity: usize,
    appended: u64,
    dropped: u64,
}

impl SlidingCorpus {
    /// An empty window holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            records: VecDeque::with_capacity(capacity.clamp(1, 1 << 20)),
            capacity: capacity.max(1),
            appended: 0,
            dropped: 0,
        }
    }

    /// A window seeded with an initial corpus (the records the serving
    /// model was trained on), trimmed to `capacity` if needed.
    pub fn with_seed(capacity: usize, seed: Vec<RawLogRecord>) -> Self {
        let mut corpus = Self::new(capacity);
        corpus.append(seed);
        corpus
    }

    /// Append records in arrival order, evicting the oldest past capacity.
    pub fn append<I: IntoIterator<Item = RawLogRecord>>(&mut self, records: I) {
        for rec in records {
            self.appended += 1;
            if self.records.len() == self.capacity {
                self.records.pop_front();
                self.dropped += 1;
            }
            self.records.push_back(rec);
        }
    }

    /// The current window as one contiguous slice, oldest record first —
    /// directly feedable to `segment` / `ModelSnapshot::from_raw_logs`.
    pub fn records(&mut self) -> &[RawLogRecord] {
        self.records.make_contiguous()
    }

    /// Records currently resident in the window.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records have been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The configured window capacity, in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever appended (including the seed).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Records evicted off the old end of the window so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    #[test]
    fn append_preserves_arrival_order() {
        let mut c = SlidingCorpus::new(10);
        c.append([rec(1, 100, "a"), rec(1, 160, "b"), rec(2, 90, "c")]);
        let queries: Vec<&str> = c.records().iter().map(|r| r.query.as_str()).collect();
        assert_eq!(queries, ["a", "b", "c"]);
        assert_eq!(c.len(), 3);
        assert_eq!((c.appended(), c.dropped()), (3, 0));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut c = SlidingCorpus::new(3);
        for i in 0..7u64 {
            c.append([rec(1, i * 60, &format!("q{i}"))]);
        }
        let queries: Vec<&str> = c.records().iter().map(|r| r.query.as_str()).collect();
        assert_eq!(queries, ["q4", "q5", "q6"]);
        assert_eq!((c.appended(), c.dropped()), (7, 4));
    }

    #[test]
    fn seed_is_trimmed_to_capacity() {
        let seed: Vec<_> = (0..5).map(|i| rec(1, i * 10, &format!("s{i}"))).collect();
        let mut c = SlidingCorpus::with_seed(2, seed);
        assert_eq!(c.len(), 2);
        assert_eq!(c.records()[0].query, "s3");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c = SlidingCorpus::new(0);
        c.append([rec(1, 0, "only")]);
        assert_eq!(c.capacity(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn empty_appends_and_empty_windows_are_safe() {
        let mut c = SlidingCorpus::new(4);
        c.append(std::iter::empty());
        assert!(c.is_empty());
        assert_eq!(c.records(), &[]);
        assert_eq!((c.appended(), c.dropped()), (0, 0));
        // Seeding with nothing is the same as starting empty.
        let mut seeded = SlidingCorpus::with_seed(4, Vec::new());
        assert!(seeded.is_empty());
        assert_eq!(seeded.records(), &[]);
    }

    #[test]
    fn batch_larger_than_capacity_keeps_only_its_tail() {
        let mut c = SlidingCorpus::new(2);
        // One append of 5 records into capacity 2: only the newest two
        // survive, and the drop accounting reflects the whole overflow.
        c.append((0..5u64).map(|i| rec(1, i * 60, &format!("q{i}"))));
        let queries: Vec<&str> = c.records().iter().map(|r| r.query.as_str()).collect();
        assert_eq!(queries, ["q3", "q4"]);
        assert_eq!((c.appended(), c.dropped()), (5, 3));
        // A follow-up append keeps rolling the same window.
        c.append([rec(1, 999, "q5")]);
        let queries: Vec<&str> = c.records().iter().map(|r| r.query.as_str()).collect();
        assert_eq!(queries, ["q4", "q5"]);
        assert_eq!(c.dropped(), 4);
    }

    #[test]
    fn eviction_respects_arrival_order_not_timestamps() {
        // Records can arrive out of timestamp order (multi-machine logs);
        // the window is a traffic window, so eviction is strictly FIFO by
        // arrival — the pipeline re-sorts per machine when segmenting.
        let mut c = SlidingCorpus::new(2);
        c.append([rec(1, 900, "late-ts-first"), rec(2, 100, "early-ts-second")]);
        c.append([rec(3, 500, "third")]);
        let queries: Vec<&str> = c.records().iter().map(|r| r.query.as_str()).collect();
        assert_eq!(queries, ["early-ts-second", "third"]);
    }

    #[test]
    fn window_feeds_the_pipeline() {
        let mut c = SlidingCorpus::new(100);
        for u in 0..6 {
            c.append([rec(u, 100, "garden"), rec(u, 170, "garden shed")]);
        }
        let sessions = crate::segment_default(c.records());
        assert_eq!(sessions.len(), 6);
        assert_eq!(sessions[0].queries, ["garden", "garden shed"]);
    }
}
