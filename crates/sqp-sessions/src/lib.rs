//! # sqp-sessions — search-log processing pipeline
//!
//! Implements §V-A of the paper: session segmentation with the 30-minute
//! rule, aggregation of identical sessions, frequency-based data reduction,
//! prefix-context extraction, test ground-truth construction, per-query
//! training indexes, corpus statistics, and the rule-based session-pattern
//! classifier behind Figure 1.
//!
//! ```
//! use sqp_sessions::pipeline::{process, PipelineConfig};
//!
//! let logs = sqp_logsim::generate(&sqp_logsim::SimConfig::small(2_000, 800, 3));
//! let processed = process(&logs, &PipelineConfig::default());
//! assert!(processed.train.aggregated.total_sessions() > 0);
//! assert!(!processed.ground_truth.is_empty());
//! ```

#![deny(missing_docs)]

pub mod aggregate;
pub mod contexts;
pub mod incremental;
pub mod index;
pub mod patterns;
pub mod pipeline;
pub mod reduce;
pub mod segment;
pub mod segment_ext;
pub mod stats;

pub use aggregate::{aggregate, Aggregated};
pub use contexts::{ContextTable, GroundTruth, GroundTruthEntry};
pub use incremental::SlidingCorpus;
pub use index::{QueryTrainingIndex, UnpredictableReason};
pub use pipeline::{process, EpochData, PipelineConfig, ProcessedLogs};
pub use reduce::{reduce, ReductionReport};
pub use segment::{
    segment, segment_default, segment_with_parallelism, TextSession, DEFAULT_CUTOFF_SECS,
};
pub use segment_ext::{queries_related, segment_with, SegmentStrategy};
pub use stats::{corpus_stats, CorpusStats};
