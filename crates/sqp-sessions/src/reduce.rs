//! Data reduction — the paper's §V-A.4.
//!
//! *"We observe a large number of aggregated sessions (40%) with frequency
//! less than or equal to 5. These are most likely rare (one-time) and/or
//! erroneous sessions, which can be safely discarded."* After reduction,
//! 60.48% of the paper's training data and 64.72% of its test data remained.

use crate::aggregate::Aggregated;

/// What reduction removed and kept, for the Figure 7 report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReductionReport {
    /// Distinct aggregated sessions kept.
    pub kept_unique: usize,
    /// Distinct aggregated sessions dropped.
    pub dropped_unique: usize,
    /// Session mass kept (sum of frequencies).
    pub kept_mass: u64,
    /// Session mass dropped.
    pub dropped_mass: u64,
}

impl ReductionReport {
    /// Fraction of session mass retained — the paper's "60.48% remained".
    pub fn retention(&self) -> f64 {
        let total = self.kept_mass + self.dropped_mass;
        if total == 0 {
            return 1.0;
        }
        self.kept_mass as f64 / total as f64
    }

    /// Fraction of *distinct* aggregated sessions dropped — the paper's
    /// "40% with frequency ≤ 5".
    pub fn dropped_unique_fraction(&self) -> f64 {
        let total = self.kept_unique + self.dropped_unique;
        if total == 0 {
            return 0.0;
        }
        self.dropped_unique as f64 / total as f64
    }
}

/// Drop aggregated sessions with frequency ≤ `threshold`.
///
/// Returns the reduced corpus and a report. `threshold = 0` keeps everything.
pub fn reduce(agg: &Aggregated, threshold: u64) -> (Aggregated, ReductionReport) {
    let mut kept = Vec::with_capacity(agg.sessions.len());
    let mut report = ReductionReport {
        kept_unique: 0,
        dropped_unique: 0,
        kept_mass: 0,
        dropped_mass: 0,
    };
    for (seq, freq) in &agg.sessions {
        if *freq > threshold {
            report.kept_unique += 1;
            report.kept_mass += freq;
            kept.push((seq.clone(), *freq));
        } else {
            report.dropped_unique += 1;
            report.dropped_mass += freq;
        }
    }
    // Input was sorted; filtering preserves the order.
    (Aggregated { sessions: kept }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    fn corpus() -> Aggregated {
        Aggregated::from_weighted(vec![
            (seq(&[0, 1]), 10),
            (seq(&[0, 2]), 6),
            (seq(&[1, 2]), 5),
            (seq(&[3]), 1),
        ])
    }

    #[test]
    fn drops_at_or_below_threshold() {
        let (reduced, report) = reduce(&corpus(), 5);
        assert_eq!(reduced.unique_sessions(), 2);
        assert_eq!(report.kept_unique, 2);
        assert_eq!(report.dropped_unique, 2);
        assert_eq!(report.kept_mass, 16);
        assert_eq!(report.dropped_mass, 6);
        assert!((report.retention() - 16.0 / 22.0).abs() < 1e-12);
        assert!((report.dropped_unique_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_zero_keeps_everything() {
        let (reduced, report) = reduce(&corpus(), 0);
        assert_eq!(reduced.unique_sessions(), 4);
        assert_eq!(report.dropped_mass, 0);
        assert_eq!(report.retention(), 1.0);
    }

    #[test]
    fn threshold_above_max_drops_everything() {
        let (reduced, report) = reduce(&corpus(), 100);
        assert_eq!(reduced.unique_sessions(), 0);
        assert_eq!(report.kept_mass, 0);
        assert_eq!(report.retention(), 0.0);
    }

    #[test]
    fn empty_corpus() {
        let (reduced, report) = reduce(&Aggregated::default(), 5);
        assert_eq!(reduced.unique_sessions(), 0);
        assert_eq!(report.retention(), 1.0);
        assert_eq!(report.dropped_unique_fraction(), 0.0);
    }

    #[test]
    fn order_preserved_after_reduction() {
        let (reduced, _) = reduce(&corpus(), 1);
        let freqs: Vec<u64> = reduced.sessions.iter().map(|(_, f)| *f).collect();
        assert_eq!(freqs, vec![10, 6, 5]);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use sqp_common::rng::{Rng, StdRng};
    use sqp_common::QueryId;

    #[test]
    fn mass_partition_and_monotonicity() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(case);
            // Dedup sequences to form a valid aggregate.
            let mut map = std::collections::HashMap::new();
            for _ in 0..rng.random_range(0usize..40) {
                let len = rng.random_range(1usize..4);
                let key: sqp_common::QuerySeq = (0..len)
                    .map(|_| QueryId(rng.random_range(0u32..8)))
                    .collect();
                *map.entry(key).or_insert(0u64) += rng.random_range(1u64..20);
            }
            let agg = Aggregated::from_weighted(map.into_iter().collect());
            let total = agg.total_sessions();
            let t1 = rng.random_range(0u64..10);
            let t2 = rng.random_range(0u64..10);

            let (ra, rep_a) = reduce(&agg, t1);
            assert_eq!(rep_a.kept_mass + rep_a.dropped_mass, total, "case {case}");
            assert_eq!(ra.total_sessions(), rep_a.kept_mass, "case {case}");

            // Monotonicity: a higher threshold never keeps more mass.
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let (_, rep_lo) = reduce(&agg, lo);
            let (_, rep_hi) = reduce(&agg, hi);
            assert!(rep_hi.kept_mass <= rep_lo.kept_mass, "case {case}");
            assert!(rep_hi.kept_unique <= rep_lo.kept_unique, "case {case}");
        }
    }
}
