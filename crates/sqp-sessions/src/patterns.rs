//! Rule-based session-pattern classifier — regenerates the paper's Figure 1.
//!
//! The paper had 30 human labelers classify 20,000 sessions into seven
//! pattern types. This module is the mechanical stand-in: transitions are
//! classified from query text (term structure, edit distance), with the
//! vocabulary's surface→topic map standing in for the labelers' world
//! knowledge (how else would anyone know "BAMC" means "Brooke Army Medical
//! Center"?). The generator's ground-truth labels let us *measure* this
//! classifier's agreement instead of assuming it.

use sqp_logsim::{PatternType, Vocabulary};

fn words(s: &str) -> Vec<&str> {
    s.split_whitespace().collect()
}

/// True when `b`'s word sequence strictly extends `a`'s (term prefix), e.g.
/// "o2" → "o2 mobile".
fn is_term_extension(a: &str, b: &str) -> bool {
    let (wa, wb) = (words(a), words(b));
    wb.len() > wa.len() && wb[..wa.len()] == wa[..]
}

/// Relaxed containment: every word of `a` appears in `b` (used for
/// generalizations like "washington mutual home loans" → "home loans").
fn is_word_subset(a: &str, b: &str) -> bool {
    let wb: std::collections::HashSet<&str> = words(b).into_iter().collect();
    let wa = words(a);
    !wa.is_empty() && wa.len() < words(b).len() + 1 && wa.iter().all(|w| wb.contains(w))
}

/// True when `a` and `b` look like sibling concepts: equal word counts with a
/// common prefix and a different final word ("smtp" vs "pop3" style siblings
/// in our tree always share their full parent path).
fn is_sibling_shape(a: &str, b: &str) -> bool {
    let (wa, wb) = (words(a), words(b));
    wa.len() == wb.len()
        && wa.len() >= 2
        && wa[..wa.len() - 1] == wb[..wb.len() - 1]
        && wa[wa.len() - 1] != wb[wb.len() - 1]
}

/// Classify a single transition `a ⇒ b`.
///
/// `vocab` supplies world knowledge (synonym/topic identity). Pass `None` to
/// classify from text alone, as an external user of the library would.
pub fn classify_transition(a: &str, b: &str, vocab: Option<&Vocabulary>) -> PatternType {
    if a == b {
        return PatternType::RepeatedQuery;
    }

    // World knowledge first: same topic, different surface = synonym swap.
    if let Some(v) = vocab {
        if let (Some(ta), Some(tb)) = (v.topic_of_surface(a), v.topic_of_surface(b)) {
            if ta == tb {
                return PatternType::SynonymSubstitution;
            }
            if v.parent(tb) == Some(ta) {
                return PatternType::Specialization;
            }
            if v.parent(ta) == Some(tb) {
                return PatternType::Generalization;
            }
            if v.parent(ta).is_some() && v.parent(ta) == v.parent(tb) {
                return PatternType::ParallelMovement;
            }
        }
        // Typo + fix: source is not a known surface but lands within a small
        // edit of a known one.
        if v.topic_of_surface(a).is_none()
            && v.topic_of_surface(b).is_some()
            && sqp_common::dist::levenshtein_str(a, b) <= 2
        {
            return PatternType::SpellingChange;
        }
    }

    // Text-only structure.
    if is_term_extension(a, b) {
        return PatternType::Specialization;
    }
    if is_term_extension(b, a) {
        return PatternType::Generalization;
    }
    if is_sibling_shape(a, b) {
        return PatternType::ParallelMovement;
    }
    if sqp_common::dist::levenshtein_str(a, b) <= 2 {
        return PatternType::SpellingChange;
    }
    if is_word_subset(b, a) {
        return PatternType::Generalization;
    }
    if is_word_subset(a, b) {
        return PatternType::Specialization;
    }
    PatternType::Other
}

/// Classify a session by its first transition (the convention shared with
/// [`sqp_logsim::GeneratedSession::dominant_label`]); `None` for single-query
/// sessions.
pub fn classify_session(queries: &[String], vocab: Option<&Vocabulary>) -> Option<PatternType> {
    if queries.len() < 2 {
        return None;
    }
    Some(classify_transition(&queries[0], &queries[1], vocab))
}

/// Distribution of session patterns over a corpus, in [`PatternType::ALL`]
/// order; single-query sessions are skipped (the paper's Figure 1 covers
/// multi-query sessions).
pub fn pattern_distribution<'a, I>(sessions: I, vocab: Option<&Vocabulary>) -> [u64; 7]
where
    I: IntoIterator<Item = &'a [String]>,
{
    let mut counts = [0u64; 7];
    for queries in sessions {
        if let Some(p) = classify_session(queries, vocab) {
            counts[p.index()] += 1;
        }
    }
    counts
}

/// Fraction of classified sessions that are order-sensitive (the paper's
/// 34.34%).
pub fn order_sensitive_fraction(counts: &[u64; 7]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let sensitive: u64 = PatternType::ALL
        .iter()
        .filter(|p| p.is_order_sensitive())
        .map(|p| counts[p.index()])
        .sum();
    sensitive as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(a: &str, b: &str) -> PatternType {
        classify_transition(a, b, None)
    }

    #[test]
    fn paper_table_one_examples() {
        // Table I of the paper, classified from text alone.
        assert_eq!(c("goggle", "google"), PatternType::SpellingChange);
        assert_eq!(
            c("washington mutual home loans", "home loans"),
            PatternType::Generalization
        );
        assert_eq!(c("o2", "o2 mobile"), PatternType::Specialization);
        assert_eq!(
            c("o2 mobile", "o2 mobile phones"),
            PatternType::Specialization
        );
        assert_eq!(c("myspace", "myspace"), PatternType::RepeatedQuery);
        assert_eq!(c("muzzle brake", "shared calenders"), PatternType::Other);
    }

    #[test]
    fn sibling_shape_is_parallel_movement() {
        assert_eq!(
            c("nokia n73 themes", "nokia n73 games"),
            PatternType::ParallelMovement
        );
    }

    #[test]
    fn single_word_unrelated_is_other() {
        assert_eq!(c("aim", "myspace"), PatternType::Other);
    }

    #[test]
    fn close_single_words_are_spelling() {
        assert_eq!(c("youtub", "youtube"), PatternType::SpellingChange);
    }

    #[test]
    fn word_subset_fallbacks() {
        // Not a strict prefix extension, but a word subset.
        assert_eq!(
            c("home loans", "washington home loans"),
            PatternType::Specialization
        );
    }

    #[test]
    fn session_classification_uses_first_transition() {
        let s = vec![
            "o2".to_string(),
            "o2 mobile".to_string(),
            "o2 mobile".to_string(),
        ];
        assert_eq!(
            classify_session(&s, None),
            Some(PatternType::Specialization)
        );
        assert_eq!(classify_session(&s[..1], None), None);
    }

    #[test]
    fn distribution_counts_multiquery_sessions_only() {
        let sessions: Vec<Vec<String>> = vec![
            vec!["a b".into(), "a b c".into()], // specialization
            vec!["x".into()],                   // skipped
            vec!["q".into(), "q".into()],       // repeated
        ];
        let slices: Vec<&[String]> = sessions.iter().map(|s| s.as_slice()).collect();
        let counts = pattern_distribution(slices, None);
        assert_eq!(counts[PatternType::Specialization.index()], 1);
        assert_eq!(counts[PatternType::RepeatedQuery.index()], 1);
        assert_eq!(counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn order_sensitive_fraction_math() {
        let mut counts = [0u64; 7];
        counts[PatternType::Specialization.index()] = 30;
        counts[PatternType::Other.index()] = 70;
        assert!((order_sensitive_fraction(&counts) - 0.3).abs() < 1e-12);
        assert_eq!(order_sensitive_fraction(&[0; 7]), 0.0);
    }

    #[test]
    fn classifier_agrees_with_generator_truth() {
        // The real validation: classify simulated sessions with world
        // knowledge and compare against generator labels.
        let logs = sqp_logsim::generate(&sqp_logsim::SimConfig::small(4_000, 100, 321));
        let v = &logs.truth.vocabulary;
        let mut agree = 0usize;
        let mut total = 0usize;
        for s in &logs.truth.train_sessions {
            if let (Some(truth), Some(got)) =
                (s.dominant_label(), classify_session(&s.queries, Some(v)))
            {
                total += 1;
                if truth == got {
                    agree += 1;
                }
            }
        }
        assert!(total > 1000);
        let acc = agree as f64 / total as f64;
        assert!(acc > 0.9, "classifier agreement only {acc:.3}");
    }
}
