//! End-to-end log-processing pipeline — §V-A of the paper.
//!
//! raw records → 30-minute segmentation → interning + aggregation → data
//! reduction → training contexts / test ground truth / query index.

use crate::aggregate::{aggregate, Aggregated};
use crate::contexts::GroundTruth;
use crate::index::QueryTrainingIndex;
use crate::reduce::{reduce, ReductionReport};
use crate::segment::{segment_with_parallelism, TextSession};
use crate::stats::{corpus_stats, CorpusStats};
use sqp_common::{Histogram, Interner};
use sqp_logsim::SimulatedLogs;

/// Pipeline knobs.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Session cut when the gap between activities exceeds this (seconds).
    pub session_cutoff_secs: u64,
    /// Drop aggregated sessions with frequency ≤ this. The paper uses 5 on a
    /// 2-billion-session corpus; at 10⁵–10⁶ simulated sessions the
    /// equivalent noise filter is ≤ 1 (experiments override it as they
    /// scale).
    pub reduction_threshold: u64,
    /// Continuations kept per ground-truth context (the paper's n = 5).
    pub ground_truth_n: usize,
    /// Shard per-machine segmentation across threads. Deterministic either
    /// way (machines are independent; output order is by machine id).
    pub parallel: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            session_cutoff_secs: crate::segment::DEFAULT_CUTOFF_SECS,
            reduction_threshold: 1,
            ground_truth_n: 5,
            parallel: false,
        }
    }
}

/// Everything the pipeline derives from one epoch of raw logs.
#[derive(Clone, Debug)]
pub struct EpochData {
    /// Table IV statistics of the segmented corpus.
    pub stats: CorpusStats,
    /// Session-length histogram before reduction (Figure 5).
    pub length_hist_before: Histogram,
    /// Session-length histogram after reduction (Figure 7).
    pub length_hist_after: Histogram,
    /// Rank/frequency spectrum of aggregated sessions before reduction
    /// (Figure 6).
    pub spectrum: Vec<(f64, f64)>,
    /// Reduction report (retention percentages quoted in §V-A.4).
    pub reduction: ReductionReport,
    /// The reduced, aggregated corpus models consume.
    pub aggregated: Aggregated,
}

/// Fully processed train + test corpora.
#[derive(Debug)]
pub struct ProcessedLogs {
    /// Query interner shared by both epochs (train interned first).
    pub interner: Interner,
    /// Training epoch.
    pub train: EpochData,
    /// Test epoch.
    pub test: EpochData,
    /// Test ground truth (top-n continuations per test context).
    pub ground_truth: GroundTruth,
    /// Per-query training occurrence index (Table VI analysis).
    pub train_index: QueryTrainingIndex,
    /// Segmented (pre-aggregation) test sessions, kept for the user study
    /// sampling (§V-H draws raw test query sequences).
    pub test_sessions: Vec<TextSession>,
}

fn process_epoch(
    records: &[sqp_logsim::RawLogRecord],
    cfg: &PipelineConfig,
    interner: &mut Interner,
) -> (EpochData, Vec<TextSession>) {
    let sessions = segment_with_parallelism(records, cfg.session_cutoff_secs, cfg.parallel);
    let stats = corpus_stats(&sessions);
    let aggregated_full = aggregate(&sessions, interner);
    let length_hist_before = aggregated_full.length_histogram();
    let spectrum = aggregated_full.rank_frequency();
    let (aggregated, reduction) = reduce(&aggregated_full, cfg.reduction_threshold);
    let length_hist_after = aggregated.length_histogram();
    (
        EpochData {
            stats,
            length_hist_before,
            length_hist_after,
            spectrum,
            reduction,
            aggregated,
        },
        sessions,
    )
}

/// Run the full pipeline over simulated logs.
pub fn process(logs: &SimulatedLogs, cfg: &PipelineConfig) -> ProcessedLogs {
    let mut interner = Interner::new();
    let (train, _train_sessions) = process_epoch(&logs.train, cfg, &mut interner);
    // The index covers exactly the queries known at training time; test-only
    // queries interned next get larger ids and classify as "new".
    let train_index = QueryTrainingIndex::build(&train.aggregated, interner.len());
    let (test, test_sessions) = process_epoch(&logs.test, cfg, &mut interner);
    let ground_truth = GroundTruth::build(&test.aggregated, cfg.ground_truth_n);
    ProcessedLogs {
        interner,
        train,
        test,
        ground_truth,
        train_index,
        test_sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_logsim::SimConfig;

    fn processed() -> ProcessedLogs {
        let logs = sqp_logsim::generate(&SimConfig::small(4_000, 1_000, 11));
        process(&logs, &PipelineConfig::default())
    }

    #[test]
    fn segmentation_recovers_generated_sessions() {
        // The generator separates sessions of a machine by > 30 minutes and
        // keeps intra-session gaps below the cutoff, so segmentation must
        // recover the session count exactly.
        let logs = sqp_logsim::generate(&SimConfig::small(2_000, 400, 17));
        let p = process(&logs, &PipelineConfig::default());
        assert_eq!(
            p.train.stats.n_sessions,
            logs.truth.train_sessions.len() as u64
        );
        assert_eq!(
            p.test.stats.n_sessions,
            logs.truth.test_sessions.len() as u64
        );
    }

    #[test]
    fn searches_match_record_counts() {
        let logs = sqp_logsim::generate(&SimConfig::small(2_000, 400, 17));
        let p = process(&logs, &PipelineConfig::default());
        assert_eq!(p.train.stats.n_searches, logs.train.len() as u64);
        assert_eq!(p.test.stats.n_searches, logs.test.len() as u64);
    }

    #[test]
    fn reduction_keeps_majority_of_mass() {
        let p = processed();
        let retention = p.train.reduction.retention();
        assert!(
            (0.4..1.0).contains(&retention),
            "retention {retention} outside plausible band"
        );
        // Aggregate mass after reduction matches the report.
        assert_eq!(
            p.train.aggregated.total_sessions(),
            p.train.reduction.kept_mass
        );
    }

    #[test]
    fn ground_truth_has_multiple_context_lengths() {
        let p = processed();
        assert!(p.ground_truth.by_length(1).count() > 0);
        assert!(p.ground_truth.by_length(2).count() > 0);
        assert!(p.ground_truth.max_context_length() >= 3);
        for e in &p.ground_truth.entries {
            assert!(!e.top.is_empty());
            assert!(e.top.len() <= 5);
            assert!(e.support > 0);
            // Ranking is by descending frequency.
            for w in e.top.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn mean_session_length_in_paper_band() {
        let p = processed();
        let mean = p.train.stats.mean_session_length();
        assert!((1.8..3.2).contains(&mean), "mean length {mean}");
    }

    #[test]
    fn spectrum_follows_power_law_shape() {
        let p = processed();
        let slope = sqp_common::hist::log_log_slope(&p.train.spectrum).unwrap();
        // Rank/frequency log-log slope should be clearly negative.
        assert!(slope < -0.4, "slope {slope} too flat for a power law");
    }

    #[test]
    fn train_index_covers_training_queries_only() {
        let p = processed();
        assert!(p.train_index.n_queries() <= p.interner.len());
        assert!(p.train_index.n_queries() > 0);
    }

    #[test]
    fn interner_resolves_everything_in_ground_truth() {
        let p = processed();
        for e in &p.ground_truth.entries {
            for &q in e.context.iter() {
                assert!(p.interner.try_resolve(q).is_some());
            }
            for &(q, _) in &e.top {
                assert!(p.interner.try_resolve(q).is_some());
            }
        }
    }
}
