//! Alternative session-extraction strategies — §II of the paper surveys
//! them: plain temporal cutoffs (Jansen et al.), and segmentation *enhanced
//! by search-pattern evidence* (Ozmutlu; Han et al.; Rieh & Xie): a long
//! pause does not end the session when the next query is an obvious
//! reformulation of the last one.
//!
//! The paper itself adopts the plain 30-minute rule ("session segmentation
//! is beyond the scope of this paper"); these variants let downstream users
//! study how the choice affects every model, and power the
//! `ablation_reduction`-style sensitivity analyses.

use crate::segment::TextSession;
use sqp_common::dist::levenshtein_str;
use sqp_common::FxHashMap;
use sqp_logsim::RawLogRecord;

/// Strategy for deciding where one session ends and the next begins.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SegmentStrategy {
    /// Cut when the gap between activities exceeds the cutoff (the paper's
    /// §V-A.2 convention).
    TimeGap {
        /// Gap threshold in seconds.
        cutoff_secs: u64,
    },
    /// Cut on the time gap unless the next query is textually similar to the
    /// previous one (term overlap or small edit distance) — pattern-enhanced
    /// segmentation in the spirit of the paper's refs [24, 26, 11].
    SimilarityEnhanced {
        /// Gap threshold in seconds.
        cutoff_secs: u64,
        /// Gap ceiling: beyond `cutoff_secs * hard_factor` always cut.
        hard_factor: u64,
    },
    /// Cut after a fixed number of queries regardless of time (a degenerate
    /// baseline occasionally used in log studies).
    FixedLength {
        /// Queries per session.
        max_queries: usize,
    },
}

/// Do two query strings look like one continuing information need?
/// Word overlap (specialization/generalization share terms) or a small edit
/// distance (spelling reformulation).
pub fn queries_related(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    if levenshtein_str(a, b) <= 2 {
        return true;
    }
    let wa: std::collections::HashSet<&str> = a.split_whitespace().collect();
    let wb: std::collections::HashSet<&str> = b.split_whitespace().collect();
    if wa.is_empty() || wb.is_empty() {
        return false;
    }
    let shared = wa.intersection(&wb).count();
    shared * 2 >= wa.len().min(wb.len())
}

/// Segment records with the chosen strategy. Output ordering matches
/// [`crate::segment::segment`]: by machine id, then time.
pub fn segment_with(records: &[RawLogRecord], strategy: SegmentStrategy) -> Vec<TextSession> {
    let mut by_machine: FxHashMap<u64, Vec<&RawLogRecord>> = FxHashMap::default();
    for r in records {
        by_machine.entry(r.machine_id).or_default().push(r);
    }
    let mut machines: Vec<u64> = by_machine.keys().copied().collect();
    machines.sort_unstable();

    let mut sessions = Vec::new();
    for m in machines {
        let mut recs = by_machine.remove(&m).unwrap();
        recs.sort_by_key(|r| r.timestamp);

        let mut current: Option<TextSession> = None;
        let mut last_activity = 0u64;
        for r in recs {
            let split = match (&current, strategy) {
                (None, _) => true,
                (Some(_), SegmentStrategy::TimeGap { cutoff_secs }) => {
                    r.timestamp.saturating_sub(last_activity) > cutoff_secs
                }
                (
                    Some(cur),
                    SegmentStrategy::SimilarityEnhanced {
                        cutoff_secs,
                        hard_factor,
                    },
                ) => {
                    let gap = r.timestamp.saturating_sub(last_activity);
                    if gap > cutoff_secs.saturating_mul(hard_factor.max(1)) {
                        true
                    } else if gap > cutoff_secs {
                        // Long pause: stay in-session only for an obvious
                        // reformulation of the latest query.
                        let prev = cur.queries.last().map(String::as_str).unwrap_or("");
                        !queries_related(prev, &r.query)
                    } else {
                        false
                    }
                }
                (Some(cur), SegmentStrategy::FixedLength { max_queries }) => {
                    cur.queries.len() >= max_queries.max(1)
                }
            };
            if split {
                if let Some(s) = current.take() {
                    sessions.push(s);
                }
                current = Some(TextSession {
                    machine_id: m,
                    start_time: r.timestamp,
                    queries: Vec::new(),
                });
            }
            current.as_mut().unwrap().queries.push(r.query.clone());
            last_activity = last_activity.max(r.last_activity());
        }
        if let Some(s) = current.take() {
            sessions.push(s);
        }
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment_default;

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    const MIN30: u64 = 30 * 60;

    #[test]
    fn time_gap_matches_default_segmentation() {
        let records = vec![
            rec(1, 0, "a"),
            rec(1, 100, "b"),
            rec(1, 100 + MIN30 + 1, "c"),
            rec(2, 50, "d"),
        ];
        let a = segment_with(&records, SegmentStrategy::TimeGap { cutoff_secs: MIN30 });
        let b = segment_default(&records);
        assert_eq!(a, b);
    }

    #[test]
    fn similarity_keeps_reformulations_together() {
        // 40-minute pause, but the second query specializes the first —
        // pattern-enhanced segmentation keeps them in one session.
        let records = vec![
            rec(1, 0, "kidney stones"),
            rec(1, 40 * 60, "kidney stones symptoms"),
        ];
        let plain = segment_with(&records, SegmentStrategy::TimeGap { cutoff_secs: MIN30 });
        assert_eq!(plain.len(), 2);
        let enhanced = segment_with(
            &records,
            SegmentStrategy::SimilarityEnhanced {
                cutoff_secs: MIN30,
                hard_factor: 4,
            },
        );
        assert_eq!(enhanced.len(), 1);
        assert_eq!(enhanced[0].queries.len(), 2);
    }

    #[test]
    fn similarity_still_cuts_unrelated_queries() {
        let records = vec![
            rec(1, 0, "kidney stones"),
            rec(1, 40 * 60, "muzzle brake"), // unrelated: cut
        ];
        let enhanced = segment_with(
            &records,
            SegmentStrategy::SimilarityEnhanced {
                cutoff_secs: MIN30,
                hard_factor: 4,
            },
        );
        assert_eq!(enhanced.len(), 2);
    }

    #[test]
    fn similarity_respects_hard_ceiling() {
        // Related queries, but the pause exceeds cutoff × factor: cut anyway.
        let records = vec![
            rec(1, 0, "kidney stones"),
            rec(1, 5 * MIN30, "kidney stones symptoms"),
        ];
        let enhanced = segment_with(
            &records,
            SegmentStrategy::SimilarityEnhanced {
                cutoff_secs: MIN30,
                hard_factor: 4,
            },
        );
        assert_eq!(enhanced.len(), 2);
    }

    #[test]
    fn fixed_length_chunks() {
        let records: Vec<RawLogRecord> = (0..7).map(|i| rec(1, i * 10, &format!("q{i}"))).collect();
        let sessions = segment_with(&records, SegmentStrategy::FixedLength { max_queries: 3 });
        let lens: Vec<usize> = sessions.iter().map(|s| s.queries.len()).collect();
        assert_eq!(lens, vec![3, 3, 1]);
    }

    #[test]
    fn relatedness_heuristics() {
        assert!(queries_related("kidney stones", "kidney stones symptoms"));
        assert!(queries_related("goggle", "google"));
        assert!(queries_related("nokia n73", "nokia n73 themes"));
        assert!(!queries_related("muzzle brake", "shared calenders"));
        assert!(queries_related("a b", "a b"));
        assert!(!queries_related("", "anything else entirely"));
    }

    #[test]
    fn partition_invariant_for_all_strategies() {
        let records: Vec<RawLogRecord> = (0..60)
            .map(|i| rec(i % 4, i * 900, &format!("query {}", i % 9)))
            .collect();
        for strategy in [
            SegmentStrategy::TimeGap { cutoff_secs: MIN30 },
            SegmentStrategy::SimilarityEnhanced {
                cutoff_secs: MIN30,
                hard_factor: 4,
            },
            SegmentStrategy::FixedLength { max_queries: 4 },
        ] {
            let sessions = segment_with(&records, strategy);
            let total: usize = sessions.iter().map(|s| s.queries.len()).sum();
            assert_eq!(total, records.len(), "{strategy:?} lost records");
            assert!(sessions.iter().all(|s| !s.queries.is_empty()));
        }
    }

    #[test]
    fn enhanced_never_creates_more_sessions_than_plain() {
        let logs = sqp_logsim::generate(&sqp_logsim::SimConfig::small(2_000, 100, 31));
        let plain = segment_with(&logs.train, SegmentStrategy::TimeGap { cutoff_secs: MIN30 });
        let enhanced = segment_with(
            &logs.train,
            SegmentStrategy::SimilarityEnhanced {
                cutoff_secs: MIN30,
                hard_factor: 4,
            },
        );
        assert!(enhanced.len() <= plain.len());
    }
}
