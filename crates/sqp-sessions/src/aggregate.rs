//! Session aggregation — the paper's §V-A.3.
//!
//! *"After session segmentation, identical sessions from different users are
//! aggregated."* Queries are interned here, so everything downstream works on
//! dense [`QueryId`]s.

use crate::segment::TextSession;
use sqp_common::{Counter, FxHashMap, Interner, QueryId, QuerySeq};

/// Aggregated sessions: each distinct query sequence with its frequency.
#[derive(Clone, Debug, Default)]
pub struct Aggregated {
    /// `(sequence, frequency)` pairs, sorted by descending frequency then by
    /// sequence for full determinism.
    pub sessions: Vec<(QuerySeq, u64)>,
}

impl Aggregated {
    /// Total session mass (sum of frequencies).
    pub fn total_sessions(&self) -> u64 {
        self.sessions.iter().map(|(_, f)| f).sum()
    }

    /// Number of distinct aggregated sessions.
    pub fn unique_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Total searches (queries weighted by frequency).
    pub fn total_searches(&self) -> u64 {
        self.sessions.iter().map(|(s, f)| s.len() as u64 * f).sum()
    }

    /// Distinct query ids appearing anywhere.
    pub fn unique_queries(&self) -> usize {
        let mut set: sqp_common::FxHashSet<QueryId> = Default::default();
        for (s, _) in &self.sessions {
            set.extend(s.iter().copied());
        }
        set.len()
    }

    /// Frequencies of each session length (weighted histogram).
    pub fn length_histogram(&self) -> sqp_common::Histogram {
        let mut h = sqp_common::Histogram::new();
        for (s, f) in &self.sessions {
            h.add(s.len() as u64, *f);
        }
        h
    }

    /// The frequency spectrum for the power-law analysis (Fig 6):
    /// `(rank, frequency)` with rank 1 = most frequent aggregated session.
    pub fn rank_frequency(&self) -> Vec<(f64, f64)> {
        // `sessions` is sorted by descending frequency already.
        self.sessions
            .iter()
            .enumerate()
            .map(|(i, (_, f))| ((i + 1) as f64, *f as f64))
            .collect()
    }

    /// Build from pre-interned weighted sequences (used by tests and by the
    /// reduction step).
    pub fn from_weighted(mut sessions: Vec<(QuerySeq, u64)>) -> Self {
        sessions.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Aggregated { sessions }
    }
}

/// Intern and aggregate segmented sessions.
pub fn aggregate(sessions: &[TextSession], interner: &mut Interner) -> Aggregated {
    let mut counts: Counter<QuerySeq> = Counter::new();
    for s in sessions {
        let seq: QuerySeq = s.queries.iter().map(|q| interner.intern(q)).collect();
        counts.observe(seq);
    }
    let map: FxHashMap<QuerySeq, u64> = counts.into_map();
    Aggregated::from_weighted(map.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(machine: u64, queries: &[&str]) -> TextSession {
        TextSession {
            machine_id: machine,
            start_time: 0,
            queries: queries.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn identical_sessions_merge() {
        let sessions = vec![ts(1, &["a", "b"]), ts(2, &["a", "b"]), ts(3, &["a", "c"])];
        let mut interner = Interner::new();
        let agg = aggregate(&sessions, &mut interner);
        assert_eq!(agg.unique_sessions(), 2);
        assert_eq!(agg.total_sessions(), 3);
        assert_eq!(agg.sessions[0].1, 2); // most frequent first
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn mass_is_preserved() {
        let sessions: Vec<TextSession> = (0..40)
            .map(|i| ts(i, &[["x", "y", "z"][i as usize % 3]]))
            .collect();
        let mut interner = Interner::new();
        let agg = aggregate(&sessions, &mut interner);
        assert_eq!(agg.total_sessions(), 40);
        assert_eq!(agg.total_searches(), 40);
    }

    #[test]
    fn searches_weighted_by_length_and_freq() {
        let sessions = vec![
            ts(1, &["a", "b", "c"]),
            ts(2, &["a", "b", "c"]),
            ts(3, &["d"]),
        ];
        let mut interner = Interner::new();
        let agg = aggregate(&sessions, &mut interner);
        assert_eq!(agg.total_searches(), 7);
        assert_eq!(agg.unique_queries(), 4);
    }

    #[test]
    fn length_histogram_weighted() {
        let sessions = vec![ts(1, &["a", "b"]), ts(2, &["a", "b"]), ts(3, &["c"])];
        let mut interner = Interner::new();
        let agg = aggregate(&sessions, &mut interner);
        let h = agg.length_histogram();
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn rank_frequency_is_descending() {
        let sessions = vec![
            ts(1, &["a"]),
            ts(2, &["a"]),
            ts(3, &["a"]),
            ts(4, &["b"]),
            ts(5, &["c"]),
        ];
        let mut interner = Interner::new();
        let agg = aggregate(&sessions, &mut interner);
        let rf = agg.rank_frequency();
        assert_eq!(rf[0], (1.0, 3.0));
        for w in rf.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn deterministic_ordering_breaks_frequency_ties() {
        let sessions = vec![ts(1, &["b"]), ts(2, &["a"])];
        let mut interner = Interner::new();
        let agg = aggregate(&sessions, &mut interner);
        // Both have frequency 1; order must be stable by sequence.
        assert_eq!(agg.sessions.len(), 2);
        assert!(agg.sessions[0].0 < agg.sessions[1].0);
    }

    #[test]
    fn empty_input() {
        let mut interner = Interner::new();
        let agg = aggregate(&[], &mut interner);
        assert_eq!(agg.unique_sessions(), 0);
        assert_eq!(agg.total_sessions(), 0);
    }
}
