//! Corpus statistics — Table IV, Figure 5, Figure 6, Figure 7.

use crate::segment::TextSession;
use sqp_common::{FxHashSet, Histogram};

/// Summary statistics of a segmented corpus (the paper's Table IV).
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusStats {
    /// Number of sessions after segmentation.
    pub n_sessions: u64,
    /// Number of searches (total queries across sessions).
    pub n_searches: u64,
    /// Number of distinct query strings.
    pub n_unique_queries: u64,
    /// Session-length histogram (Figure 5).
    pub length_histogram: Histogram,
}

/// Compute Table IV statistics over segmented sessions.
pub fn corpus_stats(sessions: &[TextSession]) -> CorpusStats {
    let mut unique: FxHashSet<&str> = FxHashSet::default();
    let mut hist = Histogram::new();
    let mut searches = 0u64;
    for s in sessions {
        hist.observe(s.queries.len() as u64);
        searches += s.queries.len() as u64;
        for q in &s.queries {
            unique.insert(q.as_str());
        }
    }
    CorpusStats {
        n_sessions: sessions.len() as u64,
        n_searches: searches,
        n_unique_queries: unique.len() as u64,
        length_histogram: hist,
    }
}

impl CorpusStats {
    /// Mean session length, the statistic the paper quotes as 2–3.
    pub fn mean_session_length(&self) -> f64 {
        self.length_histogram.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(queries: &[&str]) -> TextSession {
        TextSession {
            machine_id: 0,
            start_time: 0,
            queries: queries.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn counts_sessions_searches_uniques() {
        let sessions = vec![ts(&["a", "b"]), ts(&["a"]), ts(&["c", "c", "d"])];
        let st = corpus_stats(&sessions);
        assert_eq!(st.n_sessions, 3);
        assert_eq!(st.n_searches, 6);
        assert_eq!(st.n_unique_queries, 4);
        assert_eq!(st.length_histogram.count(1), 1);
        assert_eq!(st.length_histogram.count(2), 1);
        assert_eq!(st.length_histogram.count(3), 1);
        assert!((st.mean_session_length() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus() {
        let st = corpus_stats(&[]);
        assert_eq!(st.n_sessions, 0);
        assert_eq!(st.n_searches, 0);
        assert_eq!(st.n_unique_queries, 0);
        assert_eq!(st.mean_session_length(), 0.0);
    }
}
