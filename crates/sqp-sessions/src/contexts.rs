//! Training contexts and test ground truth — the paper's §V-A.5/6.
//!
//! From an aggregated session `[q1..q5]` with frequency 10, four prefix
//! contexts are derived — `[q1]`, `[q1,q2]`, `[q1,q2,q3]`, `[q1..q4]` — each
//! supporting the prediction of the following query with weight 10. The same
//! construction over the *test* corpus, keeping the top-n next queries per
//! context, is the ground truth for the accuracy experiments.

use crate::aggregate::Aggregated;
use sqp_common::{Counter, FxHashMap, QueryId, QuerySeq};

/// Prefix-context table: context → next-query counts.
#[derive(Clone, Debug, Default)]
pub struct ContextTable {
    map: FxHashMap<QuerySeq, Counter<QueryId>>,
}

impl ContextTable {
    /// Build from aggregated sessions.
    pub fn build(agg: &Aggregated) -> Self {
        let mut map: FxHashMap<QuerySeq, Counter<QueryId>> = FxHashMap::default();
        for (s, f) in &agg.sessions {
            for i in 1..s.len() {
                let ctx: QuerySeq = s[..i].into();
                map.entry(ctx).or_default().add(s[i], *f);
            }
        }
        ContextTable { map }
    }

    /// Next-query distribution for `context`, if trained.
    pub fn next_counts(&self, context: &[QueryId]) -> Option<&Counter<QueryId>> {
        self.map.get(context)
    }

    /// Number of distinct contexts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no context is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(context, next-query counter)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&QuerySeq, &Counter<QueryId>)> {
        self.map.iter()
    }
}

/// One evaluable test context with its top-n continuation ranking.
#[derive(Clone, Debug)]
pub struct GroundTruthEntry {
    /// The user context (session prefix).
    pub context: QuerySeq,
    /// How many test sessions contain this context (evaluation weight).
    pub support: u64,
    /// Top-n next queries by test frequency, best first. Ratings for NDCG
    /// are assigned positionally: 5, 4, 3, 2, 1.
    pub top: Vec<(QueryId, u64)>,
}

/// Ground truth for the accuracy/coverage experiments.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Entries sorted by (context length, context) for determinism.
    pub entries: Vec<GroundTruthEntry>,
}

impl GroundTruth {
    /// Build from the (reduced) test corpus, keeping `n` continuations per
    /// context (the paper sets n = 5).
    pub fn build(test: &Aggregated, n: usize) -> Self {
        let table = ContextTable::build(test);
        let mut entries: Vec<GroundTruthEntry> = table
            .iter()
            .map(|(ctx, counter)| {
                let ranked =
                    sqp_common::topk::top_k_counts(counter.iter().map(|(&q, c)| (q, c)), n);
                GroundTruthEntry {
                    context: ctx.clone(),
                    support: counter.total(),
                    top: ranked.iter().map(|s| (s.query, s.score as u64)).collect(),
                }
            })
            .collect();
        entries.sort_unstable_by(|a, b| {
            a.context
                .len()
                .cmp(&b.context.len())
                .then_with(|| a.context.cmp(&b.context))
        });
        GroundTruth { entries }
    }

    /// Entries with a given context length.
    pub fn by_length(&self, len: usize) -> impl Iterator<Item = &GroundTruthEntry> {
        self.entries.iter().filter(move |e| e.context.len() == len)
    }

    /// Largest context length present.
    pub fn max_context_length(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.context.len())
            .max()
            .unwrap_or(0)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    fn corpus() -> Aggregated {
        Aggregated::from_weighted(vec![
            (seq(&[0, 1, 2]), 10),
            (seq(&[0, 1, 3]), 6),
            (seq(&[0, 2]), 4),
            (seq(&[4]), 9),
        ])
    }

    #[test]
    fn prefix_contexts_carry_session_frequency() {
        let table = ContextTable::build(&corpus());
        // Context [0]: next 1 (10+6=16), next 2 (4).
        let c0 = table.next_counts(&seq(&[0])).unwrap();
        assert_eq!(c0.get(&sqp_common::QueryId(1)), 16);
        assert_eq!(c0.get(&sqp_common::QueryId(2)), 4);
        // Context [0,1]: next 2 (10), next 3 (6).
        let c01 = table.next_counts(&seq(&[0, 1])).unwrap();
        assert_eq!(c01.get(&sqp_common::QueryId(2)), 10);
        assert_eq!(c01.get(&sqp_common::QueryId(3)), 6);
        // Length-1 sessions contribute no contexts.
        assert!(table.next_counts(&seq(&[4])).is_none());
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn contexts_are_prefixes_only() {
        let table = ContextTable::build(&corpus());
        // [1] appears mid-session but never as a prefix context.
        assert!(table.next_counts(&seq(&[1])).is_none());
    }

    #[test]
    fn ground_truth_ranks_by_frequency() {
        let gt = GroundTruth::build(&corpus(), 5);
        let e0 = gt
            .entries
            .iter()
            .find(|e| e.context.as_ref() == seq(&[0]).as_ref())
            .unwrap();
        assert_eq!(e0.support, 20);
        assert_eq!(e0.top[0].0 .0, 1);
        assert_eq!(e0.top[0].1, 16);
        assert_eq!(e0.top[1].0 .0, 2);
    }

    #[test]
    fn ground_truth_truncates_to_n() {
        let many = Aggregated::from_weighted(
            (1..=8u32)
                .map(|i| (seq(&[0, i]), u64::from(10 - i)))
                .collect(),
        );
        let gt = GroundTruth::build(&many, 5);
        assert_eq!(gt.entries.len(), 1);
        assert_eq!(gt.entries[0].top.len(), 5);
        assert_eq!(gt.entries[0].top[0].0 .0, 1); // highest frequency
    }

    #[test]
    fn ground_truth_sorted_and_filterable_by_length() {
        let gt = GroundTruth::build(&corpus(), 5);
        assert_eq!(gt.by_length(1).count(), 1);
        assert_eq!(gt.by_length(2).count(), 1);
        assert_eq!(gt.max_context_length(), 2);
        for w in gt.entries.windows(2) {
            assert!(w[0].context.len() <= w[1].context.len());
        }
    }

    #[test]
    fn empty_corpus_gives_empty_truth() {
        let gt = GroundTruth::build(&Aggregated::default(), 5);
        assert!(gt.is_empty());
        assert_eq!(gt.max_context_length(), 0);
    }
}
