//! Multi-client keep-alive soak over real sockets, with an admin
//! publish landing mid-traffic.
//!
//! Six client threads drive mixed serve_loop-style traffic (tracked
//! suggestions, singles, batches, stats probes) through keep-alive
//! connections at a router tier behind the wire. At roughly one third
//! of the way in, an admin client pushes a **rolling** snapshot upgrade
//! through the admin port while traffic keeps flowing. Assertions:
//!
//! * **accounting** — every request a client sent was answered or
//!   typed-shed: `answered + shed == sent`, per thread, no lost or
//!   duplicated replies across the keep-alive connections;
//! * **no torn generations** — the two models use tagged vocabularies
//!   (`…::old` vs `…::new`): a single reply list must never mix tags
//!   (a user's request executes against exactly one snapshot load), and
//!   per user the tag must move old → new at most once, never back
//!   (consistent-hash pinning + per-replica monotone upgrade);
//! * **the upgrade really lands** — post-roll traffic observes `::new`
//!   suggestions and wire-level `STATS` reports the fully-propagated
//!   generation;
//! * **clean drain** — the server's own accounting agrees with the
//!   clients' (`replies_out == frames_in`, nothing stuck in a queue),
//!   all workers alive, then `shutdown()` joins everything.

use sqp_logsim::RawLogRecord;
use sqp_net::{BatchAnswer, BatchEntry, NetClient, NetServer, ServeAnswer, ServerConfig};
use sqp_router::{RouterConfig, RouterEngine};
use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, TrainingConfig};
use sqp_store::{save_snapshot, SnapshotMeta};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLIENT_THREADS: usize = 6;
const OPS_PER_THREAD: usize = 1_200;
const USERS_PER_THREAD: u64 = 40;
const PUBLISH_AT_TOTAL_OPS: u64 = (CLIENT_THREADS * OPS_PER_THREAD) as u64 / 3;
const REPLICAS: usize = 3;

fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
    RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    }
}

/// Train a model whose every suggestion carries `tag` as a suffix, so a
/// suggestion's provenance (which snapshot generation produced it) is
/// readable off the wire.
fn tagged_snapshot(tag: &str) -> Arc<ModelSnapshot> {
    let mut logs = Vec::new();
    for u in 0..USERS_PER_THREAD {
        for (i, seed) in ["alpha", "beta", "gamma"].iter().enumerate() {
            let t = 100 + (i as u64) * 40;
            logs.push(rec(u, t, seed));
            logs.push(rec(u, t + 20, &format!("{seed}::{tag}")));
        }
    }
    let cfg = TrainingConfig {
        model: ModelSpec::Adjacency,
        ..TrainingConfig::default()
    };
    Arc::new(ModelSnapshot::from_raw_logs(&logs, &cfg))
}

#[derive(Default)]
struct ThreadReport {
    sent: u64,
    answered: u64,
    shed: u64,
    saw_new: bool,
}

fn classify(queries: &[String]) -> Option<&'static str> {
    let mut tag = None;
    for q in queries {
        let this = if q.ends_with("::old") {
            "old"
        } else if q.ends_with("::new") {
            "new"
        } else {
            panic!("untagged suggestion {q:?} cannot have come from either model");
        };
        match tag {
            None => tag = Some(this),
            Some(t) => assert_eq!(
                t, this,
                "torn reply: one suggestion list mixes ::old and ::new"
            ),
        }
    }
    tag
}

#[test]
fn soak_mixed_traffic_with_mid_flight_rolling_publish() {
    // Tier: a 3-replica router on the ::old model; the ::new model goes
    // to disk for the admin port to pick up mid-traffic.
    let router = Arc::new(RouterEngine::new(
        tagged_snapshot("old"),
        RouterConfig {
            replicas: REPLICAS,
            engine: EngineConfig::default(),
            ..RouterConfig::default()
        },
    ));
    let new_model = tagged_snapshot("new");
    let snap_path = std::env::temp_dir().join(format!("sqp-net-soak-{}.sqps", std::process::id()));
    save_snapshot(
        &snap_path,
        &new_model,
        &SnapshotMeta::describe(&new_model, 1, 0),
    )
    .expect("save ::new snapshot");

    let server = NetServer::start(
        Arc::clone(&router),
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let serve_addr = server.serve_addr();
    let admin_addr = server.admin_addr();

    let total_ops = Arc::new(AtomicU64::new(0));
    // Set by the admin thread once the roll has fully landed; client
    // threads pause at their midpoint until then, so every thread
    // provably drives traffic both before and after the upgrade (without
    // this, a fast client could finish all its ops pre-roll and the
    // `saw_new` assertion would race).
    let rolled = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Admin thread: wait until a third of the traffic has flowed, then
    // roll the ::new snapshot across the replicas over the admin port.
    let admin_total = Arc::clone(&total_ops);
    let admin_rolled = Arc::clone(&rolled);
    let admin_path = snap_path.display().to_string();
    let admin = std::thread::spawn(move || {
        while admin_total.load(Ordering::Relaxed) < PUBLISH_AT_TOTAL_OPS {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut client =
            NetClient::connect_timeout(admin_addr, Duration::from_secs(30)).expect("admin connect");
        let summary = client
            .rolling_publish(&admin_path, false)
            .expect("rolling publish over the wire");
        assert!(!summary.aborted, "healthy roll must not abort");
        assert_eq!(summary.failed, 0, "healthy roll must not fail replicas");
        assert_eq!(
            summary.upgraded, REPLICAS as u64,
            "roll must upgrade every replica"
        );
        admin_rolled.store(true, Ordering::Release);
    });

    let reports: Vec<ThreadReport> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for thread in 0..CLIENT_THREADS {
            let total_ops = Arc::clone(&total_ops);
            let rolled = Arc::clone(&rolled);
            handles.push(scope.spawn(move || {
                let mut client = NetClient::connect_timeout(serve_addr, Duration::from_secs(30))
                    .expect("client connect");
                let mut report = ThreadReport::default();
                // Last tag seen per user: generations may only move
                // old → new, never back (no torn reads across the roll).
                let mut last_tag: HashMap<u64, &'static str> = HashMap::new();
                let seeds = ["alpha", "beta", "gamma"];

                let note = |user: u64,
                            queries: &[String],
                            report: &mut ThreadReport,
                            last_tag: &mut HashMap<u64, &'static str>| {
                    if let Some(tag) = classify(queries) {
                        if tag == "new" {
                            report.saw_new = true;
                        }
                        if let Some(prev) = last_tag.insert(user, tag) {
                            assert!(
                                !(prev == "new" && tag == "old"),
                                "user {user} regressed from ::new back to ::old"
                            );
                        }
                    }
                };

                for op in 0..OPS_PER_THREAD {
                    if op == OPS_PER_THREAD / 2 {
                        while !rolled.load(Ordering::Acquire) {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                    let user = (thread as u64) * 1_000 + (op as u64 % USERS_PER_THREAD);
                    let now = (op as u64) * 2;
                    let seed = seeds[op % seeds.len()];
                    report.sent += 1;
                    match op % 8 {
                        // Mostly: track + suggest in one round trip.
                        0..=4 => {
                            match client
                                .track_and_suggest(user, seed, 3, now)
                                .expect("track_and_suggest")
                            {
                                ServeAnswer::Suggestions(s) => {
                                    report.answered += 1;
                                    let qs: Vec<String> = s.into_iter().map(|x| x.query).collect();
                                    note(user, &qs, &mut report, &mut last_tag);
                                }
                                ServeAnswer::Overloaded { .. } => report.shed += 1,
                            }
                        }
                        // Plain suggest against the tracked context.
                        5 => match client.suggest(user, 3, now).expect("suggest") {
                            ServeAnswer::Suggestions(s) => {
                                report.answered += 1;
                                let qs: Vec<String> = s.into_iter().map(|x| x.query).collect();
                                note(user, &qs, &mut report, &mut last_tag);
                            }
                            ServeAnswer::Overloaded { .. } => report.shed += 1,
                        },
                        // Batch across this thread's users.
                        6 => {
                            let entries: Vec<BatchEntry> = (0..4)
                                .map(|i| BatchEntry {
                                    user: (thread as u64) * 1_000
                                        + ((op as u64 + i) % USERS_PER_THREAD),
                                    k: 3,
                                })
                                .collect();
                            match client.suggest_batch(&entries, now).expect("suggest_batch") {
                                BatchAnswer::Lists(lists) => {
                                    report.answered += 1;
                                    for (entry, list) in entries.iter().zip(&lists) {
                                        let qs: Vec<String> =
                                            list.iter().map(|x| x.query.clone()).collect();
                                        note(entry.user, &qs, &mut report, &mut last_tag);
                                    }
                                }
                                BatchAnswer::Overloaded { .. } => report.shed += 1,
                            }
                        }
                        // Stats probe — exercises the ops path under load.
                        _ => {
                            client.stats().expect("stats");
                            report.answered += 1;
                        }
                    }
                    total_ops.fetch_add(1, Ordering::Relaxed);
                }
                report
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    admin.join().unwrap();

    // Accounting: every request got exactly one reply — answered or a
    // typed shed — across every keep-alive connection.
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(
            report.answered + report.shed,
            report.sent,
            "thread {i}: answered + shed must equal sent"
        );
        assert_eq!(report.sent, OPS_PER_THREAD as u64);
        assert!(
            report.saw_new,
            "thread {i}: post-roll traffic never observed the ::new model"
        );
    }

    // The roll fully propagated: wire-level stats report generation 1.
    let mut check = NetClient::connect_timeout(serve_addr, Duration::from_secs(30)).unwrap();
    let wire_stats = check.stats().expect("final stats");
    assert_eq!(
        wire_stats.generation, 1,
        "all replicas must be on the published generation"
    );
    drop(check);

    // Clean drain: the server's own ledger balances (one reply written
    // per frame read; the final stats probe counts too), and no worker
    // died along the way.
    assert!(server.workers_alive(), "no worker may die during the soak");
    let stats = server.stats();
    assert_eq!(
        stats.replies_out, stats.frames_in,
        "server must reply to every frame it read (clean drain)"
    );
    assert_eq!(stats.protocol_errors, 0, "well-formed traffic only");
    server.shutdown();

    let _ = std::fs::remove_file(&snap_path);
}
