//! Idle eviction racing a live keep-alive connection.
//!
//! A network front-end makes eviction interesting: a keep-alive TCP
//! connection can outlive the server-side session it talks to. The
//! contract is that eviction is **transparent at the wire level** — an
//! evicted user's next `SUGGEST` returns an empty list (not an error),
//! and the next `TRACK` simply starts a fresh session (`new_session`
//! flag set) on the same connection, with no reconnect or handshake.
//!
//! Two phases:
//!
//! 1. **Deterministic**: track → suggest works → a second connection
//!    evicts the session out from under the first → suggest is empty →
//!    track re-creates (`new_session: true`) → suggest works again.
//! 2. **Racing**: a hammer thread loops `EVICT` with a far-future
//!    timestamp (every session always idle-eligible) while a client
//!    thread drives track+suggest pairs. No interleaving may produce an
//!    error or a wrong suggestion — only "answered" or "empty because
//!    the session just got evicted".

use sqp_logsim::RawLogRecord;
use sqp_net::{NetClient, NetServer, ServeAnswer, ServerConfig};
use sqp_serve::{
    EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrackerConfig, TrainingConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const IDLE_CUTOFF_SECS: u64 = 60;

fn engine() -> Arc<ServeEngine> {
    let rec = |machine, ts, q: &str| RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    };
    let mut logs = Vec::new();
    for u in 0..8 {
        logs.push(rec(u, 100, "alpha"));
        logs.push(rec(u, 130, "alpha::next"));
    }
    let cfg = TrainingConfig {
        model: ModelSpec::Adjacency,
        ..TrainingConfig::default()
    };
    Arc::new(ServeEngine::new(
        Arc::new(ModelSnapshot::from_raw_logs(&logs, &cfg)),
        EngineConfig {
            tracker: TrackerConfig {
                idle_cutoff_secs: IDLE_CUTOFF_SECS,
                ..TrackerConfig::default()
            },
            ..EngineConfig::default()
        },
    ))
}

fn suggestions(answer: ServeAnswer) -> Vec<String> {
    match answer {
        ServeAnswer::Suggestions(s) => s.into_iter().map(|x| x.query).collect(),
        ServeAnswer::Overloaded { .. } => panic!("no admission limit configured"),
    }
}

#[test]
fn evicted_sessions_recreate_transparently_on_a_live_connection() {
    let server = NetServer::start(engine(), ServerConfig::default()).expect("server start");
    let addr = server.serve_addr();
    let deadline = Duration::from_secs(10);

    // --- Phase 1: deterministic evict-under-a-live-connection ---
    let mut live = NetClient::connect_timeout(addr, deadline).expect("live connect");
    let ack = live.track(7, "alpha", 1_000).expect("track");
    assert!(ack.new_session, "first contact starts a session");
    assert_eq!(
        suggestions(live.suggest(7, 3, 1_001).expect("suggest")),
        vec!["alpha::next".to_string()],
        "tracked context must drive suggestions"
    );

    // A second connection evicts user 7's session while `live` stays up.
    let mut ops = NetClient::connect_timeout(addr, deadline).expect("ops connect");
    let evicted = ops
        .evict_idle(1_001 + IDLE_CUTOFF_SECS + 1)
        .expect("evict over the wire");
    assert!(evicted >= 1, "user 7's idle session must be evicted");

    // The live connection never noticed: suggest degrades to empty
    // (no context), not to an error or a disconnect.
    let after = 2_000u64;
    assert!(
        suggestions(live.suggest(7, 3, after).expect("post-evict suggest")).is_empty(),
        "an evicted user has no context, so suggestions are empty"
    );

    // And the very next track transparently re-creates the session.
    let ack = live.track(7, "alpha", after + 1).expect("re-track");
    assert!(
        ack.new_session,
        "track after eviction must start a fresh session"
    );
    assert_eq!(
        suggestions(live.suggest(7, 3, after + 2).expect("suggest again")),
        vec!["alpha::next".to_string()],
        "the re-created session serves exactly like the original"
    );

    // --- Phase 2: eviction hammering live traffic ---
    let stop = Arc::new(AtomicBool::new(false));
    let hammer_stop = Arc::clone(&stop);
    let hammer = std::thread::spawn(move || {
        let mut client = NetClient::connect_timeout(addr, deadline).expect("hammer connect");
        let mut evictions = 0u64;
        while !hammer_stop.load(Ordering::Relaxed) {
            // Far-future timestamp: every resident session is idle-eligible,
            // so this races the client's track→suggest window as hard as
            // the scheduler allows.
            evictions += client.evict_idle(u64::MAX / 2).expect("evict");
        }
        evictions
    });

    let mut nonempty = 0u64;
    let mut empty = 0u64;
    for op in 0..2_000u64 {
        let user = op % 4;
        let now = 10_000 + op;
        live.track(user, "alpha", now).expect("racing track");
        let got = suggestions(live.suggest(user, 3, now).expect("racing suggest"));
        match got.as_slice() {
            // Eviction landed between track and suggest: empty, never wrong.
            [] => empty += 1,
            [only] if only == "alpha::next" => nonempty += 1,
            other => panic!("op {op}: wrong suggestions under racing eviction: {other:?}"),
        }
    }
    stop.store(true, Ordering::Relaxed);
    let hammer_evictions = hammer.join().unwrap();

    assert!(
        nonempty > 0,
        "some track→suggest pairs must win the race and get answers"
    );
    assert!(
        hammer_evictions + empty > 0,
        "the hammer must actually evict (or the race was never exercised)"
    );
    assert!(server.workers_alive(), "no worker may die under the race");
    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0, "well-formed traffic only");
    server.shutdown();
}
