//! The serve/admin port split (WIRE.md §5).
//!
//! The traffic port is the one you expose broadly; it must never accept
//! a model swap. Admin opcodes arriving on the serve port get a typed
//! `ADMIN_ONLY` error and a closed connection. On the admin port the
//! same opcodes work — and a *failed* publish (bad path) is a typed
//! `PUBLISH_FAILED` error that keeps the connection alive, because an
//! operator fat-fingering a path should not have to reconnect.

use sqp_logsim::RawLogRecord;
use sqp_net::{NetClient, NetError, NetServer, ServerConfig};
use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
use sqp_store::{save_snapshot, SnapshotMeta};
use std::sync::Arc;
use std::time::Duration;

fn snapshot() -> Arc<ModelSnapshot> {
    let rec = |machine, ts, q: &str| RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    };
    let mut logs = Vec::new();
    for u in 0..4 {
        logs.push(rec(u, 100, "alpha"));
        logs.push(rec(u, 130, "beta"));
    }
    let cfg = TrainingConfig {
        model: ModelSpec::Adjacency,
        ..TrainingConfig::default()
    };
    Arc::new(ModelSnapshot::from_raw_logs(&logs, &cfg))
}

#[test]
fn admin_opcodes_are_refused_on_the_serve_port_and_work_on_the_admin_port() {
    let engine = Arc::new(ServeEngine::new(snapshot(), EngineConfig::default()));
    let server = NetServer::start(engine, ServerConfig::default()).expect("server start");
    let deadline = Duration::from_secs(10);

    let next = snapshot();
    let path =
        std::env::temp_dir().join(format!("sqp-net-admin-split-{}.sqps", std::process::id()));
    save_snapshot(&path, &next, &SnapshotMeta::describe(&next, 1, 0)).expect("save snapshot");
    let path_str = path.to_str().unwrap().to_owned();

    // PUBLISH on the *serve* port: typed ADMIN_ONLY error, then the server
    // closes this connection.
    let mut serve = NetClient::connect_timeout(server.serve_addr(), deadline).unwrap();
    match serve.publish(&path_str) {
        Err(NetError::Remote { code, .. }) => {
            assert_eq!(code, sqp_net::wire::code::ADMIN_ONLY, "wrong error code");
        }
        other => panic!("publish on the serve port must be refused, got {other:?}"),
    }
    assert!(
        serve.ping().is_err(),
        "the serve-port connection must be closed after an admin attempt"
    );
    assert_eq!(
        server.stats().publishes_ok,
        0,
        "the refused publish must not have executed"
    );

    // Same frame on the *admin* port: lands, and the serve tier sees the
    // new generation.
    let mut admin = NetClient::connect_timeout(server.admin_addr(), deadline).unwrap();
    let generation = admin.publish(&path_str).expect("publish on the admin port");
    assert_eq!(generation, 1);

    // A bad path is an operator mistake, not a protocol violation: typed
    // PUBLISH_FAILED, connection stays usable.
    let missing = path_str.clone() + ".does-not-exist";
    match admin.publish(&missing) {
        Err(NetError::Remote { code, .. }) => {
            assert_eq!(code, sqp_net::wire::code::PUBLISH_FAILED);
        }
        other => panic!("publish of a missing file must fail typed, got {other:?}"),
    }
    admin
        .ping()
        .expect("the admin connection survives a failed publish");

    let mut check = NetClient::connect_timeout(server.serve_addr(), deadline).unwrap();
    assert_eq!(check.stats().expect("stats").generation, 1);

    let stats = server.stats();
    assert_eq!(stats.publishes_ok, 1);
    assert_eq!(stats.publishes_failed, 1);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
