//! The wire codec must not allocate on the steady-state path: encoders
//! append into reused buffers, decoders borrow straight from the frame
//! body, and framing reuses the caller's body buffer — so a warmed-up
//! connection turns requests into replies with zero heap traffic.
//!
//! Verified with a counting global allocator (same discipline as the
//! repo-root `alloc_free_serve.rs`). This file holds exactly one test so
//! no concurrent test can pollute the counter.

use sqp_net::frame::{read_frame, write_frame, FrameRead};
use sqp_net::wire::{self, BatchEntry, Reply, Request};
use sqp_serve::Suggestion;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// One full wire round: encode a mix of requests into `body`, frame them
/// through `wire_buf`, read them back into `rx`, decode (borrowed), walk
/// every field, then do the same for replies.
fn round(
    body: &mut Vec<u8>,
    rx: &mut Vec<u8>,
    wire_buf: &mut [u8],
    entries: &[BatchEntry],
    suggestions: &[Suggestion],
) -> u64 {
    let mut checksum = 0u64;

    // --- requests ---
    for variant in 0..4 {
        body.clear();
        match variant {
            0 => wire::encode_track(body, 7, "rust language", 1_000),
            1 => wire::encode_track_suggest(body, 7, "rust language", 5, 1_001),
            2 => wire::encode_suggest_batch(body, entries, 1_002),
            _ => wire::encode_stats(body),
        }

        let mut w = Cursor::new(&mut *wire_buf);
        write_frame(&mut w, body, wire::DEFAULT_MAX_FRAME).expect("write");
        let used = w.position() as usize;

        let mut r = Cursor::new(&wire_buf[..used]);
        match read_frame(&mut r, rx, wire::DEFAULT_MAX_FRAME).expect("read") {
            FrameRead::Frame => {}
            other => panic!("expected a frame, got {other:?}"),
        }
        match wire::decode_request(rx).expect("decode") {
            Request::Track { user, query, .. } => {
                checksum = checksum.wrapping_add(user).wrapping_add(query.len() as u64)
            }
            Request::TrackSuggest { user, k, query, .. } => {
                checksum = checksum
                    .wrapping_add(user)
                    .wrapping_add(k as u64)
                    .wrapping_add(query.len() as u64)
            }
            Request::SuggestBatch { entries, .. } => {
                for e in entries.iter() {
                    checksum = checksum.wrapping_add(e.user).wrapping_add(e.k as u64);
                }
            }
            Request::Stats => checksum = checksum.wrapping_add(1),
            other => panic!("unexpected request {other:?}"),
        }
    }

    // --- replies ---
    for variant in 0..3 {
        body.clear();
        match variant {
            0 => wire::encode_suggestions(body, suggestions),
            1 => wire::encode_ack(body, false, 4),
            _ => wire::encode_overloaded(body, 128),
        }

        let mut w = Cursor::new(&mut *wire_buf);
        write_frame(&mut w, body, wire::DEFAULT_MAX_FRAME).expect("write");
        let used = w.position() as usize;

        let mut r = Cursor::new(&wire_buf[..used]);
        match read_frame(&mut r, rx, wire::DEFAULT_MAX_FRAME).expect("read") {
            FrameRead::Frame => {}
            other => panic!("expected a frame, got {other:?}"),
        }
        match wire::decode_reply(rx).expect("decode") {
            Reply::Suggestions(list) => {
                for (score, query) in list.iter() {
                    checksum = checksum.wrapping_add(score.to_bits() ^ query.len() as u64);
                }
            }
            Reply::Ack { context_len, .. } => checksum = checksum.wrapping_add(context_len as u64),
            Reply::Overloaded { limit } => checksum = checksum.wrapping_add(limit),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    checksum
}

#[test]
fn wire_codec_steady_state_is_allocation_free() {
    let entries: Vec<BatchEntry> = (0..16).map(|i| BatchEntry { user: i, k: 5 }).collect();
    let suggestions: Vec<Suggestion> = (0..8)
        .map(|i| Suggestion {
            query: format!("suggestion number {i}"),
            score: 1.0 / (i + 1) as f64,
        })
        .collect();

    let mut body = Vec::new();
    let mut rx = Vec::new();
    let mut wire_buf = vec![0u8; 8 * 1024];

    // Warm up: both reusable buffers reach steady-state capacity.
    let warm = round(&mut body, &mut rx, &mut wire_buf, &entries, &suggestions);

    // Measure: many full encode→frame→read→decode rounds, zero allocs.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut checksum = 0u64;
    for _ in 0..500 {
        checksum = checksum.wrapping_add(round(
            &mut body,
            &mut rx,
            &mut wire_buf,
            &entries,
            &suggestions,
        ));
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        checksum,
        warm.wrapping_mul(500),
        "codec must be deterministic across rounds"
    );
    assert_eq!(
        after - before,
        0,
        "wire codec allocated {} times across 500 warmed-up rounds",
        after - before
    );
}
