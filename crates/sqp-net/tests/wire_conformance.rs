//! Golden-bytes conformance against `WIRE.md` §6.
//!
//! Discipline (mirrors `sqp-store/tests/format_spec.rs`): the encoder
//! builds a frame with the public API, and the test then checks every
//! field **using only the offsets and encodings the spec document
//! states** — no decoder involved — so the implementation, the spec, and
//! the test form a triangle that cannot drift silently. The reverse
//! direction (spec bytes → decoder) is checked too, with frames written
//! out literally.

use sqp_net::wire::{self, op};
use sqp_net::{Reply, Request};
use sqp_serve::Suggestion;

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Frame a body the way the transport does: u32 LE length prefix.
fn framed(body: &[u8]) -> Vec<u8> {
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(body);
    frame
}

#[test]
fn track_suggest_request_matches_the_spec_hex_dump() {
    // WIRE.md §6: TRACK_SUGGEST user=7 now=1000 k=3 query="rust".
    let mut body = Vec::new();
    wire::encode_track_suggest(&mut body, 7, "rust", 3, 1_000);
    let frame = framed(&body);

    // The complete frame, byte for byte as printed in the spec.
    let golden: &[u8] = &[
        0x17, 0x00, 0x00, 0x00, // len = 23
        0x03, // opcode TRACK_SUGGEST
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // user = 7
        0xE8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // now = 1000
        0x03, // k = 3
        0x04, // query length = 4
        0x72, 0x75, 0x73, 0x74, // "rust"
    ];
    assert_eq!(frame, golden, "encoder drifted from WIRE.md §6");

    // Field-by-field at the documented offsets.
    assert_eq!(frame.len(), 27);
    assert_eq!(u32_at(&frame, 0), 23, "len at offset 0");
    assert_eq!(frame[4], op::TRACK_SUGGEST, "opcode at offset 4");
    assert_eq!(u64_at(&frame, 5), 7, "user at offset 5");
    assert_eq!(u64_at(&frame, 13), 1_000, "now at offset 13");
    assert_eq!(frame[21], 3, "k at offset 21");
    assert_eq!(frame[22], 4, "query length at offset 22");
    assert_eq!(&frame[23..27], b"rust", "query bytes at offset 23");

    // And the decoder agrees about the same bytes.
    match wire::decode_request(&frame[4..]).unwrap() {
        Request::TrackSuggest {
            user,
            now,
            k,
            query,
        } => assert_eq!((user, now, k, query), (7, 1_000, 3, "rust")),
        other => panic!("decoded wrong request: {other:?}"),
    }
}

#[test]
fn suggestions_reply_matches_the_spec_hex_dump() {
    // WIRE.md §6: R_SUGGESTIONS with one entry, "rust book" @ 0.5.
    let mut body = Vec::new();
    wire::encode_suggestions(
        &mut body,
        &[Suggestion {
            query: "rust book".into(),
            score: 0.5,
        }],
    );
    let frame = framed(&body);

    let golden: &[u8] = &[
        0x14, 0x00, 0x00, 0x00, // len = 20
        0x82, // opcode R_SUGGESTIONS
        0x01, // count = 1
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F, // score = 0.5
        0x09, // query length = 9
        0x72, 0x75, 0x73, 0x74, 0x20, 0x62, 0x6F, 0x6F, 0x6B, // "rust book"
    ];
    assert_eq!(frame, golden, "encoder drifted from WIRE.md §6");

    assert_eq!(frame.len(), 24);
    assert_eq!(u32_at(&frame, 0), 20, "len at offset 0");
    assert_eq!(frame[4], op::R_SUGGESTIONS, "opcode at offset 4");
    assert_eq!(frame[5], 1, "count at offset 5");
    assert_eq!(
        u64_at(&frame, 6),
        0.5f64.to_bits(),
        "score bit pattern 0x3FE0000000000000 at offset 6"
    );
    assert_eq!(frame[14], 9, "query length at offset 14");
    assert_eq!(&frame[15..24], b"rust book", "query bytes at offset 15");

    match wire::decode_reply(&frame[4..]).unwrap() {
        Reply::Suggestions(list) => {
            assert_eq!(list.iter().collect::<Vec<_>>(), vec![(0.5, "rust book")]);
        }
        other => panic!("decoded wrong reply: {other:?}"),
    }
}

#[test]
fn stats_reply_is_seven_fixed_u64s_in_spec_order() {
    // WIRE.md §4: R_STATS is a fixed 57-byte body — opcode plus seven
    // u64 LE counters in this exact order.
    let stats = wire::WireStats {
        generation: 1,
        tracks: 2,
        suggests: 3,
        publishes: 4,
        shed: 5,
        evictions: 6,
        active_sessions: 7,
    };
    let mut body = Vec::new();
    wire::encode_stats_reply(&mut body, &stats);
    assert_eq!(body.len(), 1 + 7 * 8);
    assert_eq!(body[0], op::R_STATS);
    for (i, expected) in (1u64..=7).enumerate() {
        assert_eq!(
            u64_at(&body, 1 + i * 8),
            expected,
            "counter {i} at offset {}",
            1 + i * 8
        );
    }
}

#[test]
fn spec_authored_bytes_decode_without_the_encoder() {
    // A frame written straight from the §3 table (never produced by our
    // encoder): SUGGEST_BATCH now=42 with entries (1, k=5), (258, k=300).
    // 300 as a uvarint is AC 02 (§2 edge-value table).
    let mut body = vec![op::SUGGEST_BATCH];
    body.extend_from_slice(&42u64.to_le_bytes()); // now
    body.push(0x02); // count = 2
    body.extend_from_slice(&1u64.to_le_bytes()); // user = 1
    body.push(0x05); // k = 5
    body.extend_from_slice(&258u64.to_le_bytes()); // user = 258
    body.extend_from_slice(&[0xAC, 0x02]); // k = 300

    match wire::decode_request(&body).unwrap() {
        Request::SuggestBatch { now, entries } => {
            assert_eq!(now, 42);
            let got: Vec<_> = entries.iter().map(|e| (e.user, e.k)).collect();
            assert_eq!(got, vec![(1, 5), (258, 300)]);
        }
        other => panic!("decoded wrong request: {other:?}"),
    }
}
