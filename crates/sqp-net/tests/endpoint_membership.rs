//! Live endpoint-set changes on [`RemoteEngine`], under traffic.
//!
//! The remote tier's membership discipline mirrors the router's ring
//! swap: the endpoint vector is immutable, changes publish through one
//! pointer swap, and every operation runs against the snapshot it loaded
//! at entry. These tests pin the observable contract:
//!
//! * an added endpoint starts taking traffic without a restart, with a
//!   fresh breaker and warm pool;
//! * a retired endpoint is swapped out *before* its in-flight operations
//!   are waited out, so no new operation can route to it, and its pool
//!   drains client-side;
//! * retiring under fire (endpoint black-holed, connections killed
//!   mid-drain) still converges: the wait is bounded, the survivors
//!   absorb the traffic, and every outcome stays typed;
//! * the degenerate edges (duplicate add, unknown retire, last-endpoint
//!   retire) are refused with typed errors, not panics.

use sqp_common::breaker::BreakerConfig;
use sqp_faults::{Chaos, ChaosProxy, FaultPlan};
use sqp_logsim::RawLogRecord;
use sqp_net::{
    EndpointConfig, EndpointSetError, NetServer, RemoteConfig, RemoteEngine, RemoteOutcome,
    ServerConfig,
};
use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn test_engine() -> Arc<ServeEngine> {
    let rec = |machine, ts, q: &str| RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    };
    let mut logs = Vec::new();
    for u in 0..10 {
        logs.push(rec(u, 100, "weather"));
        logs.push(rec(u, 130, "weather tomorrow"));
    }
    let cfg = TrainingConfig {
        model: ModelSpec::Adjacency,
        ..TrainingConfig::default()
    };
    Arc::new(ServeEngine::new(
        Arc::new(ModelSnapshot::from_raw_logs(&logs, &cfg)),
        EngineConfig::default(),
    ))
}

fn start_server() -> NetServer {
    NetServer::start(
        test_engine(),
        ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            ..ServerConfig::default()
        },
    )
    .expect("server start")
}

fn fast_remote_config() -> RemoteConfig {
    RemoteConfig {
        deadline: Duration::from_millis(600),
        attempt_timeout: Duration::from_millis(150),
        connect_timeout: Duration::from_millis(150),
        max_attempts: 2,
        breaker: BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(100),
        },
        ..RemoteConfig::default()
    }
}

/// Answered count of the endpoint at `addr`, or 0 if it left the set.
fn answered_at(remote: &RemoteEngine, addr: SocketAddr) -> u64 {
    remote
        .remote_stats()
        .endpoints
        .iter()
        .find(|ep| ep.serve_addr == addr)
        .map_or(0, |ep| ep.answered)
}

/// A user whose home endpoint is `addr` under the current set, found by
/// observing which endpoint's answered counter moves.
fn user_homed_at(remote: &RemoteEngine, addr: SocketAddr) -> u64 {
    for user in 0..256u64 {
        let before = answered_at(remote, addr);
        match remote.remote_suggest(user, 1, 1_000) {
            RemoteOutcome::Answered(_) => {}
            other => panic!("healthy tier must answer the probe, got {other:?}"),
        }
        if answered_at(remote, addr) > before {
            return user;
        }
    }
    panic!("no user out of 256 homed at {addr}");
}

#[test]
fn added_endpoint_takes_traffic_without_a_restart() {
    let a = start_server();
    let remote = RemoteEngine::connect(
        vec![EndpointConfig::serve_only(a.serve_addr())],
        fast_remote_config(),
    );
    assert_eq!(remote.endpoint_count(), 1);
    assert_eq!(remote.endpoint_generation(), 0);

    // Healthy single-endpoint baseline.
    match remote.remote_track_and_suggest(1, "weather", 1, 1_000) {
        RemoteOutcome::Answered(s) => assert_eq!(s[0].query, "weather tomorrow"),
        other => panic!("healthy endpoint must answer, got {other:?}"),
    }

    // Scale up at runtime: the very next operations can route to B.
    let b = start_server();
    let generation = remote
        .add_endpoint(EndpointConfig::serve_only(b.serve_addr()))
        .expect("add fresh endpoint");
    assert_eq!(generation, 1);
    assert_eq!(remote.endpoint_count(), 2);
    assert_eq!(
        remote.endpoint_addrs(),
        vec![a.serve_addr(), b.serve_addr()]
    );

    // With two endpoints some user homes on B; it answers with real
    // model content, proving traffic actually lands there.
    let user_b = user_homed_at(&remote, b.serve_addr());
    match remote.remote_track_and_suggest(user_b, "weather", 1, 2_000) {
        RemoteOutcome::Answered(s) => assert_eq!(s[0].query, "weather tomorrow"),
        other => panic!("added endpoint must answer, got {other:?}"),
    }

    // The pool was warmed before the swap: B's first routed operation
    // did not need a fresh connect beyond warmup.
    let stats = remote.remote_stats();
    let b_stats = stats
        .endpoints
        .iter()
        .find(|ep| ep.serve_addr == b.serve_addr())
        .expect("B is in the set");
    assert!(b_stats.answered >= 1);

    // Duplicate adds are refused, and refusals do not bump the
    // generation.
    assert_eq!(
        remote.add_endpoint(EndpointConfig::serve_only(b.serve_addr())),
        Err(EndpointSetError::AlreadyPresent(b.serve_addr()))
    );
    assert_eq!(remote.endpoint_generation(), 1);

    a.shutdown();
    b.shutdown();
}

#[test]
fn retire_waits_out_in_flight_operations_then_drains() {
    let a = start_server();
    let b = start_server();
    // B sits behind a chaos proxy so it can be black-holed mid-flight.
    let proxy = ChaosProxy::start(b.serve_addr(), Chaos::new(FaultPlan::quiet(11))).unwrap();

    let remote = Arc::new(RemoteEngine::connect(
        vec![
            EndpointConfig::serve_only(a.serve_addr()),
            EndpointConfig::serve_only(proxy.listen_addr()),
        ],
        fast_remote_config(),
    ));
    let user_b = user_homed_at(&remote, proxy.listen_addr());

    // Black-hole B and launch a non-retryable op homed there: it will
    // sit in flight until the attempt timeout expires.
    proxy.set_blackhole(true);
    let worker = {
        let remote = Arc::clone(&remote);
        std::thread::spawn(move || remote.remote_track(user_b, "weather", 3_000))
    };

    // The in-flight gauge must see the stuck operation.
    let mut saw_in_flight = false;
    for _ in 0..100 {
        let stats = remote.remote_stats();
        if stats
            .endpoints
            .iter()
            .any(|ep| ep.serve_addr == proxy.listen_addr() && ep.in_flight > 0)
        {
            saw_in_flight = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_in_flight, "the stuck track must register as in flight");

    // Retire B while its operation is still stuck. Retirement swaps the
    // set first, then waits the in-flight op out (bounded), then drains
    // the pool — it must return, not hang, even though B never answers.
    let generation = remote
        .retire_endpoint(proxy.listen_addr())
        .expect("retire under fire");
    assert_eq!(generation, 1);
    assert_eq!(remote.endpoint_count(), 1);
    assert_eq!(remote.endpoint_addrs(), vec![a.serve_addr()]);

    // The stuck op resolved as typed degradation (never re-sent), and
    // nothing is in flight against the retired endpoint anymore.
    match worker.join().expect("worker thread") {
        RemoteOutcome::Degraded(_) => {}
        other => panic!("black-holed track must degrade, got {other:?}"),
    }

    // Kill whatever the proxy still carries mid-drain: the engine no
    // longer references B, so this must be invisible to callers.
    proxy.kill_connections();

    // The user that homed on B is served by A now, first try, no
    // residual routing to the dead endpoint.
    let degraded_before = remote.remote_stats().degraded;
    for i in 0..10 {
        match remote.remote_suggest(user_b, 1, 4_000 + i) {
            RemoteOutcome::Answered(_) => {}
            other => panic!("survivor must absorb the traffic, got {other:?}"),
        }
    }
    assert_eq!(
        remote.remote_stats().degraded,
        degraded_before,
        "post-retire traffic must not degrade"
    );

    proxy.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn membership_refuses_the_degenerate_edges() {
    let a = start_server();
    let b = start_server();
    let remote = RemoteEngine::connect(
        vec![
            EndpointConfig::serve_only(a.serve_addr()),
            EndpointConfig::serve_only(b.serve_addr()),
        ],
        fast_remote_config(),
    );

    let unknown: SocketAddr = "127.0.0.1:1".parse().unwrap();
    assert_eq!(
        remote.retire_endpoint(unknown),
        Err(EndpointSetError::Unknown(unknown))
    );

    remote.retire_endpoint(b.serve_addr()).expect("retire B");
    assert_eq!(
        remote.retire_endpoint(a.serve_addr()),
        Err(EndpointSetError::LastEndpoint),
        "an empty tier cannot degrade, only error — refuse the last retire"
    );
    assert_eq!(remote.endpoint_count(), 1);

    // The refusals left the tier serviceable.
    match remote.remote_suggest(7, 1, 1_000) {
        RemoteOutcome::Answered(_) => {}
        other => panic!("survivor must still answer, got {other:?}"),
    }

    a.shutdown();
    b.shutdown();
}
