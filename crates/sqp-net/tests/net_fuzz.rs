//! Protocol robustness: a seeded sweep of malformed frames against a
//! **live** listener.
//!
//! Three corruption families, ≥10k cases total, all derived from one
//! seed: truncations (every stream prefix family), oversized length
//! prefixes, and single-byte corruptions of valid frames (which may
//! land anywhere — opcode, length prefix, varint, UTF-8). The contract
//! under test is the one `WIRE.md` §4 states: every case ends in a
//! typed `R_ERROR`, a normal reply, or a clean disconnect — never a
//! panic (checked via `NetServer::workers_alive` plus a final live
//! round trip) and never a hang (every client read is deadline-bounded,
//! and a timeout fails the test).
//!
//! Replayability: the per-case outcome (reply opcodes, error codes,
//! disconnect kind) is folded into an FNV-1a digest, and the whole
//! sweep runs **twice against two fresh servers**. Equal digests prove
//! the sweep is bit-replayable from its seed — a failure can be
//! reproduced by its case index alone.

use sqp_common::rng::{Rng, StdRng};
use sqp_logsim::RawLogRecord;
use sqp_net::wire::{self, BatchEntry};
use sqp_net::{NetServer, ServerConfig};
use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5EED_F4A2;
const CASES: usize = 10_240;
/// A read blocking longer than this counts as a hang and fails the test.
const HANG_DEADLINE: Duration = Duration::from_secs(10);
const MAX_FRAME: usize = 4096;

fn engine() -> Arc<ServeEngine> {
    let rec = |machine, ts, q: &str| RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    };
    let mut logs = Vec::new();
    for u in 0..8 {
        logs.push(rec(u, 100, "alpha"));
        logs.push(rec(u, 130, "alpha::next"));
    }
    let cfg = TrainingConfig {
        model: ModelSpec::Adjacency,
        ..TrainingConfig::default()
    };
    Arc::new(ServeEngine::new(
        Arc::new(ModelSnapshot::from_raw_logs(&logs, &cfg)),
        EngineConfig::default(),
    ))
}

/// Build one valid frame (prefix + body), opcode mix chosen by the rng.
fn valid_frame(rng: &mut StdRng) -> Vec<u8> {
    let mut body = Vec::new();
    match rng.random_range(0u64..7) {
        0 => wire::encode_track(&mut body, rng.next_u64(), "alpha", 100),
        1 => wire::encode_suggest(&mut body, rng.next_u64(), 3, 200),
        2 => wire::encode_track_suggest(&mut body, rng.next_u64(), "alpha", 3, 300),
        3 => {
            let entries: Vec<BatchEntry> = (0..rng.random_range(0u64..5))
                .map(|_| BatchEntry {
                    user: rng.next_u64(),
                    k: 2,
                })
                .collect();
            wire::encode_suggest_batch(&mut body, &entries, 400);
        }
        4 => wire::encode_stats(&mut body),
        5 => wire::encode_ping(&mut body),
        _ => wire::encode_evict(&mut body, 10_000),
    }
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    frame
}

/// Derive case `i`'s malformed byte stream. Deterministic in (seed, i).
fn malformed_case(rng: &mut StdRng) -> Vec<u8> {
    let mut frame = valid_frame(rng);
    match rng.random_range(0u64..4) {
        // Truncation: cut the stream anywhere strictly inside the frame.
        0 => {
            let cut = rng.random_range(0u64..frame.len() as u64) as usize;
            frame.truncate(cut);
        }
        // Oversized length prefix (bigger than the server's limit).
        1 => {
            let huge = (MAX_FRAME as u32) + 1 + (rng.next_u64() as u32 % 1_000_000);
            frame[..4].copy_from_slice(&huge.to_le_bytes());
        }
        // Zero length prefix, with the old body now desynchronized.
        2 => {
            frame[..4].copy_from_slice(&0u32.to_le_bytes());
        }
        // Single-byte corruption anywhere in the frame (prefix included).
        _ => {
            let at = rng.random_range(0u64..frame.len() as u64) as usize;
            let bit = 1u8 << (rng.random_range(0u64..8) as u8);
            frame[at] ^= bit;
        }
    }
    frame
}

/// Run one case: send the bytes, close the write half, then read
/// whatever comes back until the server closes. Returns outcome bytes
/// for the digest. Panics (failing the test) on a hang.
fn run_case(addr: SocketAddr, case: usize, bytes: &[u8]) -> Vec<u8> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(HANG_DEADLINE)).unwrap();
    stream.set_write_timeout(Some(HANG_DEADLINE)).unwrap();

    let mut stream = stream;
    // The server may close mid-send (e.g. after an oversized prefix);
    // a send error is part of the outcome, not a test failure.
    let send_err = stream.write_all(bytes).is_err();
    let _ = stream.shutdown(Shutdown::Write);

    let mut outcome = vec![u8::from(send_err)];
    let mut rbuf = Vec::new();
    loop {
        match sqp_net::frame::read_frame(&mut stream, &mut rbuf, MAX_FRAME) {
            Ok(sqp_net::frame::FrameRead::Frame) => {
                // Record the reply opcode; for typed errors, the code too.
                let op = rbuf.first().copied().unwrap_or(0);
                outcome.push(op);
                if op == wire::op::R_ERROR {
                    outcome.push(rbuf.get(1).copied().unwrap_or(0));
                }
                // Every reply frame must itself decode.
                wire::decode_reply(&rbuf)
                    .unwrap_or_else(|e| panic!("case {case}: server sent undecodable reply: {e}"));
            }
            Ok(sqp_net::frame::FrameRead::CleanEof) => {
                outcome.push(0xF0);
                break;
            }
            Ok(sqp_net::frame::FrameRead::Reject(_)) => {
                outcome.push(0xF1);
                break;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("case {case}: server hung (no reply, no close within deadline)");
            }
            Err(_) => {
                // Reset / torn close — a disconnect, which is allowed.
                outcome.push(0xF2);
                break;
            }
        }
    }
    outcome
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// One full sweep against a fresh server; returns the outcome digest.
fn sweep() -> u64 {
    let server = NetServer::start(
        engine(),
        ServerConfig {
            workers: 2,
            max_frame_len: MAX_FRAME,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = server.serve_addr();

    let mut rng = StdRng::seed_from_u64(SEED);
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for case in 0..CASES {
        let bytes = malformed_case(&mut rng);
        let outcome = run_case(addr, case, &bytes);
        fnv1a(&mut digest, &outcome);
        if case % 1024 == 0 {
            assert!(
                server.workers_alive(),
                "a worker died (panicked) before case {case}"
            );
        }
    }

    // After 10k+ malformed conversations the server must still be fully
    // alive: no dead workers, and a fresh client gets real answers.
    assert!(server.workers_alive(), "a worker died during the sweep");
    let mut client = sqp_net::NetClient::connect_timeout(addr, HANG_DEADLINE).unwrap();
    client.ping().expect("server must still answer pings");
    match client.track_and_suggest(99, "alpha", 1, 50_000).unwrap() {
        sqp_net::ServeAnswer::Suggestions(s) => {
            assert_eq!(s[0].query, "alpha::next", "model still serving");
        }
        sqp_net::ServeAnswer::Overloaded { .. } => panic!("no admission limit configured"),
    }
    let stats = server.stats();
    assert!(
        stats.protocol_errors > 0,
        "a malformed sweep must produce typed protocol errors"
    );

    server.shutdown();
    digest
}

#[test]
fn malformed_frame_sweep_never_panics_or_hangs_and_replays_bit_identically() {
    let first = sweep();
    let second = sweep();
    assert_eq!(
        first, second,
        "outcome digest must replay bit-identically from seed {SEED:#x}"
    );
}
