//! Reconnect and error-typing coverage for the remote tier.
//!
//! Two things a resilient client must get right about a *restarting*
//! server: (1) report the failure window with typed, cause-split errors
//! (`Refused` ≠ `Timeout` ≠ `Disconnected` — their retry policies
//! differ), and (2) recover on its own once the endpoint is back, with
//! nothing caller-visible beyond typed degraded outcomes in between.
//!
//! The restart happens on the **same port**, which is the operationally
//! interesting case: it only works because `RemoteEngine::drain_pools`
//! makes the *client* side close first (so the dying server's sockets
//! skip `TIME_WAIT` and the port frees immediately).

use sqp_common::breaker::{BreakerConfig, BreakerState};
use sqp_faults::{Chaos, ChaosProxy, FaultPlan};
use sqp_logsim::RawLogRecord;
use sqp_net::{
    EndpointConfig, NetClient, NetError, NetServer, RemoteConfig, RemoteEngine, RemoteOutcome,
    ServerConfig,
};
use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

fn test_engine() -> Arc<ServeEngine> {
    let rec = |machine, ts, q: &str| RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    };
    let mut logs = Vec::new();
    for u in 0..10 {
        logs.push(rec(u, 100, "weather"));
        logs.push(rec(u, 130, "weather tomorrow"));
    }
    let cfg = TrainingConfig {
        model: ModelSpec::Adjacency,
        ..TrainingConfig::default()
    };
    Arc::new(ServeEngine::new(
        Arc::new(ModelSnapshot::from_raw_logs(&logs, &cfg)),
        EngineConfig::default(),
    ))
}

fn start_server(addr: SocketAddr) -> NetServer {
    NetServer::start(
        test_engine(),
        ServerConfig {
            addr,
            ..ServerConfig::default()
        },
    )
    .expect("server start")
}

/// Bind-retry: the port should be free immediately after a drained
/// shutdown, but give the OS a grace window anyway.
fn restart_server(addr: SocketAddr) -> NetServer {
    for _ in 0..100 {
        match NetServer::start(
            test_engine(),
            ServerConfig {
                addr,
                ..ServerConfig::default()
            },
        ) {
            Ok(server) => return server,
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    panic!("port {addr} did not free up after drained shutdown");
}

#[test]
fn bare_client_reports_split_errors_by_cause() {
    // Refused: a port that *was* bound and no longer is — nothing
    // listening means the request certainly never executed.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let Err(err) = NetClient::connect_timeout(dead_addr, Duration::from_millis(500)) else {
        panic!("nothing is listening; connect must fail");
    };
    assert!(
        matches!(NetError::from(err), NetError::Refused(_)),
        "dead port must classify as Refused"
    );

    // Timeout: a black-holed endpoint accepts bytes and never answers;
    // only the client's own read deadline ends the wait.
    let server = start_server("127.0.0.1:0".parse().unwrap());
    let proxy = ChaosProxy::start(server.serve_addr(), Chaos::new(FaultPlan::quiet(7))).unwrap();
    proxy.set_blackhole(true);
    let mut client =
        NetClient::connect_timeout(proxy.listen_addr(), Duration::from_millis(250)).unwrap();
    match client.ping() {
        Err(NetError::Timeout(_)) => {}
        other => panic!("black hole must classify as Timeout, got {other:?}"),
    }
    proxy.shutdown();

    // Disconnected: a reply torn mid-frame (EOF inside the body).
    let torn_proxy = ChaosProxy::start(
        server.serve_addr(),
        Chaos::new(FaultPlan {
            seed: 7,
            truncate_frame_s2c_on: vec![1],
            ..FaultPlan::default()
        }),
    )
    .unwrap();
    let mut client =
        NetClient::connect_timeout(torn_proxy.listen_addr(), Duration::from_secs(2)).unwrap();
    match client.ping() {
        Err(NetError::Disconnected) => {}
        other => panic!("torn reply must classify as Disconnected, got {other:?}"),
    }
    torn_proxy.shutdown();
    server.shutdown();
}

#[test]
fn remote_engine_recovers_across_same_port_server_restart() {
    let server = start_server("127.0.0.1:0".parse().unwrap());
    let addr = server.serve_addr();

    let remote = RemoteEngine::connect(
        vec![EndpointConfig::serve_only(addr)],
        RemoteConfig {
            deadline: Duration::from_millis(600),
            attempt_timeout: Duration::from_millis(150),
            connect_timeout: Duration::from_millis(150),
            max_attempts: 2,
            breaker: BreakerConfig {
                threshold: 1,
                cooldown: Duration::from_millis(100),
            },
            ..RemoteConfig::default()
        },
    );

    // Healthy: answered, with real model content.
    match remote.remote_track_and_suggest(1, "weather", 1, 1_000) {
        RemoteOutcome::Answered(s) => assert_eq!(s[0].query, "weather tomorrow"),
        other => panic!("healthy endpoint must answer, got {other:?}"),
    }

    // Drain BEFORE the server dies: the client closes every pooled
    // connection, so the server side never enters TIME_WAIT and the port
    // frees the moment the listener closes.
    remote.drain_pools();
    server.shutdown();

    // Down: every outcome in the window is *typed* degradation — no
    // panic, no hang, no untyped error — and the breaker trips open.
    let mut degraded_seen = 0;
    for i in 0..5 {
        match remote.remote_suggest(i, 1, 2_000) {
            RemoteOutcome::Degraded(_) => degraded_seen += 1,
            RemoteOutcome::Answered(_) | RemoteOutcome::Shed { .. } => {
                panic!("dead endpoint cannot answer")
            }
        }
    }
    assert_eq!(degraded_seen, 5);
    let down = remote.endpoint_breaker(0);
    assert!(down.trips >= 1, "breaker must have tripped: {down:?}");

    // Revive on the SAME port, then let breaker cooldown + half-open
    // probing re-admit it.
    let server = restart_server(addr);
    let mut recovered = false;
    for _ in 0..100 {
        if remote.remote_ping().is_answered() {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(recovered, "remote engine must recover after restart");

    // Fully recovered: breaker closed again, recovery counted, answers
    // carry model content from the revived process.
    match remote.remote_track_and_suggest(2, "weather", 1, 3_000) {
        RemoteOutcome::Answered(s) => assert_eq!(s[0].query, "weather tomorrow"),
        other => panic!("revived endpoint must answer, got {other:?}"),
    }
    let up = remote.endpoint_breaker(0);
    assert_eq!(up.state, BreakerState::Closed);
    assert!(up.recoveries >= 1, "half-open probe must have closed it");

    let stats = remote.remote_stats();
    assert!(stats.degraded >= 5);
    assert!(stats.reconnects >= 1, "recovery implies a fresh connection");
    server.shutdown();
}
