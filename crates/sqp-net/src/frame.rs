//! Frame transport: `u32` little-endian length prefix + body, over any
//! `Read`/`Write` pair.
//!
//! The read path distinguishes the three ways a stream can stop making
//! sense — a clean EOF **between** frames (normal disconnect), an EOF
//! **inside** a frame (torn write / dropped peer), and a length prefix the
//! receiver refuses (zero or over-limit) — because a server reacts
//! differently to each: close silently, close silently, or send a typed
//! `R_ERROR` and then close. The body buffer is caller-owned and reused
//! across frames, so steady-state reads allocate nothing once the buffer
//! has grown to the connection's working frame size.

use crate::wire::{WireError, LEN_PREFIX};
use std::io::{self, Read, Write};

/// Outcome of one [`read_frame`] call.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame body now fills the caller's buffer.
    Frame,
    /// The peer closed the stream cleanly at a frame boundary.
    CleanEof,
    /// The length prefix was unacceptable; **no body bytes were
    /// consumed**, so the stream is desynchronized and must be closed
    /// (after optionally sending the typed error).
    Reject(WireError),
}

/// Read one frame body into `buf` (cleared and resized by this call).
///
/// Returns [`FrameRead::CleanEof`] only when the stream ends exactly at a
/// frame boundary; an EOF mid-prefix or mid-body surfaces as an
/// [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>, max_body: usize) -> io::Result<FrameRead> {
    let mut prefix = [0u8; LEN_PREFIX];
    let mut got = 0;
    while got < LEN_PREFIX {
        match r.read(&mut prefix[got..])? {
            0 if got == 0 => return Ok(FrameRead::CleanEof),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 {
        return Ok(FrameRead::Reject(WireError::EmptyFrame));
    }
    if len > max_body {
        return Ok(FrameRead::Reject(WireError::FrameTooLarge {
            len: len as u64,
            max: max_body as u64,
        }));
    }
    // `len` is bounded by `max_body`, so this resize cannot be driven
    // past the configured limit by a hostile prefix; once the buffer has
    // grown to the connection's working size it is a plain truncate.
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(FrameRead::Frame)
}

/// Write one frame (`prefix + body`) and flush.
///
/// The body must already be a complete wire message; its length is
/// checked against `max_body` so a server never emits a frame its own
/// reader would refuse.
pub fn write_frame(w: &mut impl Write, body: &[u8], max_body: usize) -> io::Result<()> {
    debug_assert!(!body.is_empty(), "a frame body always carries an opcode");
    if body.len() > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            WireError::FrameTooLarge {
                len: body.len() as u64,
                max: max_body as u64,
            },
        ));
    }
    let prefix = (body.len() as u32).to_le_bytes();
    // One vectored write puts prefix+body into the kernel buffer in a
    // single syscall — under TCP_NODELAY that is also a single segment on
    // the wire, so a reader never observes a torn prefix from a flushed
    // writer. Partial writes (rare on blocking sockets) finish plainly.
    let slices = [io::IoSlice::new(&prefix), io::IoSlice::new(body)];
    let total = LEN_PREFIX + body.len();
    let mut written = w.write_vectored(&slices)?;
    while written < total {
        let n = if written < LEN_PREFIX {
            w.write(&prefix[written..])?
        } else {
            w.write(&body[written - LEN_PREFIX..])?
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "stream refused frame bytes",
            ));
        }
        written += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_and_boundary_eof() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"\x05hello", 64).unwrap();
        write_frame(&mut stream, b"\x06", 64).unwrap();

        let mut r = Cursor::new(stream);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf, 64).unwrap(),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"\x05hello");
        assert!(matches!(
            read_frame(&mut r, &mut buf, 64).unwrap(),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"\x06");
        assert!(matches!(
            read_frame(&mut r, &mut buf, 64).unwrap(),
            FrameRead::CleanEof
        ));
    }

    #[test]
    fn torn_frames_are_unexpected_eof() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"\x05hello", 64).unwrap();
        let mut buf = Vec::new();
        // Every strict prefix that is not a frame boundary must error.
        for cut in 1..stream.len() {
            let mut r = Cursor::new(&stream[..cut]);
            let err = read_frame(&mut r, &mut buf, 64).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn zero_and_oversized_prefixes_are_rejected_without_reading_bodies() {
        let mut buf = Vec::new();

        let mut r = Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut r, &mut buf, 64).unwrap(),
            FrameRead::Reject(WireError::EmptyFrame)
        ));

        let mut huge = (1_000_000u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 8]);
        let mut r = Cursor::new(huge);
        assert!(matches!(
            read_frame(&mut r, &mut buf, 64).unwrap(),
            FrameRead::Reject(WireError::FrameTooLarge {
                len: 1_000_000,
                max: 64
            })
        ));
        // The reject consumed only the prefix.
        assert_eq!(r.position(), 4);

        // And the writer refuses to emit what a reader would refuse.
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &[0u8; 65], 64).is_err());
    }
}
