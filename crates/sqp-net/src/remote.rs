//! [`RemoteEngine`]: a resilient cross-process serving tier.
//!
//! `RemoteEngine` implements [`ServeSurface`] (and [`AdminSurface`]) over
//! one or more [`NetClient`] endpoints, so a *remote* server tier is a
//! drop-in replacement for an in-process [`ServeEngine`](sqp_serve::ServeEngine)
//! anywhere the workspace is generic over the surface trait — the
//! `serve_loop` stress harness, benchmarks, operators polling stats.
//! Unlike a bare `NetClient`, it is resilient by construction:
//!
//! * **Deadlines** — every operation carries a wall-clock deadline threaded
//!   through the [`Clock`] seam; connects, reads, and writes are all
//!   bounded by the remaining budget, so a black-holed endpoint costs at
//!   most the deadline, never a hung worker.
//! * **Retries with backoff** — failed attempts retry with capped
//!   exponential backoff and deterministic per-operation jitter, but only
//!   for idempotent operations (`SUGGEST`, `SUGGEST_BATCH`, `STATS`,
//!   `PING`, `EVICT`). `TRACK`/`TRACK_SUGGEST` mutate session state, and a
//!   transport failure after the request bytes left the socket is
//!   ambiguous — the server may have executed it — so those are **never
//!   re-sent**; the caller gets a typed degraded outcome instead of a
//!   silent double-track.
//! * **Per-endpoint circuit breakers** — the shared
//!   [`sqp_common::breaker::Breaker`] (same state machine as the
//!   supervised retrain loop) trips a flapping endpoint out of rotation;
//!   after a cooldown one half-open probe decides between recovery and
//!   re-tripping.
//! * **Failover** — when the home endpoint (chosen by user hash, so
//!   session affinity holds while healthy) is open or failing, attempts
//!   move to the next healthy endpoint.
//! * **Typed degradation, not errors** — when every endpoint is down the
//!   outcome is [`RemoteOutcome::Degraded`] with a
//!   [`DegradedReason`]; through the `ServeSurface` mapping that becomes
//!   an *empty suggestion list* plus a counter, because a search box with
//!   no suggestions is degraded service, while a search box that throws
//!   is an outage.
//!
//! Connections are pooled per endpoint (warmup at construction, reconnect
//! on demand, capped checkin), so steady state pays one connect per pooled
//! slot, not per request.
//!
//! # Live endpoint membership
//!
//! The endpoint set is held in a [`Swap`] — the same publication cell the
//! serve tier uses for model snapshots — so it can change **at runtime,
//! under traffic**, with one pointer swap and zero locks on the serving
//! path. Every operation loads the snapshot once and runs its whole
//! deadline/retry/failover scan against that consistent view:
//!
//! * [`add_endpoint`](RemoteEngine::add_endpoint) builds a new endpoint
//!   (best-effort pool warmup, fresh breaker) and swaps in a superset
//!   vector; the very next operation can route to it.
//! * [`retire_endpoint`](RemoteEngine::retire_endpoint) swaps the
//!   endpoint *out* first — no new operation will scan it — then waits
//!   out its in-flight operations (bounded by one operation's worst case,
//!   `deadline + attempt_timeout`), then drains its connection pool so
//!   the client side initiates every TCP close. Retiring the last
//!   endpoint is refused: an empty tier cannot degrade gracefully, it can
//!   only error.
//!
//! Operations that raced the swap and still hold the old snapshot may
//! make one final attempt against a retired endpoint; that attempt either
//! completes (the wait covers it) or fails and the normal failover path
//! absorbs it. A straggler that begins only after the wait sampled zero
//! cannot park a connection either: checkin on a retired endpoint drops
//! the connection (a client-side close) instead of pooling it, so no
//! live connection outlasts the straggler's own bounded lifetime.
//! Membership changes serialize on a control-plane mutex that serving
//! never touches.

use crate::admin::AdminSurface;
use crate::client::{BatchAnswer, NetClient, NetError, ServeAnswer};
use crate::wire::{BatchEntry, RollSummary, WireStats};
use sqp_common::breaker::{Admission, Backoff, Breaker, BreakerConfig, BreakerStats};
use sqp_common::clock::{Clock, RealClock};
use sqp_common::hash::FxHasher;
use sqp_serve::TrackOutcome;
use sqp_serve::{
    EngineStats, ModelSnapshot, Overloaded, ServeSurface, SuggestRequest, Suggestion, Swap,
};
use sqp_store::{save_snapshot, SnapshotMeta};
use std::fmt;
use std::hash::Hasher;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// One remote endpoint: its public serve port and (optionally) its admin
/// port for snapshot publication.
#[derive(Clone, Copy, Debug)]
pub struct EndpointConfig {
    /// The endpoint's serve listener.
    pub serve_addr: SocketAddr,
    /// The endpoint's admin listener; `None` opts this endpoint out of
    /// admin fan-out ([`AdminSurface`] / [`ServeSurface::publish`]).
    pub admin_addr: Option<SocketAddr>,
}

impl EndpointConfig {
    /// A serve-only endpoint (no admin port).
    pub fn serve_only(serve_addr: SocketAddr) -> Self {
        Self {
            serve_addr,
            admin_addr: None,
        }
    }
}

/// Resilience parameters of a [`RemoteEngine`].
#[derive(Clone, Debug)]
pub struct RemoteConfig {
    /// Wall-clock budget for one operation, covering all retries,
    /// failovers, and backoff sleeps. No caller blocks meaningfully past
    /// this (worst case: deadline + one attempt timeout granted just
    /// before expiry).
    pub deadline: Duration,
    /// Read/write bound for a single attempt on one connection (clamped
    /// to the remaining deadline).
    pub attempt_timeout: Duration,
    /// Bound for establishing one fresh connection (clamped to the
    /// remaining deadline).
    pub connect_timeout: Duration,
    /// Attempts per operation (min 1) across all endpoints before the
    /// operation degrades.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub backoff_initial: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Fraction in `[0, 1]` by which backoff delays are jittered downward
    /// (deterministically, from `seed`).
    pub backoff_jitter: f64,
    /// Per-endpoint circuit breaker (trip threshold + cooldown).
    pub breaker: BreakerConfig,
    /// Connections opened per endpoint at construction (best-effort).
    pub pool_warmup: usize,
    /// Idle connections kept per endpoint; extras close on checkin.
    pub pool_cap: usize,
    /// Seed for backoff jitter streams (replayable chaos runs fix this).
    pub seed: u64,
    /// Where [`ServeSurface::publish`] spools snapshots before admin
    /// fan-out. The path must be readable by the *servers* (shared or
    /// local filesystem); `None` makes `publish` a counted no-op.
    pub spool_dir: Option<PathBuf>,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            attempt_timeout: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(250),
            max_attempts: 4,
            backoff_initial: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            backoff_jitter: 0.5,
            breaker: BreakerConfig {
                threshold: 3,
                cooldown: Duration::from_millis(500),
            },
            pool_warmup: 1,
            pool_cap: 4,
            seed: 0,
            spool_dir: None,
        }
    }
}

/// Why an operation returned no answer. The distinction matters to the
/// caller's bookkeeping: `NotRetryable` means the request *may have
/// executed* on the server; the other two mean it certainly did not.
#[derive(Debug)]
pub enum DegradedReason {
    /// Every endpoint's breaker refused admission — the whole tier is
    /// resting after repeated failures. Fast-fail: no connection was
    /// attempted.
    AllBreakersOpen,
    /// The deadline or attempt budget ran out before any endpoint
    /// answered.
    DeadlineExhausted {
        /// The failure that ended the last attempt, if one was made.
        last_error: Option<NetError>,
    },
    /// A non-idempotent operation failed after its bytes may have reached
    /// the server; re-sending could double-apply it, so the operation
    /// degrades instead.
    NotRetryable {
        /// The failure on the attempt that was not retried.
        error: NetError,
    },
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedReason::AllBreakersOpen => write!(f, "all endpoint breakers open"),
            DegradedReason::DeadlineExhausted {
                last_error: Some(e),
            } => {
                write!(f, "deadline exhausted (last error: {e})")
            }
            DegradedReason::DeadlineExhausted { last_error: None } => {
                write!(f, "deadline exhausted")
            }
            DegradedReason::NotRetryable { error } => {
                write!(f, "not retryable after possible send: {error}")
            }
        }
    }
}

/// Typed outcome of one remote operation: the three-way split the soak
/// harness counts (`answered + shed + degraded == sent`).
#[derive(Debug)]
pub enum RemoteOutcome<T> {
    /// An endpoint answered.
    Answered(T),
    /// An endpoint answered with a typed shed (server queue or engine
    /// admission budget — `limit` 0 means queue).
    Shed {
        /// The exhausted budget, or 0 for a server-queue shed.
        limit: u64,
    },
    /// No endpoint answered; serving degrades instead of erroring.
    Degraded(DegradedReason),
}

impl<T> RemoteOutcome<T> {
    /// True for [`RemoteOutcome::Answered`].
    pub fn is_answered(&self) -> bool {
        matches!(self, RemoteOutcome::Answered(_))
    }
    /// True for [`RemoteOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, RemoteOutcome::Degraded(_))
    }
}

/// Point-in-time client-side view of one endpoint.
#[derive(Clone, Debug)]
pub struct EndpointStats {
    /// The endpoint's serve address.
    pub serve_addr: SocketAddr,
    /// Breaker position and counters.
    pub breaker: BreakerStats,
    /// Attempts this endpoint answered (including typed sheds).
    pub answered: u64,
    /// Attempts that timed out (connect or I/O deadline).
    pub timeouts: u64,
    /// Connects actively refused.
    pub refused: u64,
    /// Connections that dropped mid-request or mid-frame.
    pub disconnects: u64,
    /// Other failed attempts (wire decode, unexpected reply, other I/O).
    pub other_errors: u64,
    /// Idle pooled connections right now.
    pub pooled: usize,
    /// Operations executing against this endpoint right now — what
    /// retirement waits to reach zero.
    pub in_flight: u64,
}

/// Client-side counters of a [`RemoteEngine`] — what an operator reads to
/// answer "is this tier healthy, and if not, which endpoint is the
/// problem?".
#[derive(Clone, Debug)]
pub struct RemoteStats {
    /// Operations that degraded (no endpoint answered).
    pub degraded: u64,
    /// Attempts served by a non-home endpoint.
    pub failovers: u64,
    /// Second-and-later attempts across all operations.
    pub retries: u64,
    /// Fresh connections established after construction-time warmup.
    pub reconnects: u64,
    /// Typed sheds observed (mapped to [`Overloaded`] on the `try_*`
    /// surface forms).
    pub sheds: u64,
    /// `publish` calls dropped because no spool directory is configured.
    pub publishes_skipped: u64,
    /// Per-endpoint detail.
    pub endpoints: Vec<EndpointStats>,
}

#[derive(Default)]
struct EndpointCounters {
    answered: AtomicU64,
    timeouts: AtomicU64,
    refused: AtomicU64,
    disconnects: AtomicU64,
    other_errors: AtomicU64,
}

struct Endpoint {
    serve_addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    pool: Mutex<Vec<NetClient>>,
    breaker: Breaker,
    counters: EndpointCounters,
    /// Operations currently executing against this endpoint (between
    /// checkout and checkin/drop). Retirement waits for this to reach
    /// zero before draining the pool.
    in_flight: AtomicU64,
    /// Set by [`RemoteEngine::retire_endpoint`] right after the swap.
    /// The in-flight wait can miss an operation that loaded the old
    /// snapshot but had not reached `begin_op` when the wait sampled
    /// zero; this flag makes such a straggler's checkin *drop* its
    /// connection instead of pooling it, so every connection to a
    /// retired endpoint is still client-closed within one operation's
    /// bounded lifetime rather than parked in a pool nothing drains.
    retired: AtomicBool,
}

impl Endpoint {
    /// A fresh endpoint with a closed breaker and a best-effort warm
    /// pool (endpoints that are down simply start with an empty pool).
    fn connect(cfg: EndpointConfig, remote: &RemoteConfig) -> Self {
        let ep = Self {
            serve_addr: cfg.serve_addr,
            admin_addr: cfg.admin_addr,
            pool: Mutex::new(Vec::new()),
            breaker: Breaker::new(remote.breaker),
            counters: EndpointCounters::default(),
            in_flight: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        };
        {
            let mut pool = ep.lock_pool();
            for _ in 0..remote.pool_warmup.min(remote.pool_cap) {
                match NetClient::connect_timeout(ep.serve_addr, remote.connect_timeout) {
                    Ok(client) => pool.push(client),
                    Err(_) => break,
                }
            }
        }
        ep
    }

    fn lock_pool(&self) -> MutexGuard<'_, Vec<NetClient>> {
        // A poisoned pool lock only guards plain connections; recover it.
        self.pool.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn count_error(&self, err: &NetError) {
        let counter = match err {
            NetError::Timeout(_) => &self.counters.timeouts,
            NetError::Refused(_) => &self.counters.refused,
            NetError::Disconnected => &self.counters.disconnects,
            _ => &self.counters.other_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn begin_op(&self) -> InFlightOp<'_> {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        InFlightOp(&self.in_flight)
    }
}

/// Scope guard for [`Endpoint::in_flight`]: decrement on every exit path,
/// including panics, so a wedged op can never pin retirement forever.
struct InFlightOp<'a>(&'a AtomicU64);

impl Drop for InFlightOp<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Why a runtime endpoint-set change was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EndpointSetError {
    /// [`add_endpoint`](RemoteEngine::add_endpoint) of a serve address
    /// already in the set — endpoints are keyed by serve address.
    AlreadyPresent(SocketAddr),
    /// [`retire_endpoint`](RemoteEngine::retire_endpoint) of an address
    /// not in the set.
    Unknown(SocketAddr),
    /// Retiring the only endpoint: a tier with zero endpoints cannot
    /// degrade, it can only error, so the last one is never removable.
    LastEndpoint,
}

impl fmt::Display for EndpointSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointSetError::AlreadyPresent(addr) => {
                write!(f, "endpoint {addr} is already in the set")
            }
            EndpointSetError::Unknown(addr) => write!(f, "endpoint {addr} is not in the set"),
            EndpointSetError::LastEndpoint => write!(f, "cannot retire the last endpoint"),
        }
    }
}

impl std::error::Error for EndpointSetError {}

/// Idempotency of one wire operation — decides retry policy.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Retryable {
    /// Safe to re-send after any failure (`SUGGEST`, `STATS`, `PING`, …).
    Yes,
    /// Only safe to retry failures that prove the request never left
    /// (`TRACK`, `TRACK_SUGGEST`).
    ConnectOnly,
}

/// A resilient [`ServeSurface`] over remote [`NetServer`](crate::NetServer)
/// endpoints. See the [module docs](self) for the resilience model.
pub struct RemoteEngine {
    cfg: RemoteConfig,
    clock: Arc<dyn Clock>,
    /// The live endpoint set: swapped as one immutable vector, loaded
    /// once per operation. The [`Swap`] generation counts membership
    /// changes. Serving never locks this; membership verbs serialize on
    /// `membership` and publish through one pointer swap.
    endpoints: Swap<Vec<Arc<Endpoint>>>,
    /// Serializes [`add_endpoint`](Self::add_endpoint) /
    /// [`retire_endpoint`](Self::retire_endpoint); never touched by the
    /// serving path.
    membership: Mutex<()>,
    /// Monotonic operation counter: round-robin cursor for user-less
    /// operations and jitter-stream selector for backoff.
    op_seq: AtomicU64,
    spool_seq: AtomicU64,
    degraded: AtomicU64,
    failovers: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    sheds: AtomicU64,
    publishes_skipped: AtomicU64,
}

impl RemoteEngine {
    /// A remote engine over `endpoints` on the production clock, with
    /// best-effort pool warmup ([`RemoteConfig::pool_warmup`] connections
    /// per endpoint; endpoints that are down at construction simply start
    /// with empty pools).
    pub fn connect(endpoints: Vec<EndpointConfig>, cfg: RemoteConfig) -> Self {
        Self::with_clock(endpoints, cfg, Arc::new(RealClock))
    }

    /// [`connect`](Self::connect) with an explicit clock seam — what
    /// deterministic harnesses use to make deadlines and cooldowns
    /// virtual.
    pub fn with_clock(
        endpoints: Vec<EndpointConfig>,
        cfg: RemoteConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        assert!(!endpoints.is_empty(), "a RemoteEngine needs >= 1 endpoint");
        let endpoints: Vec<Arc<Endpoint>> = endpoints
            .into_iter()
            .map(|e| Arc::new(Endpoint::connect(e, &cfg)))
            .collect();
        Self {
            cfg,
            clock,
            endpoints: Swap::new(Arc::new(endpoints)),
            membership: Mutex::new(()),
            op_seq: AtomicU64::new(0),
            spool_seq: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            publishes_skipped: AtomicU64::new(0),
        }
    }

    /// The current endpoint snapshot: one load, then a consistent view
    /// for the whole operation regardless of concurrent membership
    /// changes.
    fn snapshot(&self) -> Arc<Vec<Arc<Endpoint>>> {
        self.endpoints.load()
    }

    /// Endpoints in the live set right now.
    pub fn endpoint_count(&self) -> usize {
        self.snapshot().len()
    }

    /// Serve addresses of the live set, in scan order.
    pub fn endpoint_addrs(&self) -> Vec<SocketAddr> {
        self.snapshot().iter().map(|ep| ep.serve_addr).collect()
    }

    /// Membership generation: 0 at construction, +1 per successful
    /// [`add_endpoint`](Self::add_endpoint) or
    /// [`retire_endpoint`](Self::retire_endpoint).
    pub fn endpoint_generation(&self) -> u64 {
        self.endpoints.generation()
    }

    /// Add a new endpoint to the live set, under traffic.
    ///
    /// The endpoint gets a fresh (closed) breaker and a best-effort warm
    /// pool before it is swapped in, so its first routed operation pays
    /// no connect in the common case. Returns the new membership
    /// generation. Refuses a serve address already in the set — the set
    /// is keyed by serve address.
    pub fn add_endpoint(&self, endpoint: EndpointConfig) -> Result<u64, EndpointSetError> {
        let _guard = self.lock_membership();
        let current = self.snapshot();
        if current
            .iter()
            .any(|ep| ep.serve_addr == endpoint.serve_addr)
        {
            return Err(EndpointSetError::AlreadyPresent(endpoint.serve_addr));
        }
        // Warm up outside any serving path; only the control plane waits.
        let fresh = Arc::new(Endpoint::connect(endpoint, &self.cfg));
        let mut next = current.as_ref().clone();
        next.push(fresh);
        Ok(self.endpoints.store(Arc::new(next)))
    }

    /// Retire an endpoint from the live set, under traffic.
    ///
    /// Four steps, in an order that bounds what traffic can observe:
    /// the endpoint is swapped out **first** (no new operation scans
    /// it), then marked retired (any later checkin on it drops the
    /// connection instead of pooling it), then its in-flight operations
    /// are waited out (bounded by one operation's worst case,
    /// `deadline + attempt_timeout`, through the [`Clock`] seam), then
    /// its connection pool is drained. The client therefore initiates
    /// every TCP close: pooled connections close in the drain, and a
    /// straggler that raced the swap — old snapshot loaded, `begin_op`
    /// not yet reached when the wait sampled zero — closes its own
    /// connection at checkin, within its bounded lifetime. Refuses to
    /// retire the last endpoint. Returns the new membership generation.
    pub fn retire_endpoint(&self, serve_addr: SocketAddr) -> Result<u64, EndpointSetError> {
        let _guard = self.lock_membership();
        let current = self.snapshot();
        let Some(at) = current.iter().position(|ep| ep.serve_addr == serve_addr) else {
            return Err(EndpointSetError::Unknown(serve_addr));
        };
        if current.len() == 1 {
            return Err(EndpointSetError::LastEndpoint);
        }
        let victim = Arc::clone(&current[at]);
        let mut next = current.as_ref().clone();
        next.remove(at);
        let generation = self.endpoints.store(Arc::new(next));
        // From here every checkin on the victim drops its connection
        // instead of pooling it — the backstop for an operation that
        // loaded the old snapshot but had not yet reached `begin_op`
        // when the wait below sampled zero.
        victim.retired.store(true, Ordering::Release);

        // Wait out operations that already hold the old snapshot. One
        // operation lives at most deadline + one attempt timeout, so a
        // bounded poll cannot hang the control plane on a wedged socket.
        let bound = self
            .cfg
            .deadline
            .saturating_add(self.cfg.attempt_timeout)
            .as_millis() as u64;
        let start = self.clock.now_millis();
        while victim.in_flight.load(Ordering::Acquire) > 0
            && self.clock.now_millis().saturating_sub(start) < bound
        {
            self.clock.sleep(Duration::from_millis(2));
        }
        victim.lock_pool().clear();
        Ok(generation)
    }

    fn lock_membership(&self) -> MutexGuard<'_, ()> {
        // The membership lock guards no data, only ordering; recover it.
        self.membership
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Client-side counters plus per-endpoint breaker and pool detail.
    pub fn remote_stats(&self) -> RemoteStats {
        RemoteStats {
            degraded: self.degraded.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            publishes_skipped: self.publishes_skipped.load(Ordering::Relaxed),
            endpoints: self
                .snapshot()
                .iter()
                .map(|ep| EndpointStats {
                    serve_addr: ep.serve_addr,
                    breaker: ep.breaker.stats(),
                    answered: ep.counters.answered.load(Ordering::Relaxed),
                    timeouts: ep.counters.timeouts.load(Ordering::Relaxed),
                    refused: ep.counters.refused.load(Ordering::Relaxed),
                    disconnects: ep.counters.disconnects.load(Ordering::Relaxed),
                    other_errors: ep.counters.other_errors.load(Ordering::Relaxed),
                    pooled: ep.lock_pool().len(),
                    in_flight: ep.in_flight.load(Ordering::Acquire),
                })
                .collect(),
        }
    }

    /// Breaker position/counters of endpoint `index` in the current
    /// snapshot (panics out of range) — what tests assert
    /// open→half-open→closed transitions on.
    pub fn endpoint_breaker(&self, index: usize) -> BreakerStats {
        self.snapshot()[index].breaker.stats()
    }

    /// Close every pooled connection on every endpoint.
    ///
    /// Operationally this is the **drain** step: dropping the connections
    /// here makes the *client* side initiate the TCP close, so the
    /// server's sockets leave `ESTABLISHED` without the server holding
    /// `TIME_WAIT` — which is exactly what lets a drained server restart
    /// on the same port immediately.
    pub fn drain_pools(&self) {
        for ep in self.snapshot().iter() {
            ep.lock_pool().clear();
        }
    }

    fn home_index(&self, user: Option<u64>, n: usize) -> usize {
        match user {
            Some(u) => {
                let mut h = FxHasher::default();
                h.write_u64(u);
                (h.finish() % n as u64) as usize
            }
            None => (self.op_seq.load(Ordering::Relaxed) % n as u64) as usize,
        }
    }

    fn checkout(&self, ep: &Endpoint, budget: Duration) -> Result<NetClient, NetError> {
        if let Some(client) = ep.lock_pool().pop() {
            return Ok(client);
        }
        let timeout = self.cfg.connect_timeout.min(budget);
        let client = NetClient::connect_timeout(ep.serve_addr, timeout)?;
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        Ok(client)
    }

    fn checkin(&self, ep: &Endpoint, client: NetClient) {
        let pool = &mut *ep.lock_pool();
        // Checked under the pool lock: retire sets the flag *before* its
        // final pool drain, so a checkin that acquires the lock after the
        // drain necessarily observes the flag and drops (client-closes)
        // the connection, while one that acquires it before is cleared by
        // the drain. No interleaving re-pools a retired connection.
        if ep.retired.load(Ordering::Acquire) {
            return;
        }
        if pool.len() < self.cfg.pool_cap {
            pool.push(client);
        }
    }

    /// The resilience core: run `op` against the healthiest admissible
    /// endpoint, with deadline, retry/backoff, breaker accounting, and
    /// failover. See the module docs for the policy.
    fn call<T>(
        &self,
        user: Option<u64>,
        retryable: Retryable,
        mut op: impl FnMut(&mut NetClient) -> Result<T, NetError>,
    ) -> RemoteOutcome<T> {
        let seq = self.op_seq.fetch_add(1, Ordering::Relaxed);
        // One snapshot for the whole operation: every attempt, breaker
        // check, and failover scan sees the same membership, even while
        // add/retire swap the live set underneath.
        let endpoints = self.snapshot();
        let home = self.home_index(user, endpoints.len());
        let n = endpoints.len();
        let deadline_at = self
            .clock
            .now_millis()
            .saturating_add(self.cfg.deadline.as_millis() as u64);
        let mut backoff = Backoff::with_jitter(
            self.cfg.backoff_initial,
            self.cfg.backoff_cap,
            self.cfg.backoff_jitter,
            self.cfg.seed ^ seq,
        );
        let max_attempts = self.cfg.max_attempts.max(1);
        let mut shift = 0usize; // scan origin advances past failing endpoints
        let mut last_error: Option<NetError> = None;

        for attempt in 0..max_attempts {
            let now = self.clock.now_millis();
            if now >= deadline_at {
                break;
            }
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }

            // First breaker-admitted endpoint, scanning from home + shift.
            let mut admitted = None;
            for i in 0..n {
                let idx = (home + shift + i) % n;
                match endpoints[idx].breaker.admit(now) {
                    Admission::Allowed | Admission::Probe => {
                        admitted = Some(idx);
                        break;
                    }
                    Admission::Refused { .. } => continue,
                }
            }
            let Some(idx) = admitted else {
                self.degraded.fetch_add(1, Ordering::Relaxed);
                return RemoteOutcome::Degraded(DegradedReason::AllBreakersOpen);
            };
            let ep = &endpoints[idx];
            if idx != home {
                self.failovers.fetch_add(1, Ordering::Relaxed);
            }
            let _op = ep.begin_op();

            let remaining = Duration::from_millis(deadline_at - now);
            match self.checkout(ep, remaining) {
                Err(e) => {
                    // The request never left: safe to retry for any op.
                    ep.count_error(&e);
                    ep.breaker.record_failure(self.clock.now_millis());
                    last_error = Some(e);
                }
                Ok(mut client) => {
                    let attempt_budget = self.cfg.attempt_timeout.min(remaining);
                    let _ = client.set_io_timeout(Some(attempt_budget));
                    match op(&mut client) {
                        Ok(v) => {
                            ep.counters.answered.fetch_add(1, Ordering::Relaxed);
                            ep.breaker.record_success();
                            self.checkin(ep, client);
                            return RemoteOutcome::Answered(v);
                        }
                        Err(e @ NetError::Remote { .. }) => {
                            // The server answered a typed error: transport
                            // and endpoint are healthy, the request is
                            // just wrong — retrying cannot help.
                            ep.counters.answered.fetch_add(1, Ordering::Relaxed);
                            ep.breaker.record_success();
                            self.checkin(ep, client);
                            self.degraded.fetch_add(1, Ordering::Relaxed);
                            return RemoteOutcome::Degraded(DegradedReason::NotRetryable {
                                error: e,
                            });
                        }
                        Err(e) => {
                            // The connection is suspect (timed out,
                            // dropped, desynchronized): never pool it.
                            drop(client);
                            ep.count_error(&e);
                            ep.breaker.record_failure(self.clock.now_millis());
                            if retryable == Retryable::ConnectOnly {
                                // The bytes may have reached the server;
                                // re-sending could double-apply.
                                self.degraded.fetch_add(1, Ordering::Relaxed);
                                return RemoteOutcome::Degraded(DegradedReason::NotRetryable {
                                    error: e,
                                });
                            }
                            last_error = Some(e);
                        }
                    }
                }
            }

            // Prefer a different endpoint on the next attempt.
            shift += 1;
            if attempt + 1 < max_attempts {
                let now = self.clock.now_millis();
                if now >= deadline_at {
                    break;
                }
                let nap = backoff
                    .next_delay()
                    .min(Duration::from_millis(deadline_at - now));
                self.clock.sleep(nap);
            }
        }

        self.degraded.fetch_add(1, Ordering::Relaxed);
        RemoteOutcome::Degraded(DegradedReason::DeadlineExhausted { last_error })
    }

    fn note_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// `TRACK` with the full typed outcome (never re-sent; see module
    /// docs).
    pub fn remote_track(&self, user: u64, query: &str, now: u64) -> RemoteOutcome<TrackOutcome> {
        self.call(Some(user), Retryable::ConnectOnly, |c| {
            c.track(user, query, now).map(|ack| TrackOutcome {
                new_session: ack.new_session,
                context_len: ack.context_len,
            })
        })
    }

    /// `TRACK_SUGGEST` with the full typed outcome (never re-sent).
    pub fn remote_track_and_suggest(
        &self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> RemoteOutcome<Vec<Suggestion>> {
        let out = self.call(Some(user), Retryable::ConnectOnly, |c| {
            c.track_and_suggest(user, query, k, now)
        });
        self.map_serve_answer(out)
    }

    /// `SUGGEST` with the full typed outcome (idempotent: retried).
    pub fn remote_suggest(&self, user: u64, k: usize, now: u64) -> RemoteOutcome<Vec<Suggestion>> {
        let out = self.call(Some(user), Retryable::Yes, |c| c.suggest(user, k, now));
        self.map_serve_answer(out)
    }

    /// `SUGGEST_BATCH` with the full typed outcome (idempotent: retried).
    pub fn remote_suggest_batch(
        &self,
        requests: &[SuggestRequest],
        now: u64,
    ) -> RemoteOutcome<Vec<Vec<Suggestion>>> {
        let entries: Vec<BatchEntry> = requests
            .iter()
            .map(|r| BatchEntry {
                user: r.user,
                k: r.k,
            })
            .collect();
        let first_user = requests.first().map(|r| r.user);
        let out = self.call(first_user, Retryable::Yes, |c| {
            c.suggest_batch(&entries, now)
        });
        match out {
            RemoteOutcome::Answered(BatchAnswer::Lists(lists)) => RemoteOutcome::Answered(lists),
            RemoteOutcome::Answered(BatchAnswer::Overloaded { limit }) => {
                self.note_shed();
                RemoteOutcome::Shed { limit }
            }
            RemoteOutcome::Shed { limit } => RemoteOutcome::Shed { limit },
            RemoteOutcome::Degraded(reason) => RemoteOutcome::Degraded(reason),
        }
    }

    /// `PING` the tier (idempotent: retried, fails over). The soak's
    /// liveness probe.
    pub fn remote_ping(&self) -> RemoteOutcome<()> {
        self.call(None, Retryable::Yes, |c| c.ping())
    }

    fn map_serve_answer(&self, out: RemoteOutcome<ServeAnswer>) -> RemoteOutcome<Vec<Suggestion>> {
        match out {
            RemoteOutcome::Answered(ServeAnswer::Suggestions(s)) => RemoteOutcome::Answered(s),
            RemoteOutcome::Answered(ServeAnswer::Overloaded { limit }) => {
                self.note_shed();
                RemoteOutcome::Shed { limit }
            }
            RemoteOutcome::Shed { limit } => RemoteOutcome::Shed { limit },
            RemoteOutcome::Degraded(reason) => RemoteOutcome::Degraded(reason),
        }
    }

    /// One bounded attempt of `op` against every endpoint whose breaker
    /// admits it (no retries — fan-out operations are best-effort per
    /// endpoint).
    fn for_each_endpoint<T>(
        &self,
        mut op: impl FnMut(&mut NetClient) -> Result<T, NetError>,
    ) -> Vec<Option<T>> {
        self.snapshot()
            .iter()
            .map(|ep| {
                let now = self.clock.now_millis();
                match ep.breaker.admit(now) {
                    Admission::Refused { .. } => return None,
                    Admission::Allowed | Admission::Probe => {}
                }
                let _op = ep.begin_op();
                let mut client = match self.checkout(ep, self.cfg.attempt_timeout) {
                    Ok(c) => c,
                    Err(e) => {
                        ep.count_error(&e);
                        ep.breaker.record_failure(self.clock.now_millis());
                        return None;
                    }
                };
                let _ = client.set_io_timeout(Some(self.cfg.attempt_timeout));
                match op(&mut client) {
                    Ok(v) => {
                        ep.counters.answered.fetch_add(1, Ordering::Relaxed);
                        ep.breaker.record_success();
                        self.checkin(ep, client);
                        Some(v)
                    }
                    Err(e) => {
                        ep.count_error(&e);
                        ep.breaker.record_failure(self.clock.now_millis());
                        None
                    }
                }
            })
            .collect()
    }

    /// Aggregate wire stats across answering endpoints: counters sum,
    /// gauges sum, generation is the minimum (fully-propagated, matching
    /// the `ServeSurface` contract). `None` when no endpoint answered.
    pub fn remote_wire_stats(&self) -> Option<WireStats> {
        let answers: Vec<WireStats> = self
            .for_each_endpoint(|c| c.stats())
            .into_iter()
            .flatten()
            .collect();
        if answers.is_empty() {
            return None;
        }
        let mut agg = WireStats {
            generation: u64::MAX,
            ..Default::default()
        };
        for s in &answers {
            agg.generation = agg.generation.min(s.generation);
            agg.tracks += s.tracks;
            agg.suggests += s.suggests;
            agg.publishes += s.publishes;
            agg.shed += s.shed;
            agg.evictions += s.evictions;
            agg.active_sessions += s.active_sessions;
        }
        Some(agg)
    }

    fn admin_fan_out<T>(
        &self,
        mut op: impl FnMut(&mut NetClient) -> Result<T, NetError>,
    ) -> Vec<(SocketAddr, Result<T, String>)> {
        self.snapshot()
            .iter()
            .filter_map(|ep| ep.admin_addr.map(|admin| (ep.serve_addr, admin)))
            .map(|(serve, admin)| {
                let result = NetClient::connect_timeout(admin, self.cfg.connect_timeout)
                    .map_err(NetError::from)
                    .and_then(|mut client| {
                        let _ = client.set_io_timeout(Some(self.cfg.deadline));
                        op(&mut client)
                    })
                    .map_err(|e| e.to_string());
                (serve, result)
            })
            .collect()
    }
}

impl ServeSurface for RemoteEngine {
    fn track(&self, user: u64, query: &str, now: u64) -> TrackOutcome {
        match self.remote_track(user, query, now) {
            RemoteOutcome::Answered(outcome) => outcome,
            // A shed or degraded track recorded nothing; the session
            // simply did not advance.
            RemoteOutcome::Shed { .. } | RemoteOutcome::Degraded(_) => TrackOutcome {
                new_session: false,
                context_len: 0,
            },
        }
    }

    fn track_and_suggest(&self, user: u64, query: &str, k: usize, now: u64) -> Vec<Suggestion> {
        match self.remote_track_and_suggest(user, query, k, now) {
            RemoteOutcome::Answered(s) => s,
            // Degraded serving is an empty suggestion list, not an error:
            // the search box renders nothing instead of breaking.
            RemoteOutcome::Shed { .. } | RemoteOutcome::Degraded(_) => Vec::new(),
        }
    }

    fn try_track_and_suggest(
        &self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        match self.remote_track_and_suggest(user, query, k, now) {
            RemoteOutcome::Answered(s) => Ok(s),
            RemoteOutcome::Shed { limit } => Err(Overloaded {
                limit: limit as usize,
            }),
            RemoteOutcome::Degraded(_) => Ok(Vec::new()),
        }
    }

    fn try_suggest(&self, user: u64, k: usize, now: u64) -> Result<Vec<Suggestion>, Overloaded> {
        match self.remote_suggest(user, k, now) {
            RemoteOutcome::Answered(s) => Ok(s),
            RemoteOutcome::Shed { limit } => Err(Overloaded {
                limit: limit as usize,
            }),
            RemoteOutcome::Degraded(_) => Ok(Vec::new()),
        }
    }

    fn suggest_batch(&self, requests: &[SuggestRequest], now: u64) -> Vec<Vec<Suggestion>> {
        match self.remote_suggest_batch(requests, now) {
            RemoteOutcome::Answered(lists) => lists,
            RemoteOutcome::Shed { .. } | RemoteOutcome::Degraded(_) => {
                vec![Vec::new(); requests.len()]
            }
        }
    }

    fn try_suggest_batch(
        &self,
        requests: &[SuggestRequest],
        now: u64,
    ) -> Result<Vec<Vec<Suggestion>>, Overloaded> {
        match self.remote_suggest_batch(requests, now) {
            RemoteOutcome::Answered(lists) => Ok(lists),
            RemoteOutcome::Shed { limit } => Err(Overloaded {
                limit: limit as usize,
            }),
            RemoteOutcome::Degraded(_) => Ok(vec![Vec::new(); requests.len()]),
        }
    }

    fn evict_idle(&self, now: u64) -> usize {
        self.for_each_endpoint(|c| c.evict_idle(now))
            .into_iter()
            .flatten()
            .sum::<u64>() as usize
    }

    fn publish(&self, snapshot: Arc<ModelSnapshot>) -> u64 {
        let Some(dir) = self.cfg.spool_dir.clone() else {
            // Nowhere the servers could load from: counted no-op.
            self.publishes_skipped.fetch_add(1, Ordering::Relaxed);
            return self.generation();
        };
        let seq = self.spool_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let path = dir.join(format!("remote-spool-{seq:06}.sqps"));
        let meta = SnapshotMeta::describe(&snapshot, seq, 0);
        if std::fs::create_dir_all(&dir).is_err() || save_snapshot(&path, &snapshot, &meta).is_err()
        {
            self.publishes_skipped.fetch_add(1, Ordering::Relaxed);
            return self.generation();
        }
        match self.admin_publish(&path) {
            Ok(generation) => generation,
            Err(_) => self.generation(),
        }
    }

    fn generation(&self) -> u64 {
        self.remote_wire_stats().map_or(0, |s| s.generation)
    }

    fn stats(&self) -> EngineStats {
        let wire = self.remote_wire_stats().unwrap_or_default();
        EngineStats {
            tracks: wire.tracks,
            suggests: wire.suggests,
            publishes: wire.publishes,
            shed: wire.shed,
            evictions: wire.evictions,
            active_sessions: wire.active_sessions,
        }
    }

    fn active_sessions(&self) -> usize {
        self.remote_wire_stats()
            .map_or(0, |s| s.active_sessions as usize)
    }
}

impl AdminSurface for RemoteEngine {
    fn admin_publish(&self, path: &std::path::Path) -> Result<u64, String> {
        let path_str = path.to_string_lossy().into_owned();
        let results = self.admin_fan_out(|c| c.publish(&path_str));
        if results.is_empty() {
            return Err("no endpoint has an admin address".to_string());
        }
        let mut min_generation = u64::MAX;
        let mut failures = Vec::new();
        for (addr, result) in results {
            match result {
                Ok(generation) => min_generation = min_generation.min(generation),
                Err(e) => failures.push(format!("{addr}: {e}")),
            }
        }
        if failures.is_empty() {
            Ok(min_generation)
        } else {
            Err(failures.join("; "))
        }
    }

    fn admin_rolling_publish(&self, path: &std::path::Path, abort_on_failure: bool) -> RollSummary {
        let path_str = path.to_string_lossy().into_owned();
        let mut total = RollSummary::default();
        let admins: Vec<(SocketAddr, SocketAddr)> = self
            .snapshot()
            .iter()
            .filter_map(|ep| ep.admin_addr.map(|admin| (ep.serve_addr, admin)))
            .collect();
        for (i, (_, admin)) in admins.iter().enumerate() {
            if total.aborted {
                // Count every replica behind the not-yet-rolled endpoints
                // as skipped, mirroring the in-process roll report.
                total.skipped += admins.len() as u64 - i as u64;
                break;
            }
            let result = NetClient::connect_timeout(*admin, self.cfg.connect_timeout)
                .map_err(NetError::from)
                .and_then(|mut client| {
                    let _ = client.set_io_timeout(Some(self.cfg.deadline));
                    client.rolling_publish(&path_str, abort_on_failure)
                });
            match result {
                Ok(summary) => {
                    total.upgraded += summary.upgraded;
                    total.failed += summary.failed;
                    total.skipped += summary.skipped;
                    if summary.aborted || (abort_on_failure && summary.failed > 0) {
                        total.aborted = true;
                    }
                }
                Err(_) => {
                    total.failed += 1;
                    if abort_on_failure {
                        total.aborted = true;
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// The retire-vs-straggler race, white-box: an operation that loaded
    /// the old endpoint snapshot before the swap but only checked a
    /// connection out after retire's in-flight wait and pool drain must
    /// not leave that connection pooled on the retired endpoint — checkin
    /// drops it, so the client still initiates the close within the
    /// straggler's own lifetime.
    #[test]
    fn checkin_on_a_retired_endpoint_drops_instead_of_pooling() {
        // A live listener so connects succeed; it never has to speak.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let engine = RemoteEngine::connect(
            vec![EndpointConfig::serve_only(addr)],
            RemoteConfig {
                pool_warmup: 0,
                ..RemoteConfig::default()
            },
        );
        let endpoints = engine.snapshot();
        let ep = &endpoints[0];

        let client = engine.checkout(ep, Duration::from_millis(200)).unwrap();
        engine.checkin(ep, client);
        assert_eq!(ep.lock_pool().len(), 1, "a live endpoint pools checkins");

        // The retire discipline on the victim: flag first, then drain.
        ep.retired.store(true, Ordering::Release);
        ep.lock_pool().clear();

        let straggler = engine.checkout(ep, Duration::from_millis(200)).unwrap();
        engine.checkin(ep, straggler);
        assert_eq!(
            ep.lock_pool().len(),
            0,
            "a retired endpoint must never re-pool a connection"
        );
    }
}
