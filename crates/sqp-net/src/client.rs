//! A blocking wire client with per-connection buffer reuse.
//!
//! [`NetClient`] owns one keep-alive TCP connection and two buffers (one
//! outbound, one inbound) that every request reuses, so a serve loop
//! driving millions of requests allocates only for the answers it keeps.
//! One client is one connection and is deliberately `!Sync` usage-wise:
//! the protocol answers in request order, so concurrent callers would
//! read each other's replies. Open one client per thread instead — that
//! is also what gives the server's per-connection fairness something to
//! be fair between.

use crate::frame::{read_frame, write_frame, FrameRead};
use crate::wire::{self, BatchEntry, Reply, RollSummary, WireError, WireStats};
use sqp_serve::Suggestion;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure of one request.
///
/// Transport failures (the old collapsed `Transport` case) are split by
/// cause — [`Timeout`](NetError::Timeout) /
/// [`Disconnected`](NetError::Disconnected) /
/// [`Refused`](NetError::Refused) — because a resilient caller treats
/// them differently: a timeout means the request *may have executed*
/// (never blindly resend a non-idempotent op), a refused connect means it
/// certainly did not (always safe to fail over), and a disconnect on an
/// idle pooled connection is routine churn worth one reconnect.
#[derive(Debug)]
pub enum NetError {
    /// An I/O deadline expired (connect, read, or write). The request may
    /// or may not have reached the server.
    Timeout(io::Error),
    /// The connection dropped: clean EOF where a reply was due, a reset,
    /// a broken pipe, or an EOF mid-frame.
    Disconnected,
    /// The endpoint actively refused the connection — nothing is
    /// listening there, so the request certainly never executed.
    Refused(io::Error),
    /// Any other transport failure.
    Io(io::Error),
    /// The reply frame did not decode.
    Wire(WireError),
    /// The server answered with a typed `R_ERROR`.
    Remote {
        /// A [`wire::code`] constant.
        code: u8,
        /// The server's message.
        message: String,
    },
    /// The reply decoded but had the wrong opcode for the request.
    UnexpectedReply {
        /// The reply opcode that arrived.
        opcode: u8,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout(e) => write!(f, "i/o deadline expired: {e}"),
            NetError::Disconnected => write!(f, "server disconnected"),
            NetError::Refused(e) => write!(f, "connection refused: {e}"),
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Wire(e) => write!(f, "undecodable reply: {e}"),
            NetError::Remote { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
            NetError::UnexpectedReply { opcode } => {
                write!(f, "unexpected reply opcode 0x{opcode:02X}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        use io::ErrorKind::*;
        match e.kind() {
            // Blocking sockets report an expired SO_RCVTIMEO/SO_SNDTIMEO
            // as either kind depending on platform.
            TimedOut | WouldBlock => NetError::Timeout(e),
            ConnectionRefused => NetError::Refused(e),
            ConnectionReset | ConnectionAborted | BrokenPipe | UnexpectedEof | NotConnected => {
                NetError::Disconnected
            }
            _ => NetError::Io(e),
        }
    }
}

/// The serve-path answer shape: either ranked suggestions or a typed
/// shed. Separating the shed from `NetError` keeps overload a *value* a
/// load generator can count, not a failure it has to untangle.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeAnswer {
    /// Ranked suggestions (possibly empty).
    Suggestions(Vec<Suggestion>),
    /// The request was shed — by the server queue (`limit == 0`) or the
    /// engine's admission budget (`limit` = the exhausted budget).
    Overloaded {
        /// The exhausted budget, or 0 for a server-queue shed.
        limit: u64,
    },
}

/// Batched answer: per-entry suggestion lists or one whole-batch shed.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchAnswer {
    /// One list per batch entry, in request order.
    Lists(Vec<Vec<Suggestion>>),
    /// The whole batch was shed (batches are all-or-nothing).
    Overloaded {
        /// The exhausted budget, or 0 for a server-queue shed.
        limit: u64,
    },
}

/// Acknowledgement of a `TRACK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackAck {
    /// The track started a fresh session (idle cutoff or first contact).
    pub new_session: bool,
    /// Queries now in the user's context window.
    pub context_len: usize,
}

/// One blocking keep-alive connection to a [`NetServer`](crate::NetServer)
/// port (serve or admin).
pub struct NetClient {
    stream: TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
    max_frame_len: usize,
}

impl NetClient {
    /// Connect with no I/O timeouts (reads block until the server
    /// replies or disconnects).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connect and bound the connect itself *and* every read/write by
    /// `timeout` — what resilient callers use so a black-holed SYN (a
    /// firewalled or fault-injected endpoint) fails fast instead of
    /// hanging the OS connect default, and a hung server fails fast
    /// instead of wedging the caller.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
            max_frame_len: wire::DEFAULT_MAX_FRAME,
        })
    }

    /// Rebound (or clear, with `None`) the read/write timeouts of this
    /// connection — how a pooled connection gets a fresh per-attempt
    /// deadline without reconnecting.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Shut down the write half, telling the server no more requests are
    /// coming; queued replies still arrive until it closes.
    pub fn finish_sending(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    fn send(&mut self) -> Result<(), NetError> {
        write_frame(&mut self.stream, &self.wbuf, self.max_frame_len)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Reply<'_>, NetError> {
        match read_frame(&mut self.stream, &mut self.rbuf, self.max_frame_len)? {
            FrameRead::Frame => {}
            FrameRead::CleanEof => return Err(NetError::Disconnected),
            FrameRead::Reject(err) => return Err(NetError::Wire(err)),
        }
        wire::decode_reply(&self.rbuf).map_err(NetError::Wire)
    }

    /// Track `query` for `user` at `now`.
    pub fn track(&mut self, user: u64, query: &str, now: u64) -> Result<TrackAck, NetError> {
        self.wbuf.clear();
        wire::encode_track(&mut self.wbuf, user, query, now);
        self.send()?;
        match self.recv()? {
            Reply::Ack {
                new_session,
                context_len,
            } => Ok(TrackAck {
                new_session,
                context_len,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Suggest `k` continuations against `user`'s tracked session.
    pub fn suggest(&mut self, user: u64, k: usize, now: u64) -> Result<ServeAnswer, NetError> {
        self.wbuf.clear();
        wire::encode_suggest(&mut self.wbuf, user, k, now);
        self.send()?;
        self.recv_serve_answer()
    }

    /// Track `query`, then suggest `k` continuations, in one round trip.
    pub fn track_and_suggest(
        &mut self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> Result<ServeAnswer, NetError> {
        self.wbuf.clear();
        wire::encode_track_suggest(&mut self.wbuf, user, query, k, now);
        self.send()?;
        self.recv_serve_answer()
    }

    fn recv_serve_answer(&mut self) -> Result<ServeAnswer, NetError> {
        match self.recv()? {
            Reply::Suggestions(list) => Ok(ServeAnswer::Suggestions(owned_suggestions(&list))),
            Reply::Overloaded { limit } => Ok(ServeAnswer::Overloaded { limit }),
            other => Err(unexpected(&other)),
        }
    }

    /// Batched suggestion at one shared timestamp.
    pub fn suggest_batch(
        &mut self,
        entries: &[BatchEntry],
        now: u64,
    ) -> Result<BatchAnswer, NetError> {
        self.wbuf.clear();
        wire::encode_suggest_batch(&mut self.wbuf, entries, now);
        self.send()?;
        match self.recv()? {
            Reply::Batch(lists) => Ok(BatchAnswer::Lists(
                lists.iter().map(|l| owned_suggestions(&l)).collect(),
            )),
            Reply::Overloaded { limit } => Ok(BatchAnswer::Overloaded { limit }),
            other => Err(unexpected(&other)),
        }
    }

    /// Read the surface's counters and generation.
    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        self.wbuf.clear();
        wire::encode_stats(&mut self.wbuf);
        self.send()?;
        match self.recv()? {
            Reply::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.wbuf.clear();
        wire::encode_ping(&mut self.wbuf);
        self.send()?;
        match self.recv()? {
            Reply::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Evict sessions idle as of `now`; returns how many.
    pub fn evict_idle(&mut self, now: u64) -> Result<u64, NetError> {
        self.wbuf.clear();
        wire::encode_evict(&mut self.wbuf, now);
        self.send()?;
        match self.recv()? {
            Reply::Evicted { count } => Ok(count),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: publish the server-local snapshot file at `path` to the
    /// whole surface; returns the surface generation afterwards. Only
    /// answered on the admin port.
    pub fn publish(&mut self, path: &str) -> Result<u64, NetError> {
        self.wbuf.clear();
        wire::encode_publish(&mut self.wbuf, path);
        self.send()?;
        match self.recv()? {
            Reply::Published { generation } => Ok(generation),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: roll the server-local snapshot file at `path` across
    /// replicas. Only answered on the admin port.
    pub fn rolling_publish(
        &mut self,
        path: &str,
        abort_on_failure: bool,
    ) -> Result<RollSummary, NetError> {
        self.wbuf.clear();
        wire::encode_rolling_publish(&mut self.wbuf, path, abort_on_failure);
        self.send()?;
        match self.recv()? {
            Reply::Rolled(summary) => Ok(summary),
            other => Err(unexpected(&other)),
        }
    }
}

fn owned_suggestions(list: &wire::SuggestionList<'_>) -> Vec<Suggestion> {
    list.iter()
        .map(|(score, query)| Suggestion {
            query: query.to_string(),
            score,
        })
        .collect()
}

fn unexpected(reply: &Reply<'_>) -> NetError {
    if let Reply::Error { code, message } = reply {
        return NetError::Remote {
            code: *code,
            message: (*message).to_string(),
        };
    }
    let opcode = match reply {
        Reply::Ack { .. } => wire::op::R_ACK,
        Reply::Suggestions(_) => wire::op::R_SUGGESTIONS,
        Reply::Batch(_) => wire::op::R_BATCH,
        Reply::Stats(_) => wire::op::R_STATS,
        Reply::Overloaded { .. } => wire::op::R_OVERLOADED,
        Reply::Error { .. } => wire::op::R_ERROR,
        Reply::Published { .. } => wire::op::R_PUBLISHED,
        Reply::Rolled(_) => wire::op::R_ROLLED,
        Reply::Pong => wire::op::R_PONG,
        Reply::Evicted { .. } => wire::op::R_EVICTED,
    };
    NetError::UnexpectedReply { opcode }
}
