//! # sqp-net — hermetic TCP serving front-end
//!
//! Puts a real network edge on the serving stack: any
//! [`ServeSurface`](sqp_serve::ServeSurface) — a single
//! [`ServeEngine`](sqp_serve::ServeEngine) or a replicated
//! [`RouterEngine`](sqp_router::RouterEngine) — becomes a TCP server
//! speaking a compact length-prefixed binary protocol ([`wire`], spec in
//! `WIRE.md`). Entirely `std` (no external crates), like the rest of the
//! workspace.
//!
//! * [`NetServer`] — accept loops on a public serve port and a separate
//!   admin port, per-connection reader threads that do framing only, and
//!   a shared worker pool executing engine calls. Connections are
//!   keep-alive; each has a bounded request queue that load-sheds with a
//!   typed `R_OVERLOADED` reply instead of stalling intake.
//! * [`NetClient`] — a blocking keep-alive client reusing its buffers
//!   across requests.
//! * [`RemoteEngine`] — a resilient [`ServeSurface`](sqp_serve::ServeSurface)
//!   over one or more remote endpoints: deadlines, idempotent-only
//!   retries with backoff, per-endpoint circuit breakers, failover, and
//!   typed degradation ([`remote`]).
//! * [`AdminSurface`] — live snapshot publication (`PUBLISH`,
//!   `ROLLING_PUBLISH`) driven through `sqp-store`'s [`WarmStart`]
//!   (single engine) and [`RouterPublish`] (replica-by-replica roll).
//!
//! [`WarmStart`]: sqp_store::WarmStart
//! [`RouterPublish`]: sqp_store::RouterPublish
//!
//! # Examples
//!
//! Serve an engine over TCP and talk to it:
//!
//! ```
//! use std::sync::Arc;
//! use sqp_logsim::RawLogRecord;
//! use sqp_net::{NetClient, NetServer, ServeAnswer, ServerConfig};
//! use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
//!
//! let rec = |machine, ts, q: &str| RawLogRecord {
//!     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
//! };
//! let mut logs = Vec::new();
//! for u in 0..10 {
//!     logs.push(rec(u, 100, "weather"));
//!     logs.push(rec(u, 130, "weather tomorrow"));
//! }
//! let cfg = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
//! let engine = Arc::new(ServeEngine::new(
//!     Arc::new(ModelSnapshot::from_raw_logs(&logs, &cfg)),
//!     EngineConfig::default(),
//! ));
//!
//! let server = NetServer::start(engine, ServerConfig::default()).unwrap();
//! let mut client = NetClient::connect(server.serve_addr()).unwrap();
//! match client.track_and_suggest(7, "weather", 1, 1_000).unwrap() {
//!     ServeAnswer::Suggestions(s) => assert_eq!(s[0].query, "weather tomorrow"),
//!     ServeAnswer::Overloaded { .. } => unreachable!("no admission limit set"),
//! }
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod admin;
pub mod client;
pub mod frame;
pub mod remote;
pub mod server;
pub mod wire;

pub use admin::AdminSurface;
pub use client::{BatchAnswer, NetClient, NetError, ServeAnswer, TrackAck};
pub use remote::{
    DegradedReason, EndpointConfig, EndpointSetError, EndpointStats, RemoteConfig, RemoteEngine,
    RemoteOutcome, RemoteStats,
};
pub use server::{NetServer, NetServerStats, NetSurface, ServerConfig};
pub use wire::{BatchEntry, Reply, Request, RollSummary, WireError, WireStats};
