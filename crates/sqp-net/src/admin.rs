//! The admin side of the wire: live snapshot publication.
//!
//! The server binds **two** listeners. The public serve port speaks only
//! traffic opcodes; `PUBLISH`/`ROLLING_PUBLISH` arriving there are
//! answered with a typed `ADMIN_ONLY` error and the connection is closed.
//! The admin port accepts everything, so an operator (or the retrain
//! loop) can push a freshly-saved snapshot into a live server with one
//! frame — the server loads the file through `sqp-store` and fans it out
//! via [`ServeSurface::publish`](sqp_serve::ServeSurface) semantics:
//!
//! * a single [`ServeEngine`] publishes atomically
//!   ([`WarmStart::publish_from_path`]);
//! * a [`RouterEngine`] either fans out one load to every replica
//!   (`PUBLISH`) or upgrades replica-by-replica with per-replica failure
//!   isolation (`ROLLING_PUBLISH`, via [`RouterPublish`]).
//!
//! [`AdminSurface`] is what the server's worker actually calls; it is a
//! separate trait from `ServeSurface` so a tier opts into remote
//! publication explicitly — implementing it means "frames on my admin
//! port may read snapshot files from my local disk".

use crate::wire::RollSummary;
use sqp_router::RouterEngine;
use sqp_serve::ServeEngine;
use sqp_store::{RollPolicy, RouterPublish, WarmStart};
use std::path::Path;

/// Admin operations a served tier exposes on the admin port.
///
/// Both methods are synchronous: the worker thread that picked up the
/// admin frame performs the disk load and the publish, then replies. Errors
/// come back as strings because they cross the wire as `R_ERROR` message
/// text — the typed detail (which replica, which io error) is already
/// folded into the message by `sqp-store`'s error types.
pub trait AdminSurface {
    /// Load the snapshot at `path` and publish it to the whole surface.
    /// Returns the surface's fully-propagated generation afterwards.
    fn admin_publish(&self, path: &Path) -> Result<u64, String>;

    /// Load the snapshot at `path` and roll it across replicas,
    /// continuing or aborting on per-replica failure per
    /// `abort_on_failure`. Never fails as a whole: per-replica failures
    /// are counted in the summary.
    fn admin_rolling_publish(&self, path: &Path, abort_on_failure: bool) -> RollSummary;
}

impl AdminSurface for ServeEngine {
    fn admin_publish(&self, path: &Path) -> Result<u64, String> {
        WarmStart::publish_from_path(self, path)
            .map(|published| published.engine_generation)
            .map_err(|e| e.to_string())
    }

    fn admin_rolling_publish(&self, path: &Path, _abort_on_failure: bool) -> RollSummary {
        // A single engine is a one-replica roll: either it upgrades or it
        // reports one failure, and there is nothing to abort early.
        match WarmStart::publish_from_path(self, path) {
            Ok(_) => RollSummary {
                aborted: false,
                upgraded: 1,
                failed: 0,
                skipped: 0,
            },
            Err(_) => RollSummary {
                aborted: false,
                upgraded: 0,
                failed: 1,
                skipped: 0,
            },
        }
    }
}

impl AdminSurface for RouterEngine {
    fn admin_publish(&self, path: &Path) -> Result<u64, String> {
        RouterPublish::publish_from_path(self, path)
            .map(|published| published.engine_generation)
            .map_err(|e| e.to_string())
    }

    fn admin_rolling_publish(&self, path: &Path, abort_on_failure: bool) -> RollSummary {
        let policy = if abort_on_failure {
            RollPolicy::AbortOnFailure
        } else {
            RollPolicy::ContinueOnFailure
        };
        let report = RouterPublish::rolling_publish(self, path, policy);
        RollSummary {
            aborted: report.aborted,
            upgraded: report.upgraded.len() as u64,
            failed: report.failed.len() as u64,
            skipped: report.skipped.len() as u64,
        }
    }
}
