//! The TCP serving front-end: accept loops, per-connection readers, and a
//! shared worker pool over one [`ServeSurface`].
//!
//! # Topology
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!   serve port ──►   │ accept loop ─┬─► reader (conn 1) ─┐        │
//!   admin port ──►   │ accept loop ─┼─► reader (conn 2) ─┤ ready  │
//!                    │              └─► reader (conn N) ─┤ queue  │
//!                    │                                   ▼        │
//!                    │               worker pool ──► ServeSurface │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! Readers do **framing only** — they never touch the engine — so a slow
//! model call on one connection cannot stall byte intake on another. Each
//! complete frame lands in that connection's bounded queue; the connection
//! itself is the schedulable unit (an atomic `scheduled` flag keeps it on
//! at most one worker at a time), which makes replies come back in request
//! order even though many workers serve many connections.
//!
//! # Overload behavior
//!
//! The per-connection queue has a **soft** bound and a **hard** bound:
//!
//! * past the soft bound (`queue_depth`), an arriving frame is replaced by
//!   a pre-marked shed entry — the worker answers it with `R_OVERLOADED`
//!   in FIFO position without doing engine work, so a pipelining client
//!   still sees exactly one reply per request, in order;
//! * past the hard bound (`4 × queue_depth`, all entries counted), the
//!   reader stops reading the socket until the worker drains — classic
//!   TCP backpressure — so a hostile pipeliner cannot grow server memory.
//!
//! Engine-level admission control is separate: traffic opcodes use the
//! surface's `try_*` forms, and a typed [`Overloaded`](sqp_serve::Overloaded)
//! from the engine also becomes `R_OVERLOADED` (with the exhausted budget
//! in the body). `R_OVERLOADED { limit: 0 }` therefore always means "the
//! server's own queue shed you", a distinction `NetServerStats` keeps too
//! (`queue_shed` vs `engine_shed`).

use crate::admin::AdminSurface;
use crate::frame::{read_frame, write_frame, FrameRead};
use crate::wire::{self, Request, WireError, WireStats};
use sqp_serve::{ServeSurface, SuggestRequest};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Everything the network front-end needs from the tier it serves:
/// traffic ops ([`ServeSurface`]) plus admin-port publication
/// ([`AdminSurface`]). Blanket-implemented, so both `ServeEngine` and
/// `RouterEngine` qualify automatically.
pub trait NetSurface: ServeSurface + AdminSurface {}

impl<T: ServeSurface + AdminSurface> NetSurface for T {}

/// Tuning for [`NetServer::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address for the public serve listener (`127.0.0.1:0` picks a free
    /// port; read it back with [`NetServer::serve_addr`]).
    pub addr: SocketAddr,
    /// Address for the admin listener.
    pub admin_addr: SocketAddr,
    /// Worker threads executing engine calls. `0` means one per
    /// available core, minimum 2.
    pub workers: usize,
    /// Soft bound of each connection's request queue; frames past it are
    /// answered `R_OVERLOADED` without engine work. The hard bound
    /// (reader stops reading) is four times this.
    pub queue_depth: usize,
    /// Maximum accepted frame *body* length, both directions.
    pub max_frame_len: usize,
    /// How many queue entries a worker drains from one connection before
    /// putting it back and taking the next ready connection (fairness
    /// under pipelining).
    pub drain_batch: usize,
    /// Per-write socket timeout. A client that stops reading its replies
    /// eventually times a write out and is disconnected, so it can never
    /// pin a worker (or wedge shutdown's drain) indefinitely. `None`
    /// disables the guard.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            admin_addr: "127.0.0.1:0".parse().expect("static addr"),
            workers: 0,
            queue_depth: 64,
            max_frame_len: wire::DEFAULT_MAX_FRAME,
            drain_batch: 32,
            write_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Snapshot of the server's own counters (engine counters are served by
/// the `STATS` opcode instead — see [`WireStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections accepted (both ports).
    pub accepted: u64,
    /// Complete frames read off sockets.
    pub frames_in: u64,
    /// Reply frames written.
    pub replies_out: u64,
    /// Requests shed by a connection queue's soft bound.
    pub queue_shed: u64,
    /// Requests shed by the engine's admission control.
    pub engine_shed: u64,
    /// Frames rejected with a typed protocol error.
    pub protocol_errors: u64,
    /// Admin publishes (plain or rolling) that fully succeeded.
    pub publishes_ok: u64,
    /// Admin publishes that failed or rolled with failures.
    pub publishes_failed: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    frames_in: AtomicU64,
    replies_out: AtomicU64,
    queue_shed: AtomicU64,
    engine_shed: AtomicU64,
    protocol_errors: AtomicU64,
    publishes_ok: AtomicU64,
    publishes_failed: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> NetServerStats {
        NetServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            replies_out: self.replies_out.load(Ordering::Relaxed),
            queue_shed: self.queue_shed.load(Ordering::Relaxed),
            engine_shed: self.engine_shed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            publishes_ok: self.publishes_ok.load(Ordering::Relaxed),
            publishes_failed: self.publishes_failed.load(Ordering::Relaxed),
        }
    }
}

/// One queued unit of work for a connection's worker.
enum Item {
    /// A complete frame body, in a buffer borrowed from the pool.
    Frame(Vec<u8>),
    /// A request refused at the soft bound; reply `R_OVERLOADED` in FIFO
    /// position without engine work (the frame bytes were returned to
    /// the pool at enqueue time).
    Shed,
    /// The reader hit an unrecoverable framing problem; reply a typed
    /// error, then close.
    Fatal(WireError),
}

struct ConnQueue {
    items: VecDeque<Item>,
    /// Reusable frame-body buffers, swapped between reader and worker so
    /// the steady state allocates nothing.
    pool: Vec<Vec<u8>>,
    /// The reader has exited; once `items` drains the worker closes.
    read_closed: bool,
    /// The connection was killed (write error / fatal frame / shutdown);
    /// everything still queued is dropped.
    dead: bool,
}

struct Conn {
    id: u64,
    stream: TcpStream,
    admin: bool,
    queue: Mutex<ConnQueue>,
    /// Signaled by the worker after draining (for the reader's hard-bound
    /// backpressure wait) and by `kill`/shutdown.
    queue_cv: Condvar,
    /// True while the connection sits in the ready queue or on a worker.
    /// Whoever flips it false→true owns enqueueing it — this is what
    /// keeps a connection on at most one worker (in-order replies).
    scheduled: AtomicBool,
}

impl Conn {
    fn kill(&self) {
        let mut q = self.queue.lock().expect("conn queue poisoned");
        q.dead = true;
        q.items.clear();
        drop(q);
        self.queue_cv.notify_all();
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Worker-side close: stop accepting work and FIN the write half,
    /// but leave the read half to the reader, which drains it to EOF
    /// before the socket drops. Closing with unread bytes still queued
    /// would turn the close into a TCP RST, and an RST can destroy an
    /// already-written reply (e.g. the typed `R_ERROR`) before the
    /// client reads it.
    fn close_write(&self) {
        let mut q = self.queue.lock().expect("conn queue poisoned");
        q.dead = true;
        q.items.clear();
        drop(q);
        self.queue_cv.notify_all();
        let _ = self.stream.shutdown(Shutdown::Write);
    }
}

struct Shared {
    surface: Arc<dyn NetSurface>,
    queue_depth: usize,
    hard_cap: usize,
    max_frame_len: usize,
    drain_batch: usize,
    write_timeout: Option<Duration>,
    ready: Mutex<VecDeque<Arc<Conn>>>,
    ready_cv: Condvar,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    reader_handles: Mutex<Vec<thread::JoinHandle<()>>>,
    next_id: AtomicU64,
    /// Stop accepting and reading (phase 1 of shutdown).
    closing: AtomicBool,
    /// Workers may exit once the ready queue is empty (phase 2).
    workers_stop: AtomicBool,
    counters: Counters,
}

impl Shared {
    fn schedule(&self, conn: &Arc<Conn>) {
        if !conn.scheduled.swap(true, Ordering::AcqRel) {
            let mut ready = self.ready.lock().expect("ready queue poisoned");
            ready.push_back(Arc::clone(conn));
            drop(ready);
            self.ready_cv.notify_one();
        }
    }
}

/// A running TCP front-end over a [`ServeSurface`]. Dropping the server
/// (or calling [`shutdown`](NetServer::shutdown)) stops accepting,
/// unblocks every reader, lets workers drain all queued replies, and
/// joins every thread.
pub struct NetServer {
    shared: Arc<Shared>,
    serve_addr: SocketAddr,
    admin_addr: SocketAddr,
    accept_handles: Mutex<Vec<(SocketAddr, thread::JoinHandle<()>)>>,
    worker_handles: Mutex<Vec<thread::JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl NetServer {
    /// Bind both listeners and spawn the accept loops and worker pool.
    pub fn start<S: NetSurface + 'static>(surface: Arc<S>, cfg: ServerConfig) -> io::Result<Self> {
        let serve_listener = TcpListener::bind(cfg.addr)?;
        let admin_listener = TcpListener::bind(cfg.admin_addr)?;
        let serve_addr = serve_listener.local_addr()?;
        let admin_addr = admin_listener.local_addr()?;

        let workers = if cfg.workers == 0 {
            thread::available_parallelism()
                .map_or(2, |n| n.get())
                .max(2)
        } else {
            cfg.workers
        };
        let queue_depth = cfg.queue_depth.max(1);

        let shared = Arc::new(Shared {
            surface: surface as Arc<dyn NetSurface>,
            queue_depth,
            hard_cap: queue_depth.saturating_mul(4),
            max_frame_len: cfg.max_frame_len,
            drain_batch: cfg.drain_batch.max(1),
            write_timeout: cfg.write_timeout,
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            reader_handles: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            closing: AtomicBool::new(false),
            workers_stop: AtomicBool::new(false),
            counters: Counters::default(),
        });

        let mut accept_handles = Vec::with_capacity(2);
        for (listener, addr, admin) in [
            (serve_listener, serve_addr, false),
            (admin_listener, admin_addr, true),
        ] {
            let shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!(
                    "sqp-net-accept{}",
                    if admin { "-admin" } else { "" }
                ))
                .spawn(move || accept_loop(&shared, listener, admin))?;
            accept_handles.push((addr, handle));
        }

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("sqp-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        Ok(NetServer {
            shared,
            serve_addr,
            admin_addr,
            accept_handles: Mutex::new(accept_handles),
            worker_handles: Mutex::new(worker_handles),
            stopped: AtomicBool::new(false),
        })
    }

    /// The bound public serve address.
    pub fn serve_addr(&self) -> SocketAddr {
        self.serve_addr
    }

    /// The bound admin address.
    pub fn admin_addr(&self) -> SocketAddr {
        self.admin_addr
    }

    /// Snapshot the server's own counters.
    pub fn stats(&self) -> NetServerStats {
        self.shared.counters.snapshot()
    }

    /// Connections currently registered (readers still attached).
    pub fn active_connections(&self) -> usize {
        self.shared.conns.lock().expect("conns poisoned").len()
    }

    /// True while no worker thread has died. A worker exiting before
    /// shutdown means a request handler panicked — the fuzz and soak
    /// suites poll this so a swallowed panic cannot masquerade as a
    /// clean run.
    pub fn workers_alive(&self) -> bool {
        let handles = self.worker_handles.lock().expect("workers poisoned");
        handles.iter().all(|h| !h.is_finished())
    }

    /// Stop accepting, drain every queued reply, and join all threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.closing.store(true, Ordering::Release);

        // Wake both accept loops: connect-and-drop is observed as one
        // accepted stream, after which the loop re-checks `closing`. Poke
        // until each accept thread has really exited — a single poke can
        // be swallowed if it races an in-progress accept of a client
        // connection that arrived just before shutdown.
        for (addr, h) in self
            .accept_handles
            .lock()
            .expect("accepts poisoned")
            .drain(..)
        {
            while !h.is_finished() {
                let _ = TcpStream::connect(addr);
                thread::sleep(Duration::from_millis(1));
            }
            let _ = h.join();
        }

        // Unblock readers mid-`read`; their write halves stay open so the
        // workers can still flush queued replies (clean drain).
        let conns: Vec<Arc<Conn>> = {
            let conns = self.shared.conns.lock().expect("conns poisoned");
            conns.values().cloned().collect()
        };
        for conn in &conns {
            let _ = conn.stream.shutdown(Shutdown::Read);
            conn.queue_cv.notify_all();
        }
        loop {
            let handles: Vec<_> = {
                let mut readers = self.shared.reader_handles.lock().expect("readers poisoned");
                readers.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }

        // Every reader has exited (each scheduling its connection one
        // last time), so the ready queue now holds all remaining work.
        self.shared.workers_stop.store(true, Ordering::Release);
        self.shared.ready_cv.notify_all();
        for h in self
            .worker_handles
            .lock()
            .expect("workers poisoned")
            .drain(..)
        {
            let _ = h.join();
        }

        for conn in &conns {
            conn.kill();
        }
        self.shared.conns.lock().expect("conns poisoned").clear();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener, admin: bool) {
    for stream in listener.incoming() {
        if shared.closing.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(shared.write_timeout);
        Counters::bump(&shared.counters.accepted);

        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let conn = Arc::new(Conn {
            id,
            stream,
            admin,
            queue: Mutex::new(ConnQueue {
                items: VecDeque::new(),
                pool: Vec::new(),
                read_closed: false,
                dead: false,
            }),
            queue_cv: Condvar::new(),
            scheduled: AtomicBool::new(false),
        });
        shared
            .conns
            .lock()
            .expect("conns poisoned")
            .insert(id, Arc::clone(&conn));

        let shared2 = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name(format!("sqp-net-reader-{id}"))
            .spawn(move || reader_loop(&shared2, &conn));
        match handle {
            Ok(h) => shared
                .reader_handles
                .lock()
                .expect("readers poisoned")
                .push(h),
            Err(_) => {
                // Could not spawn a reader: drop the connection.
                let removed = shared.conns.lock().expect("conns poisoned").remove(&id);
                if let Some(conn) = removed {
                    conn.kill();
                }
            }
        }
    }
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let mut stream = &conn.stream;
    loop {
        if shared.closing.load(Ordering::Acquire) {
            break;
        }
        let mut buf = {
            let mut q = conn.queue.lock().expect("conn queue poisoned");
            q.pool.pop().unwrap_or_default()
        };
        match read_frame(&mut stream, &mut buf, shared.max_frame_len) {
            Ok(FrameRead::Frame) => {
                Counters::bump(&shared.counters.frames_in);
                if !enqueue(shared, conn, buf) {
                    break;
                }
            }
            Ok(FrameRead::CleanEof) => break,
            Ok(FrameRead::Reject(err)) => {
                // The stream is desynchronized past this prefix; hand the
                // typed error to the worker (the reply keeps FIFO
                // position behind anything already queued) and stop
                // parsing frames.
                enqueue_item(shared, conn, Item::Fatal(err));
                break;
            }
            // Torn frame, reset, or our own shutdown(Read).
            Err(_) => break,
        }
    }

    // Leave the receive queue empty before the socket can drop: a close
    // with unread inbound bytes becomes a TCP RST, and an RST can wipe
    // out replies (including a just-written typed error) that the client
    // has not read yet. Bounded: EOF, error, or a 200ms timeout ends it.
    drain_until_eof(&conn.stream);

    {
        let mut q = conn.queue.lock().expect("conn queue poisoned");
        q.read_closed = true;
    }
    // Schedule one final time so a worker observes `read_closed` and
    // closes the socket even if nothing is queued.
    shared.schedule(conn);
    shared
        .conns
        .lock()
        .expect("conns poisoned")
        .remove(&conn.id);
}

/// Discard inbound bytes until EOF or a short deadline, so the socket
/// can close with an empty receive queue (FIN, not RST).
fn drain_until_eof(stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut scrap = [0u8; 4096];
    let mut stream_ref = stream;
    use std::io::Read;
    for _ in 0..256 {
        match stream_ref.read(&mut scrap) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Queue a complete frame, applying the soft (shed) and hard
/// (backpressure) bounds. Returns false when the connection is dead and
/// the reader should stop.
fn enqueue(shared: &Arc<Shared>, conn: &Arc<Conn>, buf: Vec<u8>) -> bool {
    let mut q = conn.queue.lock().expect("conn queue poisoned");
    while q.items.len() >= shared.hard_cap {
        if q.dead || shared.closing.load(Ordering::Acquire) {
            return false;
        }
        let (guard, _) = conn
            .queue_cv
            .wait_timeout(q, Duration::from_millis(50))
            .expect("conn queue poisoned");
        q = guard;
    }
    if q.dead {
        return false;
    }
    if q.items.len() >= shared.queue_depth {
        if q.pool.len() < shared.queue_depth {
            q.pool.push(buf);
        }
        q.items.push_back(Item::Shed);
        Counters::bump(&shared.counters.queue_shed);
    } else {
        q.items.push_back(Item::Frame(buf));
    }
    drop(q);
    shared.schedule(conn);
    true
}

fn enqueue_item(shared: &Arc<Shared>, conn: &Arc<Conn>, item: Item) {
    let mut q = conn.queue.lock().expect("conn queue poisoned");
    if q.dead {
        return;
    }
    q.items.push_back(item);
    drop(q);
    shared.schedule(conn);
}

fn worker_loop(shared: &Arc<Shared>) {
    // Per-worker scratch, reused across every frame this worker handles.
    let mut wbuf: Vec<u8> = Vec::new();
    let mut batch: Vec<SuggestRequest> = Vec::new();
    loop {
        let conn = {
            let mut ready = shared.ready.lock().expect("ready queue poisoned");
            loop {
                if let Some(conn) = ready.pop_front() {
                    break conn;
                }
                if shared.workers_stop.load(Ordering::Acquire) {
                    return;
                }
                ready = shared.ready_cv.wait(ready).expect("ready queue poisoned");
            }
        };
        process_conn(shared, &conn, &mut wbuf, &mut batch);
    }
}

fn process_conn(
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    wbuf: &mut Vec<u8>,
    batch: &mut Vec<SuggestRequest>,
) {
    let mut drained = 0usize;
    loop {
        let item = {
            let mut q = conn.queue.lock().expect("conn queue poisoned");
            let item = q.items.pop_front();
            if item.is_some() {
                // The reader may be parked on the hard bound.
                conn.queue_cv.notify_one();
            }
            item
        };
        let Some(item) = item else { break };
        drained += 1;
        if !handle_item(shared, conn, item, wbuf, batch) {
            conn.close_write();
            conn.scheduled.store(false, Ordering::Release);
            return;
        }
        if drained >= shared.drain_batch {
            // Fairness: put this connection at the back of the line and
            // serve someone else. It stays `scheduled` because it is
            // still in the ready queue.
            let mut ready = shared.ready.lock().expect("ready queue poisoned");
            ready.push_back(Arc::clone(conn));
            drop(ready);
            shared.ready_cv.notify_one();
            return;
        }
    }

    // Queue drained. If the reader is gone this connection is done:
    // everything it will ever owe has been written.
    let finished = {
        let q = conn.queue.lock().expect("conn queue poisoned");
        q.read_closed && q.items.is_empty()
    };
    if finished {
        conn.kill();
    }
    conn.scheduled.store(false, Ordering::Release);
    // Re-check: the reader may have enqueued between our final pop and
    // the flag store; whoever wins the swap inside `schedule` enqueues.
    let has_work = {
        let q = conn.queue.lock().expect("conn queue poisoned");
        !q.items.is_empty() || (q.read_closed && !q.dead)
    };
    if has_work {
        shared.schedule(conn);
    }
}

/// Execute one queued item. Returns false when the connection must close
/// (fatal protocol error or a failed reply write).
fn handle_item(
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    item: Item,
    wbuf: &mut Vec<u8>,
    batch: &mut Vec<SuggestRequest>,
) -> bool {
    wbuf.clear();
    let mut close_after_reply = false;
    let mut frame_buf = None;

    match item {
        Item::Shed => {
            // Shed by our own queue: limit 0 distinguishes it from an
            // engine-budget shed on the wire.
            wire::encode_overloaded(wbuf, 0);
        }
        Item::Fatal(err) => {
            Counters::bump(&shared.counters.protocol_errors);
            wire::encode_error(wbuf, err.code(), &err.to_string());
            close_after_reply = true;
        }
        Item::Frame(buf) => {
            match wire::decode_request(&buf) {
                Err(err) => {
                    Counters::bump(&shared.counters.protocol_errors);
                    wire::encode_error(wbuf, err.code(), &err.to_string());
                    close_after_reply = true;
                }
                Ok(req) if req.is_admin() && !conn.admin => {
                    Counters::bump(&shared.counters.protocol_errors);
                    wire::encode_error(
                        wbuf,
                        wire::code::ADMIN_ONLY,
                        "admin opcodes are only served on the admin port",
                    );
                    close_after_reply = true;
                }
                Ok(req) => execute(shared, req, wbuf, batch),
            }
            frame_buf = Some(buf);
        }
    }

    let mut stream = &conn.stream;
    let write_ok = match write_frame(&mut stream, wbuf, shared.max_frame_len) {
        Ok(()) => {
            Counters::bump(&shared.counters.replies_out);
            true
        }
        // The assembled reply exceeded the frame limit (e.g. a huge
        // batch): substitute a typed, guaranteed-small error. Framing is
        // intact, so the connection survives.
        Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
            wbuf.clear();
            wire::encode_error(
                wbuf,
                wire::code::LIMIT_EXCEEDED,
                "reply exceeds the frame size limit",
            );
            match write_frame(&mut stream, wbuf, shared.max_frame_len) {
                Ok(()) => {
                    Counters::bump(&shared.counters.replies_out);
                    true
                }
                Err(_) => false,
            }
        }
        Err(_) => false,
    };

    // Return the frame body to the connection's pool (bounded so an idle
    // connection does not pin more than a queue's worth of buffers).
    if let Some(buf) = frame_buf {
        let mut q = conn.queue.lock().expect("conn queue poisoned");
        if q.pool.len() < shared.queue_depth {
            q.pool.push(buf);
        }
    }

    write_ok && !close_after_reply
}

/// Decode-independent request execution: surface calls plus reply
/// encoding. `wbuf` receives the reply body.
fn execute(
    shared: &Arc<Shared>,
    req: Request<'_>,
    wbuf: &mut Vec<u8>,
    batch: &mut Vec<SuggestRequest>,
) {
    let surface = &*shared.surface;
    match req {
        Request::Track { user, now, query } => {
            let outcome = surface.track(user, query, now);
            wire::encode_ack(wbuf, outcome.new_session, outcome.context_len);
        }
        Request::Suggest { user, now, k } => match surface.try_suggest(user, k, now) {
            Ok(suggestions) => wire::encode_suggestions(wbuf, &suggestions),
            Err(overloaded) => {
                Counters::bump(&shared.counters.engine_shed);
                wire::encode_overloaded(wbuf, overloaded.limit as u64);
            }
        },
        Request::TrackSuggest {
            user,
            now,
            k,
            query,
        } => match surface.try_track_and_suggest(user, query, k, now) {
            Ok(suggestions) => wire::encode_suggestions(wbuf, &suggestions),
            Err(overloaded) => {
                Counters::bump(&shared.counters.engine_shed);
                wire::encode_overloaded(wbuf, overloaded.limit as u64);
            }
        },
        Request::SuggestBatch { now, entries } => {
            batch.clear();
            batch.extend(entries.iter().map(|e| SuggestRequest {
                user: e.user,
                k: e.k,
            }));
            match surface.try_suggest_batch(batch, now) {
                Ok(lists) => wire::encode_batch(wbuf, &lists),
                Err(overloaded) => {
                    Counters::bump(&shared.counters.engine_shed);
                    wire::encode_overloaded(wbuf, overloaded.limit as u64);
                }
            }
        }
        Request::Stats => {
            let stats = surface.stats();
            wire::encode_stats_reply(
                wbuf,
                &WireStats {
                    generation: surface.generation(),
                    tracks: stats.tracks,
                    suggests: stats.suggests,
                    publishes: stats.publishes,
                    shed: stats.shed,
                    evictions: stats.evictions,
                    active_sessions: stats.active_sessions,
                },
            );
        }
        Request::Ping => wire::encode_pong(wbuf),
        Request::Evict { now } => {
            let count = surface.evict_idle(now) as u64;
            wire::encode_evicted(wbuf, count);
        }
        Request::Publish { path } => match surface.admin_publish(Path::new(path)) {
            Ok(generation) => {
                Counters::bump(&shared.counters.publishes_ok);
                wire::encode_published(wbuf, generation);
            }
            Err(message) => {
                Counters::bump(&shared.counters.publishes_failed);
                wire::encode_error(wbuf, wire::code::PUBLISH_FAILED, &message);
            }
        },
        Request::RollingPublish {
            abort_on_failure,
            path,
        } => {
            let summary = surface.admin_rolling_publish(Path::new(path), abort_on_failure);
            if summary.failed == 0 && !summary.aborted {
                Counters::bump(&shared.counters.publishes_ok);
            } else {
                Counters::bump(&shared.counters.publishes_failed);
            }
            wire::encode_rolled(wbuf, &summary);
        }
    }
}
