//! The sqp wire protocol: a compact length-prefixed binary codec.
//!
//! Every message is a **frame**: a `u32` little-endian body length followed
//! by the body, whose first byte is an opcode. Requests use opcodes
//! `0x01..=0x11`, replies `0x81..=0x8A`, so a captured byte stream is
//! self-describing about direction. Multi-byte integers are little-endian;
//! open-ended counts and lengths are LEB128 unsigned varints
//! ([`sqp_common::bytes::put_uvarint`]); strings are UTF-8 with a varint
//! byte-length prefix. The normative byte-level layout (with a worked
//! example verified by `tests/wire_conformance.rs`) lives in `WIRE.md` at
//! the repository root.
//!
//! The codec is allocation-free on the steady-state path in both
//! directions: encoders append into a caller-owned `Vec<u8>` that the
//! connection reuses, and decoders hand back [`Request`]/[`Reply`] values
//! that *borrow* the frame body — list-shaped fields ([`SuggestionList`],
//! [`BatchEntries`]) are validated up front and then iterated straight off
//! the raw bytes, so a server turns a frame into engine calls without
//! copying a single query string.

use sqp_common::bytes::{get_uvarint, put_uvarint};
use std::fmt;

/// Size of the frame length prefix (`u32` little-endian), in bytes.
pub const LEN_PREFIX: usize = 4;

/// Default maximum frame *body* length a peer will accept.
pub const DEFAULT_MAX_FRAME: usize = 256 * 1024;

/// Maximum byte length of a query string on the wire.
pub const MAX_QUERY_LEN: usize = 4096;

/// Maximum byte length of a snapshot path in an admin request.
pub const MAX_PATH_LEN: usize = 4096;

/// Maximum entries in one `SUGGEST_BATCH` request.
pub const MAX_BATCH: usize = 4096;

/// Maximum `k` (suggestions requested) in any single request.
pub const MAX_K: usize = 1024;

/// Maximum byte length of an error message on the wire (longer messages
/// are truncated at a char boundary by the encoder).
pub const MAX_ERROR_MSG: usize = 512;

/// Request and reply opcodes (the first body byte of every frame).
pub mod op {
    /// Track a query for a user (no suggestions wanted).
    pub const TRACK: u8 = 0x01;
    /// Suggest against a user's tracked session.
    pub const SUGGEST: u8 = 0x02;
    /// Track a query, then suggest against the updated session.
    pub const TRACK_SUGGEST: u8 = 0x03;
    /// Batched suggestion for many users at one timestamp.
    pub const SUGGEST_BATCH: u8 = 0x04;
    /// Read the surface's counters and generation.
    pub const STATS: u8 = 0x05;
    /// Liveness probe.
    pub const PING: u8 = 0x06;
    /// Evict idle sessions as of a timestamp.
    pub const EVICT: u8 = 0x07;
    /// Admin: load a snapshot file and publish it to the whole surface.
    pub const PUBLISH: u8 = 0x10;
    /// Admin: load a snapshot file and roll it across replicas.
    pub const ROLLING_PUBLISH: u8 = 0x11;

    /// Reply to [`TRACK`].
    pub const R_ACK: u8 = 0x81;
    /// Reply to [`SUGGEST`]/[`TRACK_SUGGEST`]: a suggestion list.
    pub const R_SUGGESTIONS: u8 = 0x82;
    /// Reply to [`SUGGEST_BATCH`]: one suggestion list per entry.
    pub const R_BATCH: u8 = 0x83;
    /// Reply to [`STATS`].
    pub const R_STATS: u8 = 0x84;
    /// The surface (or the server's own queue) shed the request.
    pub const R_OVERLOADED: u8 = 0x85;
    /// Typed protocol or execution error.
    pub const R_ERROR: u8 = 0x86;
    /// Reply to [`PUBLISH`].
    pub const R_PUBLISHED: u8 = 0x87;
    /// Reply to [`ROLLING_PUBLISH`].
    pub const R_ROLLED: u8 = 0x88;
    /// Reply to [`PING`].
    pub const R_PONG: u8 = 0x89;
    /// Reply to [`EVICT`].
    pub const R_EVICTED: u8 = 0x8A;
}

/// Typed error codes carried in an `R_ERROR` reply body.
pub mod code {
    /// The opcode byte is not one this peer understands.
    pub const UNKNOWN_OPCODE: u8 = 1;
    /// The body ended before a field was complete.
    pub const TRUNCATED: u8 = 2;
    /// The body continued past the last field of its opcode.
    pub const TRAILING_BYTES: u8 = 3;
    /// The length prefix exceeded the receiver's frame limit.
    pub const FRAME_TOO_LARGE: u8 = 4;
    /// The length prefix was zero (a frame must carry an opcode).
    pub const EMPTY_FRAME: u8 = 5;
    /// A string field was not valid UTF-8.
    pub const BAD_UTF8: u8 = 6;
    /// An admin opcode arrived on the public serve port.
    pub const ADMIN_ONLY: u8 = 7;
    /// An admin publish was attempted and failed (body carries why).
    pub const PUBLISH_FAILED: u8 = 8;
    /// A count/length field exceeded a protocol limit.
    pub const LIMIT_EXCEEDED: u8 = 9;
}

/// A malformed frame, as discovered while decoding.
///
/// Every variant maps onto a typed wire error code ([`WireError::code`]),
/// so a server can reject bad input with a structured `R_ERROR` reply
/// instead of a panic or a silent hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame body was empty (no opcode byte).
    EmptyFrame,
    /// The opcode byte is not part of the protocol.
    UnknownOpcode(u8),
    /// The body ended before a field was complete (includes malformed
    /// varints).
    Truncated,
    /// The body continued past the last field of its opcode.
    TrailingBytes {
        /// How many unconsumed bytes followed the last field.
        extra: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A declared frame body length exceeded the receiver's limit.
    FrameTooLarge {
        /// The declared body length.
        len: u64,
        /// The receiver's limit.
        max: u64,
    },
    /// A count or length field exceeded a protocol limit.
    LimitExceeded {
        /// Which limit (static description).
        what: &'static str,
        /// The value the frame declared.
        got: u64,
        /// The protocol maximum.
        max: u64,
    },
}

impl WireError {
    /// The typed wire error code for this error (for `R_ERROR` replies).
    pub fn code(&self) -> u8 {
        match self {
            WireError::EmptyFrame => code::EMPTY_FRAME,
            WireError::UnknownOpcode(_) => code::UNKNOWN_OPCODE,
            WireError::Truncated => code::TRUNCATED,
            WireError::TrailingBytes { .. } => code::TRAILING_BYTES,
            WireError::BadUtf8 => code::BAD_UTF8,
            WireError::FrameTooLarge { .. } => code::FRAME_TOO_LARGE,
            WireError::LimitExceeded { .. } => code::LIMIT_EXCEEDED,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::EmptyFrame => write!(f, "empty frame body"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02X}"),
            WireError::Truncated => write!(f, "frame body truncated mid-field"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after last field")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds limit {max}")
            }
            WireError::LimitExceeded { what, got, max } => {
                write!(f, "{what} of {got} exceeds protocol limit {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Borrowing reader over a frame body. All field decoders live here so
/// request and reply decoding share the exact same bounds discipline.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.at).ok_or(WireError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u64_le(&mut self) -> Result<u64, WireError> {
        let end = self.at.checked_add(8).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn f64_le(&mut self) -> Result<f64, WireError> {
        self.u64_le().map(f64::from_bits)
    }

    fn uvarint(&mut self) -> Result<u64, WireError> {
        get_uvarint(self.buf, &mut self.at).ok_or(WireError::Truncated)
    }

    /// A varint-bounded count/length field, checked against a protocol
    /// limit before anything is allocated or iterated on its behalf.
    fn bounded(&mut self, what: &'static str, max: usize) -> Result<usize, WireError> {
        let got = self.uvarint()?;
        if got > max as u64 {
            return Err(WireError::LimitExceeded {
                what,
                got,
                max: max as u64,
            });
        }
        Ok(got as usize)
    }

    fn str_field(&mut self, what: &'static str, max: usize) -> Result<&'a str, WireError> {
        let len = self.bounded(what, max)?;
        let end = self.at.checked_add(len).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.at,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One `(user, k)` entry of a `SUGGEST_BATCH` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEntry {
    /// The user whose session to suggest against.
    pub user: u64,
    /// How many suggestions that user wants.
    pub k: usize,
}

/// The entry list of a `SUGGEST_BATCH` request, validated at decode time
/// and iterated straight off the frame bytes (no per-entry allocation).
#[derive(Debug, Clone, Copy)]
pub struct BatchEntries<'a> {
    raw: &'a [u8],
    count: usize,
}

impl<'a> BatchEntries<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the batch carries no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the entries in wire order.
    pub fn iter(&self) -> impl Iterator<Item = BatchEntry> + 'a {
        let raw = self.raw;
        let mut at = 0usize;
        (0..self.count).map(move |_| {
            // The whole region was walked and bounds-checked at decode
            // time, so re-parsing here cannot fail.
            let mut r = Reader { buf: raw, at };
            let user = r.u64_le().expect("validated batch entry");
            let k = r.uvarint().expect("validated batch entry") as usize;
            at = r.at;
            BatchEntry { user, k }
        })
    }
}

/// A decoded request frame, borrowing string fields from the frame body.
#[derive(Debug, Clone, Copy)]
pub enum Request<'a> {
    /// Track `query` for `user` at `now`; reply is `R_ACK`.
    Track {
        /// User id.
        user: u64,
        /// Logical timestamp (seconds).
        now: u64,
        /// The query text, borrowed from the frame.
        query: &'a str,
    },
    /// Suggest `k` continuations against `user`'s session at `now`.
    Suggest {
        /// User id.
        user: u64,
        /// Logical timestamp (seconds).
        now: u64,
        /// How many suggestions.
        k: usize,
    },
    /// Track `query` then suggest `k` continuations in one round trip.
    TrackSuggest {
        /// User id.
        user: u64,
        /// Logical timestamp (seconds).
        now: u64,
        /// How many suggestions.
        k: usize,
        /// The query text, borrowed from the frame.
        query: &'a str,
    },
    /// Batched suggestion at one shared timestamp.
    SuggestBatch {
        /// Logical timestamp (seconds).
        now: u64,
        /// The `(user, k)` entries.
        entries: BatchEntries<'a>,
    },
    /// Read counters and generation.
    Stats,
    /// Liveness probe.
    Ping,
    /// Evict sessions idle as of `now`.
    Evict {
        /// Logical timestamp (seconds).
        now: u64,
    },
    /// Admin: publish the snapshot file at `path` to the whole surface.
    Publish {
        /// Server-local snapshot path.
        path: &'a str,
    },
    /// Admin: roll the snapshot file at `path` across replicas.
    RollingPublish {
        /// Abort the roll on the first replica failure.
        abort_on_failure: bool,
        /// Server-local snapshot path.
        path: &'a str,
    },
}

impl Request<'_> {
    /// True for opcodes that may only be served on the admin port.
    pub fn is_admin(&self) -> bool {
        matches!(
            self,
            Request::Publish { .. } | Request::RollingPublish { .. }
        )
    }
}

/// Decode a request frame body (everything after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<Request<'_>, WireError> {
    let mut r = Reader::new(body);
    let opcode = r.u8().map_err(|_| WireError::EmptyFrame)?;
    let req = match opcode {
        op::TRACK => {
            let user = r.u64_le()?;
            let now = r.u64_le()?;
            let query = r.str_field("query length", MAX_QUERY_LEN)?;
            Request::Track { user, now, query }
        }
        op::SUGGEST => {
            let user = r.u64_le()?;
            let now = r.u64_le()?;
            let k = r.bounded("k", MAX_K)?;
            Request::Suggest { user, now, k }
        }
        op::TRACK_SUGGEST => {
            let user = r.u64_le()?;
            let now = r.u64_le()?;
            let k = r.bounded("k", MAX_K)?;
            let query = r.str_field("query length", MAX_QUERY_LEN)?;
            Request::TrackSuggest {
                user,
                now,
                k,
                query,
            }
        }
        op::SUGGEST_BATCH => {
            let now = r.u64_le()?;
            let count = r.bounded("batch size", MAX_BATCH)?;
            let start = r.at;
            for _ in 0..count {
                r.u64_le()?;
                r.bounded("k", MAX_K)?;
            }
            let entries = BatchEntries {
                raw: &body[start..r.at],
                count,
            };
            Request::SuggestBatch { now, entries }
        }
        op::STATS => Request::Stats,
        op::PING => Request::Ping,
        op::EVICT => {
            let now = r.u64_le()?;
            Request::Evict { now }
        }
        op::PUBLISH => {
            let path = r.str_field("path length", MAX_PATH_LEN)?;
            Request::Publish { path }
        }
        op::ROLLING_PUBLISH => {
            let abort_on_failure = r.u8()? != 0;
            let path = r.str_field("path length", MAX_PATH_LEN)?;
            Request::RollingPublish {
                abort_on_failure,
                path,
            }
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    r.done()?;
    Ok(req)
}

#[inline]
fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Append a `TRACK` request body to `buf`.
pub fn encode_track(buf: &mut Vec<u8>, user: u64, query: &str, now: u64) {
    buf.push(op::TRACK);
    put_u64_le(buf, user);
    put_u64_le(buf, now);
    put_str(buf, query);
}

/// Append a `SUGGEST` request body to `buf`.
pub fn encode_suggest(buf: &mut Vec<u8>, user: u64, k: usize, now: u64) {
    buf.push(op::SUGGEST);
    put_u64_le(buf, user);
    put_u64_le(buf, now);
    put_uvarint(buf, k as u64);
}

/// Append a `TRACK_SUGGEST` request body to `buf`.
pub fn encode_track_suggest(buf: &mut Vec<u8>, user: u64, query: &str, k: usize, now: u64) {
    buf.push(op::TRACK_SUGGEST);
    put_u64_le(buf, user);
    put_u64_le(buf, now);
    put_uvarint(buf, k as u64);
    put_str(buf, query);
}

/// Append a `SUGGEST_BATCH` request body to `buf`.
pub fn encode_suggest_batch(buf: &mut Vec<u8>, entries: &[BatchEntry], now: u64) {
    buf.push(op::SUGGEST_BATCH);
    put_u64_le(buf, now);
    put_uvarint(buf, entries.len() as u64);
    for e in entries {
        put_u64_le(buf, e.user);
        put_uvarint(buf, e.k as u64);
    }
}

/// Append a `STATS` request body to `buf`.
pub fn encode_stats(buf: &mut Vec<u8>) {
    buf.push(op::STATS);
}

/// Append a `PING` request body to `buf`.
pub fn encode_ping(buf: &mut Vec<u8>) {
    buf.push(op::PING);
}

/// Append an `EVICT` request body to `buf`.
pub fn encode_evict(buf: &mut Vec<u8>, now: u64) {
    buf.push(op::EVICT);
    put_u64_le(buf, now);
}

/// Append a `PUBLISH` admin request body to `buf`.
pub fn encode_publish(buf: &mut Vec<u8>, path: &str) {
    buf.push(op::PUBLISH);
    put_str(buf, path);
}

/// Append a `ROLLING_PUBLISH` admin request body to `buf`.
pub fn encode_rolling_publish(buf: &mut Vec<u8>, path: &str, abort_on_failure: bool) {
    buf.push(op::ROLLING_PUBLISH);
    buf.push(u8::from(abort_on_failure));
    put_str(buf, path);
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

/// The counters an `R_STATS` reply carries (a fixed block of seven
/// little-endian `u64`s — see `WIRE.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Fully-propagated model generation.
    pub generation: u64,
    /// Queries tracked.
    pub tracks: u64,
    /// Individual suggestions computed.
    pub suggests: u64,
    /// Snapshot publishes observed by the surface.
    pub publishes: u64,
    /// Requests shed by admission control (engine-level).
    pub shed: u64,
    /// Idle sessions evicted.
    pub evictions: u64,
    /// Sessions currently resident.
    pub active_sessions: u64,
}

/// Outcome summary of a `ROLLING_PUBLISH`, as carried by `R_ROLLED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RollSummary {
    /// The roll stopped early under the abort-on-failure policy.
    pub aborted: bool,
    /// Replicas upgraded to the new snapshot.
    pub upgraded: u64,
    /// Replicas whose publish failed.
    pub failed: u64,
    /// Replicas skipped (quarantined, or unvisited after an abort).
    pub skipped: u64,
}

/// One suggestion list inside an `R_SUGGESTIONS`/`R_BATCH` reply,
/// validated at decode time and iterated straight off the frame bytes.
#[derive(Debug, Clone, Copy)]
pub struct SuggestionList<'a> {
    raw: &'a [u8],
    count: usize,
}

impl<'a> SuggestionList<'a> {
    /// Number of suggestions in the list.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate `(score, query)` pairs in rank order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &'a str)> + 'a {
        let raw = self.raw;
        let mut at = 0usize;
        (0..self.count).map(move |_| {
            let mut r = Reader { buf: raw, at };
            let score = r.f64_le().expect("validated suggestion entry");
            let query = r
                .str_field("query length", MAX_QUERY_LEN)
                .expect("validated suggestion entry");
            at = r.at;
            (score, query)
        })
    }
}

/// The per-entry lists of an `R_BATCH` reply.
#[derive(Debug, Clone, Copy)]
pub struct BatchLists<'a> {
    raw: &'a [u8],
    count: usize,
}

impl<'a> BatchLists<'a> {
    /// Number of per-entry suggestion lists.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the reply carries no lists.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate the per-entry lists in request order.
    pub fn iter(&self) -> impl Iterator<Item = SuggestionList<'a>> + 'a {
        let raw = self.raw;
        let mut at = 0usize;
        (0..self.count).map(move |_| {
            let mut r = Reader { buf: raw, at };
            let count = r
                .bounded("suggestion count", MAX_K)
                .expect("validated batch list");
            let entries_start = r.at;
            for _ in 0..count {
                r.f64_le().expect("validated batch list");
                r.str_field("query length", MAX_QUERY_LEN)
                    .expect("validated batch list");
            }
            at = r.at;
            SuggestionList {
                raw: &raw[entries_start..at],
                count,
            }
        })
    }
}

/// A decoded reply frame, borrowing string fields from the frame body.
#[derive(Debug, Clone, Copy)]
pub enum Reply<'a> {
    /// `R_ACK`: a track landed.
    Ack {
        /// The track started a fresh session.
        new_session: bool,
        /// Queries now in the user's context window.
        context_len: usize,
    },
    /// `R_SUGGESTIONS`: ranked suggestions.
    Suggestions(SuggestionList<'a>),
    /// `R_BATCH`: one suggestion list per batch entry, in request order.
    Batch(BatchLists<'a>),
    /// `R_STATS`: surface counters.
    Stats(WireStats),
    /// `R_OVERLOADED`: the request was shed.
    Overloaded {
        /// The in-flight budget that was exhausted (0 when the shed came
        /// from the server's connection queue rather than the engine).
        limit: u64,
    },
    /// `R_ERROR`: typed error.
    Error {
        /// A [`code`] constant.
        code: u8,
        /// Human-readable detail, borrowed from the frame.
        message: &'a str,
    },
    /// `R_PUBLISHED`: an admin publish landed.
    Published {
        /// The surface's generation after the publish.
        generation: u64,
    },
    /// `R_ROLLED`: a rolling publish finished.
    Rolled(RollSummary),
    /// `R_PONG`: liveness answer.
    Pong,
    /// `R_EVICTED`: idle-session eviction ran.
    Evicted {
        /// Sessions evicted.
        count: u64,
    },
}

/// Decode a reply frame body (everything after the length prefix).
pub fn decode_reply(body: &[u8]) -> Result<Reply<'_>, WireError> {
    let mut r = Reader::new(body);
    let opcode = r.u8().map_err(|_| WireError::EmptyFrame)?;
    let reply = match opcode {
        op::R_ACK => {
            let new_session = r.u8()? != 0;
            let context_len = r.bounded("context length", u32::MAX as usize)?;
            Reply::Ack {
                new_session,
                context_len,
            }
        }
        op::R_SUGGESTIONS => {
            let count = r.bounded("suggestion count", MAX_K)?;
            let start = r.at;
            for _ in 0..count {
                r.f64_le()?;
                r.str_field("query length", MAX_QUERY_LEN)?;
            }
            Reply::Suggestions(SuggestionList {
                raw: &body[start..r.at],
                count,
            })
        }
        op::R_BATCH => {
            let count = r.bounded("batch size", MAX_BATCH)?;
            let start = r.at;
            for _ in 0..count {
                let inner = r.bounded("suggestion count", MAX_K)?;
                for _ in 0..inner {
                    r.f64_le()?;
                    r.str_field("query length", MAX_QUERY_LEN)?;
                }
            }
            Reply::Batch(BatchLists {
                raw: &body[start..r.at],
                count,
            })
        }
        op::R_STATS => Reply::Stats(WireStats {
            generation: r.u64_le()?,
            tracks: r.u64_le()?,
            suggests: r.u64_le()?,
            publishes: r.u64_le()?,
            shed: r.u64_le()?,
            evictions: r.u64_le()?,
            active_sessions: r.u64_le()?,
        }),
        op::R_OVERLOADED => Reply::Overloaded { limit: r.u64_le()? },
        op::R_ERROR => {
            let code = r.u8()?;
            let message = r.str_field("message length", MAX_ERROR_MSG)?;
            Reply::Error { code, message }
        }
        op::R_PUBLISHED => Reply::Published {
            generation: r.u64_le()?,
        },
        op::R_ROLLED => Reply::Rolled(RollSummary {
            aborted: r.u8()? != 0,
            upgraded: r.uvarint()?,
            failed: r.uvarint()?,
            skipped: r.uvarint()?,
        }),
        op::R_PONG => Reply::Pong,
        op::R_EVICTED => Reply::Evicted { count: r.u64_le()? },
        other => return Err(WireError::UnknownOpcode(other)),
    };
    r.done()?;
    Ok(reply)
}

/// Append an `R_ACK` reply body to `buf`.
pub fn encode_ack(buf: &mut Vec<u8>, new_session: bool, context_len: usize) {
    buf.push(op::R_ACK);
    buf.push(u8::from(new_session));
    put_uvarint(buf, context_len as u64);
}

/// Append one suggestion list (count prefix plus entries) to `buf`.
fn put_suggestions(buf: &mut Vec<u8>, suggestions: &[sqp_serve::Suggestion]) {
    put_uvarint(buf, suggestions.len() as u64);
    for s in suggestions {
        put_u64_le(buf, s.score.to_bits());
        put_str(buf, &s.query);
    }
}

/// Append an `R_SUGGESTIONS` reply body to `buf`.
pub fn encode_suggestions(buf: &mut Vec<u8>, suggestions: &[sqp_serve::Suggestion]) {
    buf.push(op::R_SUGGESTIONS);
    put_suggestions(buf, suggestions);
}

/// Append an `R_BATCH` reply body to `buf`.
pub fn encode_batch(buf: &mut Vec<u8>, lists: &[Vec<sqp_serve::Suggestion>]) {
    buf.push(op::R_BATCH);
    put_uvarint(buf, lists.len() as u64);
    for list in lists {
        put_suggestions(buf, list);
    }
}

/// Append an `R_STATS` reply body to `buf`.
pub fn encode_stats_reply(buf: &mut Vec<u8>, stats: &WireStats) {
    buf.push(op::R_STATS);
    put_u64_le(buf, stats.generation);
    put_u64_le(buf, stats.tracks);
    put_u64_le(buf, stats.suggests);
    put_u64_le(buf, stats.publishes);
    put_u64_le(buf, stats.shed);
    put_u64_le(buf, stats.evictions);
    put_u64_le(buf, stats.active_sessions);
}

/// Append an `R_OVERLOADED` reply body to `buf`.
pub fn encode_overloaded(buf: &mut Vec<u8>, limit: u64) {
    buf.push(op::R_OVERLOADED);
    put_u64_le(buf, limit);
}

/// Append an `R_ERROR` reply body to `buf`, truncating the message to
/// [`MAX_ERROR_MSG`] bytes at a char boundary.
pub fn encode_error(buf: &mut Vec<u8>, code: u8, message: &str) {
    let mut end = message.len().min(MAX_ERROR_MSG);
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    buf.push(op::R_ERROR);
    buf.push(code);
    put_str(buf, &message[..end]);
}

/// Append an `R_PUBLISHED` reply body to `buf`.
pub fn encode_published(buf: &mut Vec<u8>, generation: u64) {
    buf.push(op::R_PUBLISHED);
    put_u64_le(buf, generation);
}

/// Append an `R_ROLLED` reply body to `buf`.
pub fn encode_rolled(buf: &mut Vec<u8>, summary: &RollSummary) {
    buf.push(op::R_ROLLED);
    buf.push(u8::from(summary.aborted));
    put_uvarint(buf, summary.upgraded);
    put_uvarint(buf, summary.failed);
    put_uvarint(buf, summary.skipped);
}

/// Append an `R_PONG` reply body to `buf`.
pub fn encode_pong(buf: &mut Vec<u8>) {
    buf.push(op::R_PONG);
}

/// Append an `R_EVICTED` reply body to `buf`.
pub fn encode_evicted(buf: &mut Vec<u8>, count: u64) {
    buf.push(op::R_EVICTED);
    put_u64_le(buf, count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_serve::Suggestion;

    #[test]
    fn request_roundtrips() {
        let mut buf = Vec::new();

        encode_track(&mut buf, 7, "rust", 1_000);
        match decode_request(&buf).unwrap() {
            Request::Track { user, now, query } => {
                assert_eq!((user, now, query), (7, 1_000, "rust"));
            }
            other => panic!("wrong request: {other:?}"),
        }

        buf.clear();
        encode_track_suggest(&mut buf, 7, "rust", 3, 1_000);
        match decode_request(&buf).unwrap() {
            Request::TrackSuggest {
                user,
                now,
                k,
                query,
            } => assert_eq!((user, now, k, query), (7, 1_000, 3, "rust")),
            other => panic!("wrong request: {other:?}"),
        }

        buf.clear();
        let entries = [
            BatchEntry { user: 1, k: 5 },
            BatchEntry {
                user: u64::MAX,
                k: 200,
            },
        ];
        encode_suggest_batch(&mut buf, &entries, 42);
        match decode_request(&buf).unwrap() {
            Request::SuggestBatch { now, entries: got } => {
                assert_eq!(now, 42);
                assert_eq!(got.iter().collect::<Vec<_>>(), entries);
            }
            other => panic!("wrong request: {other:?}"),
        }

        buf.clear();
        encode_rolling_publish(&mut buf, "/tmp/snap.sqp", true);
        match decode_request(&buf).unwrap() {
            Request::RollingPublish {
                abort_on_failure,
                path,
            } => assert_eq!((abort_on_failure, path), (true, "/tmp/snap.sqp")),
            other => panic!("wrong request: {other:?}"),
        }
        assert!(decode_request(&buf).unwrap().is_admin());
    }

    #[test]
    fn reply_roundtrips() {
        let mut buf = Vec::new();
        let sugg = |q: &str, s: f64| Suggestion {
            query: q.into(),
            score: s,
        };

        encode_suggestions(&mut buf, &[sugg("rust book", 0.5), sugg("rust lang", 0.25)]);
        match decode_reply(&buf).unwrap() {
            Reply::Suggestions(list) => {
                let got: Vec<_> = list.iter().collect();
                assert_eq!(got, vec![(0.5, "rust book"), (0.25, "rust lang")]);
            }
            other => panic!("wrong reply: {other:?}"),
        }

        buf.clear();
        encode_batch(
            &mut buf,
            &[
                vec![sugg("a", 1.0)],
                vec![],
                vec![sugg("b", 0.5), sugg("c", 0.25)],
            ],
        );
        match decode_reply(&buf).unwrap() {
            Reply::Batch(lists) => {
                let got: Vec<Vec<_>> = lists.iter().map(|l| l.iter().collect()).collect();
                assert_eq!(
                    got,
                    vec![vec![(1.0, "a")], vec![], vec![(0.5, "b"), (0.25, "c")],]
                );
            }
            other => panic!("wrong reply: {other:?}"),
        }

        buf.clear();
        let stats = WireStats {
            generation: 3,
            tracks: 10,
            suggests: 20,
            publishes: 3,
            shed: 1,
            evictions: 2,
            active_sessions: 4,
        };
        encode_stats_reply(&mut buf, &stats);
        match decode_reply(&buf).unwrap() {
            Reply::Stats(got) => assert_eq!(got, stats),
            other => panic!("wrong reply: {other:?}"),
        }

        buf.clear();
        encode_rolled(
            &mut buf,
            &RollSummary {
                aborted: true,
                upgraded: 2,
                failed: 1,
                skipped: 1,
            },
        );
        match decode_reply(&buf).unwrap() {
            Reply::Rolled(summary) => {
                assert_eq!(
                    (summary.upgraded, summary.failed, summary.skipped),
                    (2, 1, 1)
                );
                assert!(summary.aborted);
            }
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_get_typed_errors() {
        assert!(matches!(decode_request(&[]), Err(WireError::EmptyFrame)));
        assert!(matches!(
            decode_request(&[0x55]),
            Err(WireError::UnknownOpcode(0x55))
        ));

        // Truncation anywhere inside a valid request body.
        let mut buf = Vec::new();
        encode_track_suggest(&mut buf, 7, "rust", 3, 1_000);
        for cut in 1..buf.len() {
            assert!(
                decode_request(&buf[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }

        // Trailing garbage after a complete request.
        buf.push(0);
        assert!(matches!(
            decode_request(&buf),
            Err(WireError::TrailingBytes { extra: 1 })
        ));

        // A declared query length larger than the protocol limit is
        // rejected before any allocation happens on its behalf.
        let mut huge = vec![op::TRACK];
        huge.extend_from_slice(&7u64.to_le_bytes());
        huge.extend_from_slice(&1_000u64.to_le_bytes());
        put_uvarint(&mut huge, (MAX_QUERY_LEN as u64) + 1);
        assert!(matches!(
            decode_request(&huge),
            Err(WireError::LimitExceeded {
                what: "query length",
                ..
            })
        ));

        // Invalid UTF-8 in a string field.
        let mut bad = vec![op::TRACK];
        bad.extend_from_slice(&7u64.to_le_bytes());
        bad.extend_from_slice(&1_000u64.to_le_bytes());
        put_uvarint(&mut bad, 2);
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(decode_request(&bad).unwrap_err(), WireError::BadUtf8);
        assert_eq!(WireError::BadUtf8.code(), code::BAD_UTF8);
    }
}
