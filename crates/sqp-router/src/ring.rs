//! Deterministic consistent-hash ring over replica ids.
//!
//! The router needs a user → replica mapping with three properties:
//!
//! * **Sticky** — the same user always lands on the same replica, so their
//!   session context (which lives in exactly one replica's tracker) keeps
//!   being found. Any deterministic hash gives this.
//! * **Stable under resize** — adding or removing one replica must remap
//!   only ~1/N of users, not reshuffle everyone (a modulo mapping remaps
//!   (N-1)/N and would orphan almost every live session). This is what the
//!   ring buys: each replica owns many small arcs of the hash circle, and
//!   resizing only moves the arcs adjacent to the added/removed points.
//! * **Deterministic across processes** — routing is part of the serving
//!   contract (an operator reasons about "user U is on replica 2"), so the
//!   ring hashes with the workspace's fixed-key FxHash, never
//!   `RandomState`. Two processes, or the same process restarted, route
//!   identically. The property tests pin this with golden values.
//!
//! Layout: each replica id contributes `vnodes` points on the `u64`
//! circle; a user hashes onto the circle and is served by the first point
//! at or after that value (wrapping). More vnodes → smoother load split
//! (the property tests hold the default within 2× of uniform) at the cost
//! of a larger sorted array; lookups stay `O(log(replicas × vnodes))`
//! either way.
//!
//! Positions are `splitmix64(fx_hash_one(key))`, not raw FxHash. Fx is a
//! single multiply per word — ideal for hash-map bucketing, but on a
//! *comparison-ordered* circle its outputs for small sequential keys all
//! sit on one multiplicative lattice (`n·K mod 2⁶⁴`), and user points
//! correlate with vnode points badly enough to starve whole replicas (an
//! early version measured a 0-user replica at N=8). The splitmix64
//! finalizer is a fixed, keyless full-avalanche permutation: it keeps
//! determinism while destroying the lattice structure.

use sqp_common::hash::fx_hash_one;
use std::fmt;

/// Default virtual nodes per replica. 128 keeps the arc-length imbalance
/// across replicas within 2× of uniform for small clusters (asserted by the
/// property tests) while the whole ring for, say, 8 replicas still fits in
/// a few cache lines' worth of binary-search depth.
pub const DEFAULT_VNODES: usize = 128;

/// Error from [`HashRing::remove`]: removing this replica would leave the
/// ring empty, and an empty ring cannot route.
///
/// The invariant this error defends: **a ring that has ever held a replica
/// never becomes empty through `remove`** — so `route` is total on any
/// ring built with at least one replica and only ever mutated through
/// `add`/`remove`. Callers that genuinely want to tear a tier down drop
/// the ring; they don't drain it to zero one replica at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WouldEmptyRing;

impl fmt::Display for WouldEmptyRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "removing the last replica would leave an empty ring")
    }
}

impl std::error::Error for WouldEmptyRing {}

/// A consistent-hash ring mapping `u64` user ids onto replica indices.
///
/// # Examples
///
/// ```
/// use sqp_router::HashRing;
///
/// let ring = HashRing::new(4, 128);
/// let replica = ring.route(42);
/// assert!(replica < 4);
/// // Deterministic: a rebuilt ring routes identically.
/// assert_eq!(HashRing::new(4, 128).route(42), replica);
/// ```
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Sorted `(point, replica)` pairs — the unit circle, flattened.
    points: Vec<(u64, u32)>,
    /// Live replica ids, sorted (mirrors the distinct ids in `points`).
    replicas: Vec<u32>,
    vnodes: usize,
}

impl HashRing {
    /// Ring over replica ids `0..replicas`, `vnodes` points per replica
    /// (`0` is rounded up to 1).
    pub fn new(replicas: usize, vnodes: usize) -> Self {
        Self::with_ids(0..replicas as u32, vnodes)
    }

    /// Ring over an explicit id set — ids need not be contiguous, so a
    /// caller can model "replica 2 was decommissioned" without renumbering.
    pub fn with_ids(ids: impl IntoIterator<Item = u32>, vnodes: usize) -> Self {
        let mut ring = Self {
            points: Vec::new(),
            replicas: Vec::new(),
            vnodes: vnodes.max(1),
        };
        for id in ids {
            ring.add(id);
        }
        ring
    }

    /// Add a replica id. Returns false (and changes nothing) if already
    /// present. Only users whose hash falls on the arcs the new points
    /// claim move — ~1/N of them, asserted by the property tests.
    pub fn add(&mut self, id: u32) -> bool {
        if self.replicas.contains(&id) {
            return false;
        }
        self.replicas.push(id);
        self.replicas.sort_unstable();
        for vnode in 0..self.vnodes {
            self.points.push((point_for(id, vnode), id));
        }
        // Sort by (point, replica): the replica id breaks the (vanishingly
        // rare) point collision deterministically.
        self.points.sort_unstable();
        true
    }

    /// Remove a replica id. `Ok(false)` if absent (nothing changes),
    /// `Ok(true)` if removed. Users on the removed arcs fall through to
    /// the next point on the circle; everyone else is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`WouldEmptyRing`] — and changes nothing — when `id` is the
    /// only replica: a non-empty ring never becomes empty through
    /// `remove`, which is what keeps [`HashRing::route`] total on any ring
    /// constructed with at least one replica.
    pub fn remove(&mut self, id: u32) -> Result<bool, WouldEmptyRing> {
        let Ok(at) = self.replicas.binary_search(&id) else {
            return Ok(false);
        };
        if self.replicas.len() == 1 {
            return Err(WouldEmptyRing);
        }
        self.replicas.remove(at);
        self.points.retain(|&(_, r)| r != id);
        Ok(true)
    }

    /// The replica serving `user`.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty — an empty serving tier cannot route.
    /// Rings built with ≥1 replica never reach that state (see
    /// [`WouldEmptyRing`]); rings built empty should route through
    /// [`HashRing::try_route`] instead.
    pub fn route(&self, user: u64) -> u32 {
        self.route_hash(fx_hash_one(&user))
    }

    /// The replica serving `user`, or `None` when the ring is empty — the
    /// total-function form of [`HashRing::route`] for callers that build
    /// rings from dynamic id sets and cannot rule the empty case out.
    pub fn try_route(&self, user: u64) -> Option<u32> {
        self.try_route_hash(fx_hash_one(&user))
    }

    /// [`HashRing::route_hash`], but `None` instead of a panic on an empty
    /// ring.
    pub fn try_route_hash(&self, hash: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.route_hash(hash))
    }

    /// Route a precomputed hash — for callers that place non-user keys
    /// (e.g. a stateless context request) onto the same circle. The value
    /// is passed through the ring's avalanche mix before lookup, so any
    /// deterministic 64-bit fingerprint routes uniformly.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn route_hash(&self, hash: u64) -> u32 {
        assert!(!self.points.is_empty(), "routing over an empty ring");
        let place = mix(hash);
        let at = self.points.partition_point(|&(point, _)| point < place);
        // Wrap past the last point back to the first: it's a circle.
        self.points[at % self.points.len()].1
    }

    /// Live replica ids, sorted ascending.
    pub fn replica_ids(&self) -> &[u32] {
        &self.replicas
    }

    /// Number of live replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when no replicas are registered.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Virtual nodes contributed per replica.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

/// Domain-separation salt for vnode placement. Without it, replica 0's
/// vnode points hash exactly like plain user ids (Fx folds a leading zero
/// id into nothing: `fx((0u32, v)) == fx(v as u64)`), so every user id
/// below the vnode count landed *exactly on* one of replica 0's points —
/// a deterministic hot spot the distribution test catches.
const POINT_DOMAIN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Placement of one virtual node on the circle. Fixed-key FxHash over the
/// salted `(domain, replica, vnode)` triple, then the avalanche mix — no
/// per-process or per-build randomness anywhere, so the mapping survives
/// restarts and agrees across processes.
fn point_for(id: u32, vnode: usize) -> u64 {
    mix(fx_hash_one(&(POINT_DOMAIN, id, vnode as u64)))
}

/// SplitMix64's finalizer (Steele et al.): a fixed full-avalanche bijection
/// on `u64`. Every output bit depends on every input bit, which is what a
/// comparison-ordered circle needs and single-multiply Fx does not give
/// (see the module docs).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_are_idempotent() {
        let mut ring = HashRing::new(3, 8);
        assert_eq!(ring.replica_ids(), &[0, 1, 2]);
        assert!(!ring.add(1));
        assert_eq!(ring.remove(1), Ok(true));
        assert_eq!(ring.remove(1), Ok(false));
        assert_eq!(ring.replica_ids(), &[0, 2]);
        assert!(ring.add(1));
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn routes_only_to_live_replicas() {
        let mut ring = HashRing::new(4, 16);
        ring.remove(2).unwrap();
        for user in 0..1000u64 {
            assert_ne!(
                ring.route(user),
                2,
                "user {user} routed to a removed replica"
            );
        }
    }

    #[test]
    fn remove_refuses_to_empty_the_ring() {
        let mut ring = HashRing::new(2, 8);
        assert_eq!(ring.remove(0), Ok(true));
        // Down to one replica: the last remove is refused, the ring is
        // untouched, and routing stays total.
        assert_eq!(ring.remove(1), Err(WouldEmptyRing));
        assert_eq!(ring.replica_ids(), &[1]);
        assert_eq!(ring.route(42), 1);
        // Removing an id that was never present is still a quiet no-op,
        // even at size one.
        assert_eq!(ring.remove(7), Ok(false));
        // Grow again and the previously refused id removes cleanly.
        assert!(ring.add(3));
        assert_eq!(ring.remove(1), Ok(true));
        assert_eq!(ring.replica_ids(), &[3]);
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_panics() {
        HashRing::with_ids([], 8).route(1);
    }

    #[test]
    fn try_route_is_total() {
        let empty = HashRing::with_ids([], 8);
        assert_eq!(empty.try_route(1), None);
        assert_eq!(empty.try_route_hash(0xdead_beef), None);
        let ring = HashRing::new(3, 8);
        for user in 0..100u64 {
            assert_eq!(ring.try_route(user), Some(ring.route(user)));
        }
    }

    #[test]
    fn explicit_ids_round_trip() {
        let ring = HashRing::with_ids([5, 9], 8);
        assert_eq!(ring.replica_ids(), &[5, 9]);
        let r = ring.route(123);
        assert!(r == 5 || r == 9);
    }
}
