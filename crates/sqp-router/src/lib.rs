//! Replicated, routed serving tier for sequential query prediction.
//!
//! One [`ServeEngine`](sqp_serve::ServeEngine) tops out at a single
//! process-wide tracker and snapshot cell; the ROADMAP's "millions of
//! users" target wants N of them behind one front door. This crate adds
//! that tier:
//!
//! * [`HashRing`] — deterministic consistent hashing of user ids onto
//!   replica ids: sticky per user, ~1/N remapping under resize, no
//!   `RandomState` anywhere (routing survives restarts and agrees across
//!   processes);
//! * [`RouterEngine`] — owns N independently locked replicas, exposes the
//!   single engine's serve surface (`track_and_suggest`, `suggest_batch`,
//!   `try_track_and_suggest`, …) so callers promote transparently, and
//!   adds per-replica publication ([`RouterEngine::publish_to`]) with
//!   quarantine marks — the primitives rolling upgrades are built from;
//! * [`RouterStats`] — per-replica generation/health/shed introspection
//!   plus the generation envelope (min/max/skew) an operator watches
//!   during a roll.
//!
//! Storage-aware publication (fan-out and rolling publish *from disk*,
//! with per-replica validation and quarantine-on-failure) lives in
//! `sqp-store`'s `rollout` module, which builds on the primitives here.

#![deny(missing_docs)]

mod ring;
mod router;

pub use ring::{HashRing, WouldEmptyRing, DEFAULT_VNODES};
pub use router::{
    HandoffReport, MembershipError, ReplicaStats, RouterConfig, RouterEngine, RouterStats,
};
