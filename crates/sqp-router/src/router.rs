//! The routed serving tier: N independent [`ServeEngine`] replicas behind
//! one consistent-hash front door.
//!
//! Each replica owns its own session tracker, snapshot cell, admission
//! budget, and counters — there is no shared mutable state between
//! replicas, so the tier scales by adding replicas, not by making one
//! engine's stripes wider. A user's id hashes onto the [`HashRing`] and
//! every request for that user goes to the same replica, which is where
//! their session context lives. Replicas can therefore sit on *different*
//! model generations mid-roll without any request ever seeing a mix: a
//! suggestion is computed by exactly one replica against exactly one
//! snapshot handle (the single-engine no-torn-reads guarantee, inherited
//! per replica).
//!
//! Publication comes in two shapes, both replica-at-a-time underneath:
//! [`RouterEngine::publish`] fans one in-memory snapshot out to every
//! replica (an atomic swap each), while the rolling/fan-out *from disk*
//! paths — which validate bytes per replica and quarantine failures — live
//! in `sqp-store`'s `rollout` module, keeping this crate free of any
//! storage dependency.

use crate::ring::{HashRing, DEFAULT_VNODES};
use sqp_common::hash::fx_hash_one;
use sqp_serve::{
    EngineConfig, EngineStats, ModelSnapshot, Overloaded, ServeEngine, ServeSurface,
    SuggestRequest, Suggestion, TrackOutcome,
};
use std::sync::{Arc, Mutex, PoisonError};

/// Router construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Number of [`ServeEngine`] replicas to own. Each gets its own
    /// tracker/budget from `engine`, so memory and the admission budget
    /// both scale ×`replicas`.
    pub replicas: usize,
    /// Virtual nodes per replica on the hash ring (see
    /// [`DEFAULT_VNODES`]).
    pub vnodes: usize,
    /// Per-replica engine configuration.
    pub engine: EngineConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            replicas: 4,
            vnodes: DEFAULT_VNODES,
            engine: EngineConfig::default(),
        }
    }
}

/// Per-replica health record, written on publish/quarantine transitions
/// (never on the serve path).
#[derive(Debug, Default)]
struct Health {
    quarantined: bool,
    last_error: Option<String>,
}

/// One replica's row in [`RouterStats`].
#[derive(Clone, Debug)]
pub struct ReplicaStats {
    /// Model generation the replica is serving (its publish count).
    pub generation: u64,
    /// The replica engine's lock-free counters and gauges.
    pub stats: EngineStats,
    /// Requests currently holding the replica's admission permits.
    pub in_flight: u64,
    /// True when the replica's last publication attempt failed validation
    /// and it is pinned on its last-good snapshot.
    pub quarantined: bool,
    /// The error that quarantined it, if any (kept after recovery until the
    /// next successful publish overwrites it).
    pub last_error: Option<String>,
}

/// Point-in-time view of the whole tier, one row per replica, plus the
/// generation envelope — the introspection an operator watches during a
/// rolling upgrade.
#[derive(Clone, Debug)]
pub struct RouterStats {
    /// Per-replica rows, indexed by replica id.
    pub replicas: Vec<ReplicaStats>,
}

impl RouterStats {
    /// Lowest replica generation (the roll's trailing edge).
    pub fn min_generation(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.generation)
            .min()
            .unwrap_or(0)
    }

    /// Highest replica generation (the roll's leading edge).
    pub fn max_generation(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.generation)
            .max()
            .unwrap_or(0)
    }

    /// `max_generation - min_generation`: 0 when the tier is converged,
    /// ≥1 while a roll is in flight or a replica is stuck/quarantined.
    pub fn generation_skew(&self) -> u64 {
        self.max_generation() - self.min_generation()
    }

    /// True when every replica serves the same generation.
    pub fn is_converged(&self) -> bool {
        self.generation_skew() == 0
    }

    /// Number of replicas currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.replicas.iter().filter(|r| r.quarantined).count()
    }
}

/// A replicated query-suggestion tier: consistent-hash routing over N
/// independently locked [`ServeEngine`] replicas.
///
/// All methods take `&self`; the router is meant to live in an [`Arc`]
/// shared across worker threads, exactly like a single engine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sqp_logsim::RawLogRecord;
/// use sqp_router::{RouterConfig, RouterEngine};
/// use sqp_serve::{ModelSnapshot, ModelSpec, TrainingConfig};
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let mut records = Vec::new();
/// for u in 0..5 {
///     records.push(rec(u, 100, "rust"));
///     records.push(rec(u, 150, "rust atomics"));
/// }
/// let cfg = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
/// let snapshot = Arc::new(ModelSnapshot::from_raw_logs(&records, &cfg));
/// let router = RouterEngine::new(snapshot, RouterConfig::default());
///
/// let top = router.track_and_suggest(42, "rust", 3, 1_000);
/// assert_eq!(top[0].query, "rust atomics");
/// // The same user always lands on the same replica.
/// assert_eq!(router.replica_for(42), router.replica_for(42));
/// ```
pub struct RouterEngine {
    replicas: Vec<Arc<ServeEngine>>,
    health: Vec<Mutex<Health>>,
    ring: HashRing,
}

impl RouterEngine {
    /// Build a tier of `cfg.replicas` engines (at least 1), every replica
    /// starting on `snapshot` at generation 0.
    pub fn new(snapshot: Arc<ModelSnapshot>, cfg: RouterConfig) -> Self {
        let n = cfg.replicas.max(1);
        let replicas: Vec<Arc<ServeEngine>> = (0..n)
            .map(|_| Arc::new(ServeEngine::new(Arc::clone(&snapshot), cfg.engine)))
            .collect();
        let health = (0..n).map(|_| Mutex::new(Health::default())).collect();
        Self {
            replicas,
            health,
            ring: HashRing::new(n, cfg.vnodes),
        }
    }

    /// Number of replicas in the tier.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The replica index serving `user` — stable for the tier's lifetime,
    /// so a user's session context is always found where it was written.
    pub fn replica_for(&self, user: u64) -> usize {
        self.ring.route(user) as usize
    }

    /// Direct handle to replica `index` (for tests and publication paths).
    ///
    /// # Panics
    ///
    /// Panics if `index >= replica_count()`.
    pub fn replica(&self, index: usize) -> &Arc<ServeEngine> {
        &self.replicas[index]
    }

    /// The routing ring (for inspection; the router's ring is fixed at
    /// construction — replica membership does not change at runtime, which
    /// is what makes mid-roll stickiness trivial to guarantee).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    fn engine_for(&self, user: u64) -> &ServeEngine {
        &self.replicas[self.replica_for(user)]
    }

    /// Record a query issued by `user` at `now` on their home replica.
    pub fn track(&self, user: u64, query: &str, now: u64) -> TrackOutcome {
        self.engine_for(user).track(user, query, now)
    }

    /// Top-`k` suggestions for `user`'s tracked session, from their home
    /// replica's current snapshot.
    pub fn suggest(&self, user: u64, k: usize, now: u64) -> Vec<Suggestion> {
        self.engine_for(user).suggest(user, k, now)
    }

    /// Record `query` for `user` and immediately suggest against the
    /// updated context — the common round trip, routed to the home replica.
    pub fn track_and_suggest(&self, user: u64, query: &str, k: usize, now: u64) -> Vec<Suggestion> {
        self.engine_for(user).track_and_suggest(user, query, k, now)
    }

    /// Admission-controlled [`track_and_suggest`](Self::track_and_suggest):
    /// the home replica's in-flight budget decides, so overload on one
    /// replica sheds only its own users.
    pub fn try_track_and_suggest(
        &self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        self.engine_for(user)
            .try_track_and_suggest(user, query, k, now)
    }

    /// Admission-controlled [`suggest`](Self::suggest).
    pub fn try_suggest(
        &self,
        user: u64,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        self.engine_for(user).try_suggest(user, k, now)
    }

    /// Batched suggestion across the tier: requests are scattered to each
    /// user's home replica (preserving request order within each
    /// sub-batch, so same-replica callers keep the single engine's stripe
    /// amortization) and the results gathered back into request order.
    /// Each sub-batch runs against exactly one replica snapshot, so every
    /// entry's suggestions are wholly from one model even mid-roll.
    pub fn suggest_batch(&self, requests: &[SuggestRequest], now: u64) -> Vec<Vec<Suggestion>> {
        // Fast path: a single-replica tier is just the engine.
        if self.replicas.len() == 1 {
            return self.replicas[0].suggest_batch(requests, now);
        }
        let mut per_replica: Vec<Vec<usize>> = vec![Vec::new(); self.replicas.len()];
        for (at, request) in requests.iter().enumerate() {
            per_replica[self.replica_for(request.user)].push(at);
        }
        let mut out: Vec<Vec<Suggestion>> = vec![Vec::new(); requests.len()];
        let mut sub: Vec<SuggestRequest> = Vec::new();
        for (replica, members) in per_replica.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            sub.clear();
            sub.extend(members.iter().map(|&at| requests[at]));
            let answers = self.replicas[replica].suggest_batch(&sub, now);
            for (&at, answer) in members.iter().zip(answers) {
                out[at] = answer;
            }
        }
        out
    }

    /// Admission-controlled [`suggest_batch`](Self::suggest_batch),
    /// all-or-nothing: each involved replica's sub-batch costs one of its
    /// permits, and the first replica that sheds fails the whole call (the
    /// answers already computed by earlier replicas are discarded, so the
    /// caller never merges partial answers with partial sheds). Uninvolved
    /// replicas spend nothing.
    pub fn try_suggest_batch(
        &self,
        requests: &[SuggestRequest],
        now: u64,
    ) -> Result<Vec<Vec<Suggestion>>, Overloaded> {
        if self.replicas.len() == 1 {
            return self.replicas[0].try_suggest_batch(requests, now);
        }
        let mut per_replica: Vec<Vec<usize>> = vec![Vec::new(); self.replicas.len()];
        for (at, request) in requests.iter().enumerate() {
            per_replica[self.replica_for(request.user)].push(at);
        }
        let mut out: Vec<Vec<Suggestion>> = vec![Vec::new(); requests.len()];
        let mut sub: Vec<SuggestRequest> = Vec::new();
        for (replica, members) in per_replica.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            sub.clear();
            sub.extend(members.iter().map(|&at| requests[at]));
            let answers = self.replicas[replica].try_suggest_batch(&sub, now)?;
            for (&at, answer) in members.iter().zip(answers) {
                out[at] = answer;
            }
        }
        Ok(out)
    }

    /// The tier's counters and gauges folded into one [`EngineStats`]:
    /// counters (tracks, suggests, shed, evictions) and the session gauge
    /// sum across replicas, while `publishes` reports the *minimum* replica
    /// generation — the fully-propagated trailing edge, matching what
    /// [`ServeSurface::generation`](sqp_serve::ServeSurface::generation)
    /// reports for a tier. Per-replica detail stays in [`Self::stats`].
    pub fn aggregate_stats(&self) -> EngineStats {
        let mut folded = EngineStats::default();
        let mut min_generation = u64::MAX;
        for replica in &self.replicas {
            let stats = replica.stats();
            folded.tracks += stats.tracks;
            folded.suggests += stats.suggests;
            folded.shed += stats.shed;
            folded.evictions += stats.evictions;
            folded.active_sessions += stats.active_sessions;
            min_generation = min_generation.min(replica.generation());
        }
        folded.publishes = if min_generation == u64::MAX {
            0
        } else {
            min_generation
        };
        folded
    }

    /// Stateless suggestion for an explicit context. No session is
    /// involved, so any replica could answer; the context itself is hashed
    /// onto the ring to spread these deterministically.
    pub fn suggest_context(&self, context: &[&str], k: usize) -> Vec<Suggestion> {
        let replica = self.ring.route_hash(fx_hash_one(&context)) as usize;
        self.replicas[replica].suggest_context(context, k)
    }

    /// Fan an in-memory snapshot out to every replica — N atomic swaps, in
    /// replica order. Each swap also lifts that replica's quarantine: a
    /// direct publish hands the replica known-good bytes, superseding
    /// whatever failed before. Returns the tier's minimum generation after
    /// the fan-out (the roll's trailing edge).
    pub fn publish(&self, snapshot: Arc<ModelSnapshot>) -> u64 {
        for index in 0..self.replicas.len() {
            self.publish_to(index, Arc::clone(&snapshot));
        }
        self.replicas
            .iter()
            .map(|r| r.generation())
            .min()
            .unwrap_or(0)
    }

    /// Publish to a single replica (one atomic swap) and mark it active.
    /// This is the step primitive rolling upgrades are built from. Returns
    /// the replica's new generation.
    ///
    /// # Panics
    ///
    /// Panics if `index >= replica_count()`.
    pub fn publish_to(&self, index: usize, snapshot: Arc<ModelSnapshot>) -> u64 {
        let generation = self.replicas[index].publish(snapshot);
        self.lock_health(index).quarantined = false;
        generation
    }

    /// Pin replica `index` on its current (last-good) snapshot and record
    /// why its publication failed. The replica keeps serving — quarantine
    /// is a publication-side state, not a traffic stop.
    ///
    /// # Panics
    ///
    /// Panics if `index >= replica_count()`.
    pub fn mark_quarantined(&self, index: usize, error: impl Into<String>) {
        let mut health = self.lock_health(index);
        health.quarantined = true;
        health.last_error = Some(error.into());
    }

    /// Clear replica `index`'s quarantine without publishing (operator
    /// override). The last error is kept for forensics until the next
    /// successful publish.
    ///
    /// # Panics
    ///
    /// Panics if `index >= replica_count()`.
    pub fn mark_active(&self, index: usize) {
        self.lock_health(index).quarantined = false;
    }

    /// True when replica `index` is quarantined.
    ///
    /// # Panics
    ///
    /// Panics if `index >= replica_count()`.
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.lock_health(index).quarantined
    }

    fn lock_health(&self, index: usize) -> std::sync::MutexGuard<'_, Health> {
        // Health transitions are trivially tear-proof (two plain fields);
        // recover rather than propagate a panicking publisher's poison.
        self.health[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Drop idle sessions across every replica; returns the total evicted.
    pub fn evict_idle(&self, now: u64) -> usize {
        self.replicas.iter().map(|r| r.evict_idle(now)).sum()
    }

    /// Sessions resident across the tier (sum of per-replica lock-free
    /// gauges).
    pub fn active_sessions(&self) -> usize {
        self.replicas.iter().map(|r| r.active_sessions()).sum()
    }

    /// Snapshot the whole tier's health: per-replica generation, counters,
    /// in-flight, and quarantine state. The engine rows are pure atomic
    /// loads (no stripe locks — see [`EngineStats`]); the only locks taken
    /// are the cold per-replica health mutexes, which the serve path never
    /// touches.
    pub fn stats(&self) -> RouterStats {
        let replicas = self
            .replicas
            .iter()
            .enumerate()
            .map(|(index, engine)| {
                let health = self.lock_health(index);
                ReplicaStats {
                    generation: engine.generation(),
                    stats: engine.stats(),
                    in_flight: engine.in_flight(),
                    quarantined: health.quarantined,
                    last_error: health.last_error.clone(),
                }
            })
            .collect();
        RouterStats { replicas }
    }
}

/// The router speaks the same [`ServeSurface`] as a single engine, so the
/// network front-end (`sqp-net`) and the stress harness
/// (`sqp-bench::serve_loop`) run unchanged on a replicated tier. Every
/// method delegates to the inherent routed implementation; the
/// tier-summary accessors report the trailing edge
/// ([`RouterStats::min_generation`]) and fold counters across replicas
/// ([`RouterEngine::aggregate_stats`]).
impl ServeSurface for RouterEngine {
    fn track(&self, user: u64, query: &str, now: u64) -> TrackOutcome {
        RouterEngine::track(self, user, query, now)
    }
    fn track_and_suggest(&self, user: u64, query: &str, k: usize, now: u64) -> Vec<Suggestion> {
        RouterEngine::track_and_suggest(self, user, query, k, now)
    }
    fn try_track_and_suggest(
        &self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        RouterEngine::try_track_and_suggest(self, user, query, k, now)
    }
    fn try_suggest(&self, user: u64, k: usize, now: u64) -> Result<Vec<Suggestion>, Overloaded> {
        RouterEngine::try_suggest(self, user, k, now)
    }
    fn suggest_batch(&self, requests: &[SuggestRequest], now: u64) -> Vec<Vec<Suggestion>> {
        RouterEngine::suggest_batch(self, requests, now)
    }
    fn try_suggest_batch(
        &self,
        requests: &[SuggestRequest],
        now: u64,
    ) -> Result<Vec<Vec<Suggestion>>, Overloaded> {
        RouterEngine::try_suggest_batch(self, requests, now)
    }
    fn evict_idle(&self, now: u64) -> usize {
        RouterEngine::evict_idle(self, now)
    }
    fn publish(&self, snapshot: Arc<ModelSnapshot>) -> u64 {
        RouterEngine::publish(self, snapshot)
    }
    fn generation(&self) -> u64 {
        self.stats().min_generation()
    }
    fn stats(&self) -> EngineStats {
        self.aggregate_stats()
    }
    fn active_sessions(&self) -> usize {
        RouterEngine::active_sessions(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_logsim::RawLogRecord;
    use sqp_serve::{ModelSpec, TrainingConfig};

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn snapshot(prefix: &str) -> Arc<ModelSnapshot> {
        let mut records = Vec::new();
        for u in 0..6 {
            records.push(rec(u, 100, "start"));
            records.push(rec(u, 160, &format!("{prefix}::next")));
        }
        Arc::new(ModelSnapshot::from_raw_logs(
            &records,
            &TrainingConfig {
                model: ModelSpec::Adjacency,
                ..TrainingConfig::default()
            },
        ))
    }

    fn router(replicas: usize) -> RouterEngine {
        RouterEngine::new(
            snapshot("old"),
            RouterConfig {
                replicas,
                ..RouterConfig::default()
            },
        )
    }

    #[test]
    fn routes_are_sticky_and_sessions_live_on_one_replica() {
        let r = router(4);
        for user in 0..200u64 {
            assert_eq!(r.replica_for(user), r.replica_for(user));
        }
        r.track(7, "start", 100);
        let home = r.replica_for(7);
        // The session context exists only on the home replica.
        for index in 0..r.replica_count() {
            let context = r.replica(index).tracker().context(7, 110);
            if index == home {
                assert_eq!(context, vec!["start"]);
            } else {
                assert!(context.is_empty(), "session leaked to replica {index}");
            }
        }
        assert_eq!(r.suggest(7, 1, 110)[0].query, "old::next");
    }

    #[test]
    fn batch_matches_individual_calls_across_replicas() {
        let r = router(4);
        for user in 0..64 {
            r.track(user, "start", 100);
        }
        let requests: Vec<SuggestRequest> = (0..64)
            .chain([999]) // never tracked
            .map(|user| SuggestRequest { user, k: 2 })
            .collect();
        let batch = r.suggest_batch(&requests, 150);
        assert_eq!(batch.len(), 65);
        for (request, got) in requests.iter().zip(&batch) {
            assert_eq!(
                *got,
                r.suggest(request.user, request.k, 150),
                "user {}",
                request.user
            );
        }
        assert!(batch[64].is_empty());
    }

    #[test]
    fn fan_out_publish_converges_every_replica() {
        let r = router(3);
        r.track(1, "start", 100);
        assert_eq!(r.publish(snapshot("new")), 1);
        let stats = r.stats();
        assert!(stats.is_converged());
        assert_eq!(stats.max_generation(), 1);
        assert_eq!(r.suggest(1, 1, 110)[0].query, "new::next");
    }

    #[test]
    fn per_replica_publish_creates_and_reports_skew() {
        let r = router(3);
        r.publish_to(0, snapshot("new"));
        let stats = r.stats();
        assert_eq!(stats.min_generation(), 0);
        assert_eq!(stats.max_generation(), 1);
        assert_eq!(stats.generation_skew(), 1);
        assert!(!stats.is_converged());
    }

    #[test]
    fn quarantine_marks_report_and_publish_clears() {
        let r = router(2);
        r.mark_quarantined(1, "checksum mismatch");
        assert!(r.is_quarantined(1));
        let stats = r.stats();
        assert_eq!(stats.quarantined(), 1);
        assert_eq!(
            stats.replicas[1].last_error.as_deref(),
            Some("checksum mismatch")
        );
        // A quarantined replica still serves.
        r.track(2, "start", 100);
        let home = r.replica_for(2);
        r.mark_quarantined(home, "still serving?");
        assert_eq!(r.suggest(2, 1, 110)[0].query, "old::next");
        // Publishing good bytes lifts the quarantine.
        r.publish_to(1, snapshot("new"));
        assert!(!r.is_quarantined(1));
        r.mark_active(home);
        assert_eq!(r.stats().quarantined(), 0);
    }

    #[test]
    fn overload_sheds_per_replica() {
        let r = RouterEngine::new(
            snapshot("old"),
            RouterConfig {
                replicas: 2,
                engine: EngineConfig {
                    max_in_flight: 1,
                    ..EngineConfig::default()
                },
                ..RouterConfig::default()
            },
        );
        // Saturate user 1's home replica only.
        let home = r.replica_for(1);
        let _permit = r.replica(home).admit().unwrap();
        assert!(r.try_track_and_suggest(1, "start", 1, 100).is_err());
        // A user on the *other* replica is unaffected.
        let other_user = (0..u64::MAX)
            .find(|&u| r.replica_for(u) != home)
            .expect("some user maps to the other replica");
        assert!(r.try_track_and_suggest(other_user, "start", 1, 100).is_ok());
        assert_eq!(r.stats().replicas[home].stats.shed, 1);
    }

    #[test]
    fn try_batch_is_all_or_nothing_and_aggregates_report_the_trailing_edge() {
        let r = RouterEngine::new(
            snapshot("old"),
            RouterConfig {
                replicas: 3,
                engine: EngineConfig {
                    max_in_flight: 1,
                    ..EngineConfig::default()
                },
                ..RouterConfig::default()
            },
        );
        for user in 0..24 {
            r.track(user, "start", 100);
        }
        let requests: Vec<SuggestRequest> =
            (0..24).map(|user| SuggestRequest { user, k: 1 }).collect();
        let ok = r.try_suggest_batch(&requests, 120).unwrap();
        assert_eq!(ok.len(), 24);
        assert!(ok.iter().all(|s| s[0].query == "old::next"));
        // Saturate one involved replica: the whole batch sheds.
        let home = r.replica_for(requests[0].user);
        let _permit = r.replica(home).admit().unwrap();
        assert!(r.try_suggest_batch(&requests, 130).is_err());

        // Aggregated stats fold counters and report the trailing edge.
        r.publish_to(0, snapshot("new"));
        let folded = r.aggregate_stats();
        assert_eq!(folded.publishes, 0, "tier not fully propagated yet");
        assert_eq!(folded.tracks, 24);
        assert_eq!(folded.active_sessions, 24);
        assert_eq!(folded.shed, 1);
        let surface: &dyn ServeSurface = &r;
        assert_eq!(surface.generation(), 0);
        surface.publish(snapshot("new"));
        assert_eq!(surface.generation(), r.stats().min_generation());
        assert_eq!(surface.stats().publishes, surface.generation());
    }

    /// Compile-time audit (mirrors sqp-serve's): the tier is shareable
    /// exactly like a single engine, including type-erased.
    #[test]
    fn router_surface_is_send_sync() {
        fn takes_surface<S: ServeSurface>() {}
        fn takes_send_sync<T: Send + Sync>() {}
        takes_surface::<RouterEngine>();
        takes_send_sync::<RouterEngine>();
        takes_send_sync::<Arc<dyn ServeSurface>>();
    }

    #[test]
    fn eviction_and_residency_aggregate() {
        let r = router(4);
        for user in 0..50 {
            r.track(user, "start", 0);
        }
        assert_eq!(r.active_sessions(), 50);
        assert_eq!(r.evict_idle(u64::MAX / 2), 50);
        assert_eq!(r.active_sessions(), 0);
        let total_evictions: u64 = r.stats().replicas.iter().map(|x| x.stats.evictions).sum();
        assert_eq!(total_evictions, 50);
    }
}
