//! The routed serving tier: N independent [`ServeEngine`] replicas behind
//! one consistent-hash front door.
//!
//! Each replica owns its own session tracker, snapshot cell, admission
//! budget, and counters — there is no shared mutable state between
//! replicas, so the tier scales by adding replicas, not by making one
//! engine's stripes wider. A user's id hashes onto the [`HashRing`] and
//! every request for that user goes to the same replica, which is where
//! their session context lives. Replicas can therefore sit on *different*
//! model generations mid-roll without any request ever seeing a mix: a
//! suggestion is computed by exactly one replica against exactly one
//! snapshot handle (the single-engine no-torn-reads guarantee, inherited
//! per replica).
//!
//! Publication comes in two shapes, both replica-at-a-time underneath:
//! [`RouterEngine::publish`] fans one in-memory snapshot out to every
//! replica (an atomic swap each), while the rolling/fan-out *from disk*
//! paths — which validate bytes per replica and quarantine failures — live
//! in `sqp-store`'s `rollout` module, keeping this crate free of any
//! storage dependency.
//!
//! # Live membership
//!
//! The replica set itself is **swappable**, under the same discipline as a
//! model publish: the ring plus the replica slots live in one immutable
//! [`TierState`] behind a [`Swap`] cell. Every request loads the state
//! once and runs wholly against that membership view; a reconfiguration
//! builds a new state off to the side and installs it with one pointer
//! swap. The cell's generation counter is the **ring generation** an
//! operator watches ([`RouterStats::ring_generation`]).
//!
//! Three membership verbs, all serialized by one control-plane mutex
//! (which [`RouterEngine::publish`] also takes, so a fan-out and a join
//! cannot interleave — see that method's docs for why that ordering
//! matters; serving never touches the mutex):
//!
//! * [`join_replica`](RouterEngine::join_replica) — grow the tier by one.
//!   Two-phase: compute the would-be ring, **copy** the moved users'
//!   session contexts into the new replica (export → import; contexts are
//!   query text, so the handoff is model-generation-independent), *then*
//!   swap the ring. A remapped user's next request sees an intact context.
//! * [`begin_drain`](RouterEngine::begin_drain) — start retiring a
//!   replica: its sessions are copied to their new homes, the ring swap
//!   stops routing new traffic to it, and the replica enters draining mode
//!   (serving stragglers, refusing new sessions) until
//!   [`retire_replica`](RouterEngine::retire_replica) drops it.
//! * [`remove_replica`](RouterEngine::remove_replica) — the no-handoff
//!   form for a replica that is already dead: its resident sessions are
//!   lost, but the loss is bounded by the ring's proven ≤ 2/N remap set.
//!
//! Handoff copies rather than moves: until the ring swap lands, the old
//! home keeps serving, so a handed-off user finds their context wherever
//! the ring routes them — on either side of the swap. The cost is bounded
//! staleness, not loss: a query tracked on the old home *between* export
//! and swap is missing from the copy, and the import's newest-wins rule
//! (`last_seen`) only closes that window for sessions re-tracked later.

use crate::ring::{HashRing, WouldEmptyRing, DEFAULT_VNODES};
use sqp_common::hash::fx_hash_one;
use sqp_serve::{
    EngineConfig, EngineStats, ModelSnapshot, Overloaded, ServeEngine, ServeSurface,
    SuggestRequest, Suggestion, Swap, TrackOutcome,
};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Router construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Number of [`ServeEngine`] replicas to own. Each gets its own
    /// tracker/budget from `engine`, so memory and the admission budget
    /// both scale ×`replicas`.
    pub replicas: usize,
    /// Virtual nodes per replica on the hash ring (see
    /// [`DEFAULT_VNODES`]).
    pub vnodes: usize,
    /// Per-replica engine configuration.
    pub engine: EngineConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            replicas: 4,
            vnodes: DEFAULT_VNODES,
            engine: EngineConfig::default(),
        }
    }
}

/// Per-replica health record, written on publish/quarantine transitions
/// (never on the serve path).
#[derive(Debug, Default)]
struct Health {
    quarantined: bool,
    last_error: Option<String>,
}

/// One replica of the tier inside a [`TierState`]: the engine plus the
/// identity and health that travel with it across membership swaps.
#[derive(Clone)]
struct ReplicaSlot {
    id: u32,
    engine: Arc<ServeEngine>,
    /// Shared across states (an `Arc`): quarantine marks survive
    /// membership swaps without rebuilding them into each new state.
    health: Arc<Mutex<Health>>,
    /// Model generation the replica had already reached when it joined the
    /// tier. A joined engine's own `Swap` counter starts at zero; adding
    /// this offset makes its reported generation comparable with the
    /// veterans', so the tier's skew math stays meaningful across joins.
    gen_offset: u64,
}

impl ReplicaSlot {
    /// The replica's tier-comparable model generation.
    fn generation(&self) -> u64 {
        self.gen_offset + self.engine.generation()
    }
}

/// One immutable membership view: the ring and the replica slots it
/// routes over. Swapped as a unit — a request that loaded this state can
/// resolve every id the ring produces against `slots`, whatever
/// reconfigurations land meanwhile.
struct TierState {
    ring: HashRing,
    /// Sorted by id. Superset of the ring's ids: a draining replica has a
    /// slot (it still serves its resident sessions) but no ring points (no
    /// new traffic routes to it).
    slots: Vec<ReplicaSlot>,
}

impl TierState {
    fn slot(&self, id: u32) -> Option<&ReplicaSlot> {
        self.slots
            .binary_search_by_key(&id, |s| s.id)
            .ok()
            .map(|at| &self.slots[at])
    }

    fn slot_index(&self, id: u32) -> Option<usize> {
        self.slots.binary_search_by_key(&id, |s| s.id).ok()
    }

    fn slot_for(&self, user: u64) -> &ReplicaSlot {
        let id = self.ring.route(user);
        self.slot(id).expect("ring routes only to live slots")
    }

    /// True when the slot serves stragglers only (has no ring points).
    fn is_draining(&self, id: u32) -> bool {
        self.ring.replica_ids().binary_search(&id).is_err()
    }

    /// Ids in draining state, sorted ascending.
    fn draining_ids(&self) -> Vec<u32> {
        self.slots
            .iter()
            .map(|s| s.id)
            .filter(|&id| self.is_draining(id))
            .collect()
    }
}

/// One replica's row in [`RouterStats`].
#[derive(Clone, Debug)]
pub struct ReplicaStats {
    /// The replica's id — stable for its lifetime, never reused by the
    /// tier. For a tier that has seen no membership changes, ids are the
    /// construction indices `0..replicas`.
    pub id: u32,
    /// Model generation the replica is serving (its publish count, offset
    /// so that replicas joined mid-life report tier-comparable values).
    pub generation: u64,
    /// The replica engine's lock-free counters and gauges.
    pub stats: EngineStats,
    /// Requests currently holding the replica's admission permits.
    pub in_flight: u64,
    /// True when the replica's last publication attempt failed validation
    /// and it is pinned on its last-good snapshot.
    pub quarantined: bool,
    /// True when the replica is draining: off the ring, serving resident
    /// sessions to completion, refusing new ones, awaiting retirement.
    pub draining: bool,
    /// Tracks the replica refused while draining (would-be new sessions).
    pub drain_refused: u64,
    /// The error that quarantined it, if any (kept after recovery until the
    /// next successful publish overwrites it).
    pub last_error: Option<String>,
}

/// Point-in-time view of the whole tier, one row per replica, plus the
/// generation envelope and the tier shape — the introspection an operator
/// watches during a rolling upgrade or a membership change.
#[derive(Clone, Debug)]
pub struct RouterStats {
    /// Per-replica rows, sorted by replica id.
    pub replicas: Vec<ReplicaStats>,
    /// Every live replica id (routed and draining), sorted ascending.
    pub replica_ids: Vec<u32>,
    /// Replica ids currently draining (off the ring, not yet retired).
    pub draining: Vec<u32>,
    /// Virtual nodes per replica on the ring.
    pub vnodes: usize,
    /// Membership swap counter: 0 at construction, +1 per join / drain /
    /// retire / remove. The analogue of a model generation, for the ring.
    pub ring_generation: u64,
}

impl RouterStats {
    /// Lowest replica generation (the roll's trailing edge).
    pub fn min_generation(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.generation)
            .min()
            .unwrap_or(0)
    }

    /// Highest replica generation (the roll's leading edge).
    pub fn max_generation(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.generation)
            .max()
            .unwrap_or(0)
    }

    /// `max_generation - min_generation`: 0 when the tier is converged,
    /// ≥1 while a roll is in flight or a replica is stuck/quarantined.
    pub fn generation_skew(&self) -> u64 {
        self.max_generation() - self.min_generation()
    }

    /// True when every replica serves the same generation.
    pub fn is_converged(&self) -> bool {
        self.generation_skew() == 0
    }

    /// Number of replicas currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.replicas.iter().filter(|r| r.quarantined).count()
    }
}

/// Typed refusal from the membership verbs ([`RouterEngine::join_replica`]
/// and friends). Every variant leaves the tier exactly as it was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipError {
    /// The id names no live replica (never joined, or already retired).
    UnknownReplica(u32),
    /// The operation would leave the ring empty — a tier must keep at
    /// least one routed replica (the ring-level [`WouldEmptyRing`]
    /// invariant, surfaced through the membership API).
    LastReplica,
    /// `begin_drain` on a replica that is already draining.
    AlreadyDraining(u32),
    /// `retire_replica` on a replica that was never drained — retiring an
    /// undrained replica would silently drop its resident sessions; use
    /// [`RouterEngine::remove_replica`] to accept that loss explicitly.
    NotDraining(u32),
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownReplica(id) => write!(f, "no live replica with id {id}"),
            Self::LastReplica => write!(f, "refusing to remove the tier's last routed replica"),
            Self::AlreadyDraining(id) => write!(f, "replica {id} is already draining"),
            Self::NotDraining(id) => {
                write!(f, "replica {id} is not draining (drain before retiring)")
            }
        }
    }
}

impl std::error::Error for MembershipError {}

/// Account of one session handoff (a join or a drain): what moved, what
/// was skipped, and the ring generation the swap installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HandoffReport {
    /// The replica that joined or began draining.
    pub replica: u32,
    /// Sessions installed at their new homes.
    pub moved_sessions: usize,
    /// Exports dropped because the destination already held a session with
    /// activity at or after the export's (newest-wins; see
    /// `SessionTracker::import_session`).
    pub stale_skipped: usize,
    /// Sessions left behind because they were idle past the 30-minute
    /// cutoff at handoff time — dead context is not worth moving.
    pub skipped_idle: usize,
    /// The tier's ring generation after the membership swap.
    pub ring_generation: u64,
}

/// A replicated query-suggestion tier: consistent-hash routing over N
/// independently locked [`ServeEngine`] replicas.
///
/// All methods take `&self`; the router is meant to live in an [`Arc`]
/// shared across worker threads, exactly like a single engine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sqp_logsim::RawLogRecord;
/// use sqp_router::{RouterConfig, RouterEngine};
/// use sqp_serve::{ModelSnapshot, ModelSpec, TrainingConfig};
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let mut records = Vec::new();
/// for u in 0..5 {
///     records.push(rec(u, 100, "rust"));
///     records.push(rec(u, 150, "rust atomics"));
/// }
/// let cfg = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
/// let snapshot = Arc::new(ModelSnapshot::from_raw_logs(&records, &cfg));
/// let router = RouterEngine::new(snapshot, RouterConfig::default());
///
/// let top = router.track_and_suggest(42, "rust", 3, 1_000);
/// assert_eq!(top[0].query, "rust atomics");
/// // The same user always lands on the same replica (until a membership
/// // change remaps their arc — and then their session moves with them).
/// assert_eq!(router.replica_for(42), router.replica_for(42));
/// ```
pub struct RouterEngine {
    /// The membership view, swapped whole (see the module docs).
    state: Swap<TierState>,
    /// Serializes the membership verbs. Serving never takes this lock —
    /// reconfiguration builds the next state beside live traffic and
    /// installs it with one swap.
    membership: Mutex<()>,
    /// Configuration for engines built by [`RouterEngine::join_replica`] —
    /// the same sizing every original replica got.
    engine_cfg: EngineConfig,
    vnodes: usize,
}

impl RouterEngine {
    /// Build a tier of `cfg.replicas` engines (at least 1), every replica
    /// starting on `snapshot` at generation 0, with ids `0..replicas`.
    pub fn new(snapshot: Arc<ModelSnapshot>, cfg: RouterConfig) -> Self {
        let n = cfg.replicas.max(1);
        let slots: Vec<ReplicaSlot> = (0..n as u32)
            .map(|id| ReplicaSlot {
                id,
                engine: Arc::new(ServeEngine::new(Arc::clone(&snapshot), cfg.engine)),
                health: Arc::new(Mutex::new(Health::default())),
                gen_offset: 0,
            })
            .collect();
        Self {
            state: Swap::new(Arc::new(TierState {
                ring: HashRing::new(n, cfg.vnodes),
                slots,
            })),
            membership: Mutex::new(()),
            engine_cfg: cfg.engine,
            vnodes: cfg.vnodes,
        }
    }

    fn state(&self) -> Arc<TierState> {
        self.state.load()
    }

    /// Hold the control-plane lock for one membership change, recovering
    /// from a poisoned predecessor (every verb builds a complete new state
    /// before swapping, so a panicking one cannot leave a half-built view
    /// installed).
    fn lock_membership(&self) -> std::sync::MutexGuard<'_, ()> {
        self.membership
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of live replicas (routed + draining).
    pub fn replica_count(&self) -> usize {
        self.state().slots.len()
    }

    /// Every live replica id (routed and draining), sorted ascending.
    /// For a tier that has seen no membership changes these are `0..n`.
    pub fn replica_ids(&self) -> Vec<u32> {
        self.state().slots.iter().map(|s| s.id).collect()
    }

    /// Replica ids currently draining (serving stragglers, off the ring).
    pub fn draining_ids(&self) -> Vec<u32> {
        self.state().draining_ids()
    }

    /// Membership swap counter: 0 at construction, +1 per join / drain /
    /// retire / remove.
    pub fn ring_generation(&self) -> u64 {
        self.state.generation()
    }

    /// Virtual nodes per replica on the ring.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The replica id serving `user` under the current membership — stable
    /// between membership changes, so a user's session context is always
    /// found where it was written (and membership changes move the context
    /// along with the route).
    pub fn replica_for(&self, user: u64) -> usize {
        self.state().ring.route(user) as usize
    }

    /// Direct handle to the replica with `id` (for tests and publication
    /// paths). The handle stays valid after the replica leaves the tier.
    ///
    /// # Panics
    ///
    /// Panics if no live replica has this id.
    pub fn replica(&self, id: usize) -> Arc<ServeEngine> {
        let state = self.state();
        let slot = state
            .slot(id as u32)
            .unwrap_or_else(|| panic!("no live replica with id {id}"));
        Arc::clone(&slot.engine)
    }

    /// Record a query issued by `user` at `now` on their home replica.
    pub fn track(&self, user: u64, query: &str, now: u64) -> TrackOutcome {
        self.state().slot_for(user).engine.track(user, query, now)
    }

    /// Top-`k` suggestions for `user`'s tracked session, from their home
    /// replica's current snapshot.
    pub fn suggest(&self, user: u64, k: usize, now: u64) -> Vec<Suggestion> {
        self.state().slot_for(user).engine.suggest(user, k, now)
    }

    /// Record `query` for `user` and immediately suggest against the
    /// updated context — the common round trip, routed to the home replica.
    pub fn track_and_suggest(&self, user: u64, query: &str, k: usize, now: u64) -> Vec<Suggestion> {
        self.state()
            .slot_for(user)
            .engine
            .track_and_suggest(user, query, k, now)
    }

    /// Admission-controlled [`track_and_suggest`](Self::track_and_suggest):
    /// the home replica's in-flight budget decides, so overload on one
    /// replica sheds only its own users.
    pub fn try_track_and_suggest(
        &self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        self.state()
            .slot_for(user)
            .engine
            .try_track_and_suggest(user, query, k, now)
    }

    /// Admission-controlled [`suggest`](Self::suggest).
    pub fn try_suggest(
        &self,
        user: u64,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        self.state().slot_for(user).engine.try_suggest(user, k, now)
    }

    /// Batched suggestion across the tier: requests are scattered to each
    /// user's home replica (preserving request order within each
    /// sub-batch, so same-replica callers keep the single engine's stripe
    /// amortization) and the results gathered back into request order.
    /// Each sub-batch runs against exactly one replica snapshot, so every
    /// entry's suggestions are wholly from one model even mid-roll; the
    /// whole batch runs against exactly one membership view, loaded once.
    pub fn suggest_batch(&self, requests: &[SuggestRequest], now: u64) -> Vec<Vec<Suggestion>> {
        let state = self.state();
        // Fast path: a single-replica tier is just the engine.
        if state.slots.len() == 1 {
            return state.slots[0].engine.suggest_batch(requests, now);
        }
        let mut per_slot: Vec<Vec<usize>> = vec![Vec::new(); state.slots.len()];
        for (at, request) in requests.iter().enumerate() {
            let id = state.ring.route(request.user);
            per_slot[state.slot_index(id).expect("routed id has a slot")].push(at);
        }
        let mut out: Vec<Vec<Suggestion>> = vec![Vec::new(); requests.len()];
        let mut sub: Vec<SuggestRequest> = Vec::new();
        for (slot, members) in state.slots.iter().zip(&per_slot) {
            if members.is_empty() {
                continue;
            }
            sub.clear();
            sub.extend(members.iter().map(|&at| requests[at]));
            let answers = slot.engine.suggest_batch(&sub, now);
            for (&at, answer) in members.iter().zip(answers) {
                out[at] = answer;
            }
        }
        out
    }

    /// Admission-controlled [`suggest_batch`](Self::suggest_batch),
    /// all-or-nothing: each involved replica's sub-batch costs one of its
    /// permits, and the first replica that sheds fails the whole call (the
    /// answers already computed by earlier replicas are discarded, so the
    /// caller never merges partial answers with partial sheds). Uninvolved
    /// replicas spend nothing.
    pub fn try_suggest_batch(
        &self,
        requests: &[SuggestRequest],
        now: u64,
    ) -> Result<Vec<Vec<Suggestion>>, Overloaded> {
        let state = self.state();
        if state.slots.len() == 1 {
            return state.slots[0].engine.try_suggest_batch(requests, now);
        }
        let mut per_slot: Vec<Vec<usize>> = vec![Vec::new(); state.slots.len()];
        for (at, request) in requests.iter().enumerate() {
            let id = state.ring.route(request.user);
            per_slot[state.slot_index(id).expect("routed id has a slot")].push(at);
        }
        let mut out: Vec<Vec<Suggestion>> = vec![Vec::new(); requests.len()];
        let mut sub: Vec<SuggestRequest> = Vec::new();
        for (slot, members) in state.slots.iter().zip(&per_slot) {
            if members.is_empty() {
                continue;
            }
            sub.clear();
            sub.extend(members.iter().map(|&at| requests[at]));
            let answers = slot.engine.try_suggest_batch(&sub, now)?;
            for (&at, answer) in members.iter().zip(answers) {
                out[at] = answer;
            }
        }
        Ok(out)
    }

    /// The tier's counters and gauges folded into one [`EngineStats`]:
    /// counters (tracks, suggests, shed, evictions) and the session gauge
    /// sum across replicas, while `publishes` reports the *minimum* replica
    /// generation — the fully-propagated trailing edge, matching what
    /// [`ServeSurface::generation`](sqp_serve::ServeSurface::generation)
    /// reports for a tier. Per-replica detail stays in [`Self::stats`].
    pub fn aggregate_stats(&self) -> EngineStats {
        let state = self.state();
        let mut folded = EngineStats::default();
        let mut min_generation = u64::MAX;
        for slot in &state.slots {
            let stats = slot.engine.stats();
            folded.tracks += stats.tracks;
            folded.suggests += stats.suggests;
            folded.shed += stats.shed;
            folded.evictions += stats.evictions;
            folded.active_sessions += stats.active_sessions;
            min_generation = min_generation.min(slot.generation());
        }
        folded.publishes = if min_generation == u64::MAX {
            0
        } else {
            min_generation
        };
        folded
    }

    /// Stateless suggestion for an explicit context. No session is
    /// involved, so any replica could answer; the context itself is hashed
    /// onto the ring to spread these deterministically.
    pub fn suggest_context(&self, context: &[&str], k: usize) -> Vec<Suggestion> {
        let state = self.state();
        let id = state.ring.route_hash(fx_hash_one(&context));
        state
            .slot(id)
            .expect("routed id has a slot")
            .engine
            .suggest_context(context, k)
    }

    /// Fan an in-memory snapshot out to every replica — N atomic swaps, in
    /// replica-id order (draining replicas included: they are still
    /// serving). Each swap also lifts that replica's quarantine: a direct
    /// publish hands the replica known-good bytes, superseding whatever
    /// failed before. Returns the tier's minimum generation after the
    /// fan-out (the roll's trailing edge).
    ///
    /// Serialized with the membership verbs on the control-plane mutex: an
    /// unserialized fan-out racing [`join_replica`](Self::join_replica)
    /// could cover only the pre-join slots while the newcomer seeded from
    /// the pre-publish snapshot — a replica a full generation behind with
    /// no roll in flight. Under the lock a join either lands first (the
    /// newcomer is in the slot set this fan-out covers) or after (it seeds
    /// from a replica the fan-out already upgraded). Serving is unaffected;
    /// only reconfiguration waits.
    pub fn publish(&self, snapshot: Arc<ModelSnapshot>) -> u64 {
        let _m = self.lock_membership();
        let state = self.state();
        for slot in &state.slots {
            slot.engine.publish(Arc::clone(&snapshot));
            Self::lock_health_slot(slot).quarantined = false;
        }
        state
            .slots
            .iter()
            .map(|s| s.generation())
            .min()
            .unwrap_or(0)
    }

    /// Publish to the single replica with `id` (one atomic swap) and mark
    /// it active. This is the step primitive rolling upgrades are built
    /// from. Returns the replica's new (tier-comparable) generation.
    /// Publishers running concurrently with membership changes use
    /// [`try_publish_to`](Self::try_publish_to) instead — an id is not a
    /// handle, and the replica it names may retire between resolutions.
    ///
    /// # Panics
    ///
    /// Panics if no live replica has this id.
    pub fn publish_to(&self, id: usize, snapshot: Arc<ModelSnapshot>) -> u64 {
        self.try_publish_to(id, snapshot)
            .unwrap_or_else(|| panic!("no live replica with id {id}"))
    }

    /// Fallible [`publish_to`](Self::publish_to): resolves `id` against
    /// the **current** membership and returns `None` — touching nothing —
    /// when no live replica has it (retired or removed by a concurrent
    /// membership change). The publication path a rolling upgrade uses,
    /// because a roll takes no membership lock and the tier may shrink
    /// under it.
    pub fn try_publish_to(&self, id: usize, snapshot: Arc<ModelSnapshot>) -> Option<u64> {
        let state = self.state();
        let slot = state.slot(id as u32)?;
        slot.engine.publish(snapshot);
        Self::lock_health_slot(slot).quarantined = false;
        Some(slot.generation())
    }

    /// Pin the replica with `id` on its current (last-good) snapshot and
    /// record why its publication failed. The replica keeps serving —
    /// quarantine is a publication-side state, not a traffic stop.
    ///
    /// # Panics
    ///
    /// Panics if no live replica has this id.
    pub fn mark_quarantined(&self, id: usize, error: impl Into<String>) {
        if !self.try_mark_quarantined(id, error) {
            panic!("no live replica with id {id}");
        }
    }

    /// Fallible [`mark_quarantined`](Self::mark_quarantined): returns
    /// whether `id` still named a live replica (and was marked). A
    /// replica that left the tier mid-roll has nothing to quarantine.
    pub fn try_mark_quarantined(&self, id: usize, error: impl Into<String>) -> bool {
        let state = self.state();
        let Some(slot) = state.slot(id as u32) else {
            return false;
        };
        let mut health = Self::lock_health_slot(slot);
        health.quarantined = true;
        health.last_error = Some(error.into());
        true
    }

    /// Clear the quarantine on replica `id` without publishing (operator
    /// override). The last error is kept for forensics until the next
    /// successful publish.
    ///
    /// # Panics
    ///
    /// Panics if no live replica has this id.
    pub fn mark_active(&self, id: usize) {
        let state = self.state();
        let slot = state
            .slot(id as u32)
            .unwrap_or_else(|| panic!("no live replica with id {id}"));
        Self::lock_health_slot(slot).quarantined = false;
    }

    /// True when replica `id` is quarantined.
    ///
    /// # Panics
    ///
    /// Panics if no live replica has this id.
    pub fn is_quarantined(&self, id: usize) -> bool {
        let state = self.state();
        let slot = state
            .slot(id as u32)
            .unwrap_or_else(|| panic!("no live replica with id {id}"));
        let quarantined = Self::lock_health_slot(slot).quarantined;
        quarantined
    }

    fn lock_health_slot(slot: &ReplicaSlot) -> std::sync::MutexGuard<'_, Health> {
        // Health transitions are trivially tear-proof (two plain fields);
        // recover rather than propagate a panicking publisher's poison.
        slot.health.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Grow the tier by one replica. Two-phase handoff, then one swap:
    ///
    /// 1. Build the new engine on the freshest live snapshot (so it serves
    ///    the roll's leading edge from its first request) and compute the
    ///    would-be ring.
    /// 2. **Copy** every live session the new ring assigns to the newcomer
    ///    out of the old homes and import it into the new engine. Sessions
    ///    are query text — valid against any snapshot generation.
    /// 3. Swap the ring. From this instant the moved users route to the
    ///    newcomer and find their contexts intact; until it, their old
    ///    homes kept serving them. Zero context resets either way.
    ///
    /// `now` is the logical clock the 30-minute rule is judged against
    /// (idle sessions are not worth moving). Returns the handoff account;
    /// [`HandoffReport::replica`] is the newcomer's id — fresh, never a
    /// reused one.
    pub fn join_replica(&self, now: u64) -> HandoffReport {
        let _m = self.lock_membership();
        let old = self.state();
        let new_id = old.slots.last().expect("tier is never empty").id + 1;

        // Seed from the replica serving the highest generation, so the
        // newcomer joins on the leading edge, and carry that generation as
        // the newcomer's offset (its own Swap counter starts at zero).
        let freshest = old
            .slots
            .iter()
            .max_by_key(|s| s.generation())
            .expect("tier is never empty");
        let engine = Arc::new(ServeEngine::new(
            freshest.engine.snapshot(),
            self.engine_cfg,
        ));
        let gen_offset = freshest.generation();

        let mut ring = old.ring.clone();
        ring.add(new_id);

        let mut report = HandoffReport {
            replica: new_id,
            ..HandoffReport::default()
        };
        // Export from every old slot (draining ones included — they may
        // hold the freshest copy for a straggler) whatever the new ring
        // hands to the newcomer. Imports resolve duplicates newest-wins.
        for slot in &old.slots {
            let batch = slot
                .engine
                .tracker()
                .export_sessions(now, |user| ring.route(user) == new_id);
            report.skipped_idle += batch.skipped_idle;
            for export in &batch.sessions {
                if engine.tracker().import_session(export) {
                    report.moved_sessions += 1;
                } else {
                    report.stale_skipped += 1;
                }
            }
        }

        let mut slots = old.slots.clone();
        slots.push(ReplicaSlot {
            id: new_id,
            engine,
            health: Arc::new(Mutex::new(Health::default())),
            gen_offset,
        });
        report.ring_generation = self.state.store(Arc::new(TierState { ring, slots }));
        report
    }

    /// Start retiring replica `id`: copy its live sessions to the homes
    /// the shrunken ring assigns them, swap the ring so no new traffic
    /// routes to it, and put the replica in draining mode (stragglers that
    /// raced the swap keep being served; new sessions are refused). Finish
    /// with [`retire_replica`](Self::retire_replica) once its in-flight
    /// work has quiesced.
    ///
    /// `now` is the logical clock for the 30-minute rule. The handed-off
    /// users see zero context resets: their sessions exist at the new home
    /// before the ring stops routing them to the old one.
    ///
    /// # Errors
    ///
    /// [`MembershipError::UnknownReplica`], [`MembershipError::AlreadyDraining`],
    /// or [`MembershipError::LastReplica`] (the ring refuses to empty).
    pub fn begin_drain(&self, id: u32, now: u64) -> Result<HandoffReport, MembershipError> {
        let _m = self.lock_membership();
        let old = self.state();
        let victim = old.slot(id).ok_or(MembershipError::UnknownReplica(id))?;
        if old.is_draining(id) {
            return Err(MembershipError::AlreadyDraining(id));
        }
        let mut ring = old.ring.clone();
        match ring.remove(id) {
            Ok(_) => {}
            Err(WouldEmptyRing) => return Err(MembershipError::LastReplica),
        }

        // Draining mode first: from here no *new* session can take root on
        // the victim, so the export below cannot miss one racing in.
        victim.engine.set_draining(true);

        let mut report = HandoffReport {
            replica: id,
            ..HandoffReport::default()
        };
        let batch = victim.engine.tracker().export_sessions(now, |_| true);
        report.skipped_idle = batch.skipped_idle;
        for export in &batch.sessions {
            let home = ring.route(export.user);
            let dst = old.slot(home).expect("routed id has a slot");
            if dst.engine.tracker().import_session(export) {
                report.moved_sessions += 1;
            } else {
                report.stale_skipped += 1;
            }
        }

        report.ring_generation = self.state.store(Arc::new(TierState {
            ring,
            slots: old.slots.clone(),
        }));
        Ok(report)
    }

    /// Drop a **drained** replica from the tier. Its slot disappears from
    /// stats and `replica_ids`; handles obtained earlier stay valid (the
    /// engine is an `Arc`), they just receive no routed traffic.
    ///
    /// # Errors
    ///
    /// [`MembershipError::UnknownReplica`], or
    /// [`MembershipError::NotDraining`] if [`begin_drain`](Self::begin_drain)
    /// was never run — retiring an undrained replica would silently drop
    /// its sessions; use [`remove_replica`](Self::remove_replica) to
    /// accept that explicitly.
    pub fn retire_replica(&self, id: u32) -> Result<(), MembershipError> {
        let _m = self.lock_membership();
        let old = self.state();
        old.slot(id).ok_or(MembershipError::UnknownReplica(id))?;
        if !old.is_draining(id) {
            return Err(MembershipError::NotDraining(id));
        }
        let slots = old.slots.iter().filter(|s| s.id != id).cloned().collect();
        self.state.store(Arc::new(TierState {
            ring: old.ring.clone(),
            slots,
        }));
        Ok(())
    }

    /// Drop replica `id` **without** a drain — the verb for a replica that
    /// is already dead (crashed process, lost host). No handoff happens:
    /// its resident sessions are lost, and the affected users start fresh
    /// sessions at whatever homes the shrunken ring assigns them. The loss
    /// is bounded by the remap set — ≤ 2/N of users for one removal, the
    /// ring property proven in this crate's tests.
    ///
    /// # Errors
    ///
    /// [`MembershipError::UnknownReplica`], or
    /// [`MembershipError::LastReplica`] when removing the last routed
    /// replica (the ring refuses to empty).
    pub fn remove_replica(&self, id: u32) -> Result<(), MembershipError> {
        let _m = self.lock_membership();
        let old = self.state();
        old.slot(id).ok_or(MembershipError::UnknownReplica(id))?;
        let mut ring = old.ring.clone();
        if !old.is_draining(id) {
            match ring.remove(id) {
                Ok(_) => {}
                Err(WouldEmptyRing) => return Err(MembershipError::LastReplica),
            }
        }
        let slots = old.slots.iter().filter(|s| s.id != id).cloned().collect();
        self.state.store(Arc::new(TierState { ring, slots }));
        Ok(())
    }

    /// Drop idle sessions across every replica; returns the total evicted.
    pub fn evict_idle(&self, now: u64) -> usize {
        let state = self.state();
        state.slots.iter().map(|s| s.engine.evict_idle(now)).sum()
    }

    /// Sessions resident across the tier (sum of per-replica lock-free
    /// gauges).
    pub fn active_sessions(&self) -> usize {
        let state = self.state();
        state.slots.iter().map(|s| s.engine.active_sessions()).sum()
    }

    /// Snapshot the whole tier's health: per-replica generation, counters,
    /// in-flight, quarantine and draining state, plus the tier shape
    /// (replica ids, draining set, vnodes, ring generation). The engine
    /// rows are pure atomic loads (no stripe locks — see [`EngineStats`]);
    /// the only locks taken are the cold per-replica health mutexes, which
    /// the serve path never touches.
    pub fn stats(&self) -> RouterStats {
        let state = self.state();
        let replicas = state
            .slots
            .iter()
            .map(|slot| {
                let health = Self::lock_health_slot(slot);
                ReplicaStats {
                    id: slot.id,
                    generation: slot.generation(),
                    stats: slot.engine.stats(),
                    in_flight: slot.engine.in_flight(),
                    quarantined: health.quarantined,
                    draining: state.is_draining(slot.id),
                    drain_refused: slot.engine.drain_refused(),
                    last_error: health.last_error.clone(),
                }
            })
            .collect();
        RouterStats {
            replicas,
            replica_ids: state.slots.iter().map(|s| s.id).collect(),
            draining: state.draining_ids(),
            vnodes: self.vnodes,
            ring_generation: self.state.generation(),
        }
    }
}

/// The router speaks the same [`ServeSurface`] as a single engine, so the
/// network front-end (`sqp-net`) and the stress harness
/// (`sqp-bench::serve_loop`) run unchanged on a replicated tier. Every
/// method delegates to the inherent routed implementation; the
/// tier-summary accessors report the trailing edge
/// ([`RouterStats::min_generation`]) and fold counters across replicas
/// ([`RouterEngine::aggregate_stats`]).
impl ServeSurface for RouterEngine {
    fn track(&self, user: u64, query: &str, now: u64) -> TrackOutcome {
        RouterEngine::track(self, user, query, now)
    }
    fn track_and_suggest(&self, user: u64, query: &str, k: usize, now: u64) -> Vec<Suggestion> {
        RouterEngine::track_and_suggest(self, user, query, k, now)
    }
    fn try_track_and_suggest(
        &self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        RouterEngine::try_track_and_suggest(self, user, query, k, now)
    }
    fn try_suggest(&self, user: u64, k: usize, now: u64) -> Result<Vec<Suggestion>, Overloaded> {
        RouterEngine::try_suggest(self, user, k, now)
    }
    fn suggest_batch(&self, requests: &[SuggestRequest], now: u64) -> Vec<Vec<Suggestion>> {
        RouterEngine::suggest_batch(self, requests, now)
    }
    fn try_suggest_batch(
        &self,
        requests: &[SuggestRequest],
        now: u64,
    ) -> Result<Vec<Vec<Suggestion>>, Overloaded> {
        RouterEngine::try_suggest_batch(self, requests, now)
    }
    fn evict_idle(&self, now: u64) -> usize {
        RouterEngine::evict_idle(self, now)
    }
    fn publish(&self, snapshot: Arc<ModelSnapshot>) -> u64 {
        RouterEngine::publish(self, snapshot)
    }
    fn generation(&self) -> u64 {
        self.stats().min_generation()
    }
    fn stats(&self) -> EngineStats {
        self.aggregate_stats()
    }
    fn active_sessions(&self) -> usize {
        RouterEngine::active_sessions(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_logsim::RawLogRecord;
    use sqp_serve::{ModelSpec, TrainingConfig};

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn snapshot(prefix: &str) -> Arc<ModelSnapshot> {
        let mut records = Vec::new();
        for u in 0..6 {
            records.push(rec(u, 100, "start"));
            records.push(rec(u, 160, &format!("{prefix}::next")));
        }
        Arc::new(ModelSnapshot::from_raw_logs(
            &records,
            &TrainingConfig {
                model: ModelSpec::Adjacency,
                ..TrainingConfig::default()
            },
        ))
    }

    fn router(replicas: usize) -> RouterEngine {
        RouterEngine::new(
            snapshot("old"),
            RouterConfig {
                replicas,
                ..RouterConfig::default()
            },
        )
    }

    #[test]
    fn routes_are_sticky_and_sessions_live_on_one_replica() {
        let r = router(4);
        for user in 0..200u64 {
            assert_eq!(r.replica_for(user), r.replica_for(user));
        }
        r.track(7, "start", 100);
        let home = r.replica_for(7);
        // The session context exists only on the home replica.
        for id in r.replica_ids() {
            let context = r.replica(id as usize).tracker().context(7, 110);
            if id as usize == home {
                assert_eq!(context, vec!["start"]);
            } else {
                assert!(context.is_empty(), "session leaked to replica {id}");
            }
        }
        assert_eq!(r.suggest(7, 1, 110)[0].query, "old::next");
    }

    #[test]
    fn batch_matches_individual_calls_across_replicas() {
        let r = router(4);
        for user in 0..64 {
            r.track(user, "start", 100);
        }
        let requests: Vec<SuggestRequest> = (0..64)
            .chain([999]) // never tracked
            .map(|user| SuggestRequest { user, k: 2 })
            .collect();
        let batch = r.suggest_batch(&requests, 150);
        assert_eq!(batch.len(), 65);
        for (request, got) in requests.iter().zip(&batch) {
            assert_eq!(
                *got,
                r.suggest(request.user, request.k, 150),
                "user {}",
                request.user
            );
        }
        assert!(batch[64].is_empty());
    }

    #[test]
    fn fan_out_publish_converges_every_replica() {
        let r = router(3);
        r.track(1, "start", 100);
        assert_eq!(r.publish(snapshot("new")), 1);
        let stats = r.stats();
        assert!(stats.is_converged());
        assert_eq!(stats.max_generation(), 1);
        assert_eq!(r.suggest(1, 1, 110)[0].query, "new::next");
    }

    #[test]
    fn per_replica_publish_creates_and_reports_skew() {
        let r = router(3);
        r.publish_to(0, snapshot("new"));
        let stats = r.stats();
        assert_eq!(stats.min_generation(), 0);
        assert_eq!(stats.max_generation(), 1);
        assert_eq!(stats.generation_skew(), 1);
        assert!(!stats.is_converged());
    }

    #[test]
    fn quarantine_marks_report_and_publish_clears() {
        let r = router(2);
        r.mark_quarantined(1, "checksum mismatch");
        assert!(r.is_quarantined(1));
        let stats = r.stats();
        assert_eq!(stats.quarantined(), 1);
        assert_eq!(
            stats.replicas[1].last_error.as_deref(),
            Some("checksum mismatch")
        );
        // A quarantined replica still serves.
        r.track(2, "start", 100);
        let home = r.replica_for(2);
        r.mark_quarantined(home, "still serving?");
        assert_eq!(r.suggest(2, 1, 110)[0].query, "old::next");
        // Publishing good bytes lifts the quarantine.
        r.publish_to(1, snapshot("new"));
        assert!(!r.is_quarantined(1));
        r.mark_active(home);
        assert_eq!(r.stats().quarantined(), 0);
    }

    #[test]
    fn overload_sheds_per_replica() {
        let r = RouterEngine::new(
            snapshot("old"),
            RouterConfig {
                replicas: 2,
                engine: EngineConfig {
                    max_in_flight: 1,
                    ..EngineConfig::default()
                },
                ..RouterConfig::default()
            },
        );
        // Saturate user 1's home replica only.
        let home = r.replica_for(1);
        let home_engine = r.replica(home);
        let _permit = home_engine.admit().unwrap();
        assert!(r.try_track_and_suggest(1, "start", 1, 100).is_err());
        // A user on the *other* replica is unaffected.
        let other_user = (0..u64::MAX)
            .find(|&u| r.replica_for(u) != home)
            .expect("some user maps to the other replica");
        assert!(r.try_track_and_suggest(other_user, "start", 1, 100).is_ok());
        assert_eq!(r.stats().replicas[home].stats.shed, 1);
    }

    #[test]
    fn try_batch_is_all_or_nothing_and_aggregates_report_the_trailing_edge() {
        let r = RouterEngine::new(
            snapshot("old"),
            RouterConfig {
                replicas: 3,
                engine: EngineConfig {
                    max_in_flight: 1,
                    ..EngineConfig::default()
                },
                ..RouterConfig::default()
            },
        );
        for user in 0..24 {
            r.track(user, "start", 100);
        }
        let requests: Vec<SuggestRequest> =
            (0..24).map(|user| SuggestRequest { user, k: 1 }).collect();
        let ok = r.try_suggest_batch(&requests, 120).unwrap();
        assert_eq!(ok.len(), 24);
        assert!(ok.iter().all(|s| s[0].query == "old::next"));
        // Saturate one involved replica: the whole batch sheds.
        let home = r.replica_for(requests[0].user);
        let home_engine = r.replica(home);
        let _permit = home_engine.admit().unwrap();
        assert!(r.try_suggest_batch(&requests, 130).is_err());

        // Aggregated stats fold counters and report the trailing edge.
        r.publish_to(0, snapshot("new"));
        let folded = r.aggregate_stats();
        assert_eq!(folded.publishes, 0, "tier not fully propagated yet");
        assert_eq!(folded.tracks, 24);
        assert_eq!(folded.active_sessions, 24);
        assert_eq!(folded.shed, 1);
        let surface: &dyn ServeSurface = &r;
        assert_eq!(surface.generation(), 0);
        surface.publish(snapshot("new"));
        assert_eq!(surface.generation(), r.stats().min_generation());
        assert_eq!(surface.stats().publishes, surface.generation());
    }

    /// Compile-time audit (mirrors sqp-serve's): the tier is shareable
    /// exactly like a single engine, including type-erased.
    #[test]
    fn router_surface_is_send_sync() {
        fn takes_surface<S: ServeSurface>() {}
        fn takes_send_sync<T: Send + Sync>() {}
        takes_surface::<RouterEngine>();
        takes_send_sync::<RouterEngine>();
        takes_send_sync::<Arc<dyn ServeSurface>>();
    }

    #[test]
    fn eviction_and_residency_aggregate() {
        let r = router(4);
        for user in 0..50 {
            r.track(user, "start", 0);
        }
        assert_eq!(r.active_sessions(), 50);
        assert_eq!(r.evict_idle(u64::MAX / 2), 50);
        assert_eq!(r.active_sessions(), 0);
        let total_evictions: u64 = r.stats().replicas.iter().map(|x| x.stats.evictions).sum();
        assert_eq!(total_evictions, 50);
    }

    #[test]
    fn stats_expose_the_tier_shape() {
        let r = router(3);
        let stats = r.stats();
        assert_eq!(stats.replica_ids, vec![0, 1, 2]);
        assert!(stats.draining.is_empty());
        assert_eq!(stats.vnodes, DEFAULT_VNODES);
        assert_eq!(stats.ring_generation, 0);
        assert_eq!(stats.replicas.len(), 3);
        for (at, row) in stats.replicas.iter().enumerate() {
            assert_eq!(row.id as usize, at);
            assert!(!row.draining);
            assert_eq!(row.drain_refused, 0);
        }
    }

    #[test]
    fn join_moves_exactly_the_remapped_users_with_contexts_intact() {
        let r = router(3);
        for user in 0..300u64 {
            r.track(user, "start", 100);
        }
        let before: Vec<usize> = (0..300u64).map(|u| r.replica_for(u)).collect();
        let report = r.join_replica(120);
        assert_eq!(report.replica, 3);
        assert_eq!(report.ring_generation, 1);
        assert_eq!(r.replica_ids(), vec![0, 1, 2, 3]);
        let moved: Vec<u64> = (0..300u64).filter(|&u| r.replica_for(u) == 3).collect();
        assert_eq!(report.moved_sessions, moved.len());
        assert!(!moved.is_empty(), "some users must remap to the newcomer");
        // Remap bound: one join moves ≤ 2/N of users (N = new size).
        assert!(moved.len() <= 2 * 300 / 4, "moved {}", moved.len());
        for user in 0..300u64 {
            let now_home = r.replica_for(user);
            if !moved.contains(&user) {
                assert_eq!(now_home, before[user as usize], "non-remapped user moved");
            }
            // Every user — moved or not — keeps an intact context.
            assert_eq!(
                r.suggest(user, 1, 140)[0].query,
                "old::next",
                "user {user} lost their context"
            );
        }
    }

    #[test]
    fn join_seeds_from_the_freshest_replica_and_offsets_generation() {
        let r = router(2);
        r.publish(snapshot("new"));
        r.publish_to(0, snapshot("newer"));
        // Tier: replica 0 at gen 2, replica 1 at gen 1.
        let report = r.join_replica(10);
        let stats = r.stats();
        let row = stats
            .replicas
            .iter()
            .find(|row| row.id == report.replica)
            .unwrap();
        assert_eq!(
            row.generation, 2,
            "newcomer joins on the leading edge: {stats:?}"
        );
        assert_eq!(stats.max_generation(), 2);
        assert_eq!(stats.min_generation(), 1);
        // The newcomer serves the freshest vocabulary.
        let user = (0..u64::MAX)
            .find(|&u| r.replica_for(u) == report.replica as usize)
            .unwrap();
        r.track(user, "start", 20);
        assert_eq!(r.suggest(user, 1, 30)[0].query, "newer::next");
    }

    #[test]
    fn drain_hands_sessions_off_and_retire_drops_the_slot() {
        let r = router(3);
        for user in 0..200u64 {
            r.track(user, "start", 100);
        }
        let victims: Vec<u64> = (0..200u64).filter(|&u| r.replica_for(u) == 1).collect();
        assert!(!victims.is_empty());
        let report = r.begin_drain(1, 120).unwrap();
        assert_eq!(report.replica, 1);
        assert_eq!(report.moved_sessions, victims.len());
        assert_eq!(r.draining_ids(), vec![1]);
        assert!(r.stats().replicas[1].draining);
        // Nothing routes to the draining replica; every session is intact.
        for user in 0..200u64 {
            assert_ne!(r.replica_for(user), 1);
            assert_eq!(
                r.suggest(user, 1, 140)[0].query,
                "old::next",
                "user {user} lost their context in the drain"
            );
        }
        // The draining replica refuses new sessions but serves old ones.
        let engine = r.replica(1);
        assert!(engine.is_draining());
        // Retire cannot be skipped past drain.
        assert_eq!(r.retire_replica(0), Err(MembershipError::NotDraining(0)));
        assert_eq!(r.retire_replica(1), Ok(()));
        assert_eq!(r.replica_ids(), vec![0, 2]);
        assert_eq!(r.ring_generation(), 2, "drain + retire = two swaps");
        // Double-retire reports the id as unknown.
        assert_eq!(r.retire_replica(1), Err(MembershipError::UnknownReplica(1)));
    }

    #[test]
    fn remove_without_drain_loses_only_the_remapped_set() {
        let r = router(4);
        for user in 0..400u64 {
            r.track(user, "start", 100);
        }
        let lost: Vec<u64> = (0..400u64).filter(|&u| r.replica_for(u) == 2).collect();
        r.remove_replica(2).unwrap();
        assert_eq!(r.replica_ids(), vec![0, 1, 3]);
        for user in 0..400u64 {
            let suggestions = r.suggest(user, 1, 120);
            if lost.contains(&user) {
                assert!(
                    suggestions.is_empty(),
                    "user {user}'s session should be gone"
                );
            } else {
                assert_eq!(
                    suggestions[0].query, "old::next",
                    "unaffected user {user} lost their session"
                );
            }
        }
        // Bound: an undrained kill loses ≤ 2/N of sessions.
        assert!(lost.len() <= 2 * 400 / 4, "lost {}", lost.len());
    }

    #[test]
    fn concurrent_fan_out_and_membership_churn_stay_converged() {
        // The race the control-plane mutex exists to prevent: a fan-out
        // loading the pre-join slot set while the joiner seeds from the
        // pre-publish snapshot would leave a generation-behind newcomer
        // with no roll in flight. With publish serialized against the
        // verbs, every quiescent interleaving converges.
        const PUBLISHES: u64 = 20;
        let r = router(3);
        std::thread::scope(|scope| {
            let publisher = scope.spawn(|| {
                for i in 0..PUBLISHES {
                    r.publish(snapshot(&format!("gen{i}")));
                }
            });
            for _ in 0..6 {
                let id = r.join_replica(0).replica;
                std::thread::yield_now();
                r.begin_drain(id, 0).unwrap();
                r.retire_replica(id).unwrap();
            }
            publisher.join().unwrap();
        });
        let stats = r.stats();
        assert!(
            stats.is_converged(),
            "a joiner fell behind a racing fan-out: {stats:?}"
        );
        assert_eq!(stats.max_generation(), PUBLISHES);
        assert_eq!(stats.replica_ids, vec![0, 1, 2]);
    }

    #[test]
    fn try_variants_are_no_ops_on_a_departed_replica() {
        let r = router(3);
        r.remove_replica(2).unwrap();
        assert_eq!(r.try_publish_to(2, snapshot("new")), None);
        assert!(!r.try_mark_quarantined(2, "late quarantine"));
        assert_eq!(r.stats().quarantined(), 0, "departed id must mark nothing");
        // On a live replica the try forms behave exactly like the verbs.
        assert_eq!(r.try_publish_to(0, snapshot("new")), Some(1));
        assert!(r.try_mark_quarantined(1, "bad bytes"));
        assert!(r.is_quarantined(1));
    }

    #[test]
    fn membership_refuses_the_degenerate_cases() {
        let r = router(1);
        assert_eq!(r.begin_drain(0, 10), Err(MembershipError::LastReplica));
        assert_eq!(r.remove_replica(0), Err(MembershipError::LastReplica));
        assert_eq!(
            r.begin_drain(9, 10),
            Err(MembershipError::UnknownReplica(9))
        );
        assert_eq!(r.remove_replica(9), Err(MembershipError::UnknownReplica(9)));
        // Grow to 2, drain one, and the drained one cannot drain again.
        r.join_replica(10);
        r.begin_drain(0, 20).unwrap();
        assert_eq!(
            r.begin_drain(0, 30),
            Err(MembershipError::AlreadyDraining(0))
        );
        // A draining replica can still be removed abruptly (dead host).
        r.remove_replica(0).unwrap();
        assert_eq!(r.replica_ids(), vec![1]);
        // Ids are never reused: the next join gets a fresh id.
        assert_eq!(r.join_replica(40).replica, 2);
    }
}
