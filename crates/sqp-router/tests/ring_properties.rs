//! Property tests for the consistent-hash ring — the three contractual
//! claims the router's stickiness story rests on:
//!
//! 1. **Minimal disruption**: adding or removing one replica remaps at
//!    most ~2/N of a 10k-user sample (a modulo router would remap
//!    (N-1)/N);
//! 2. **Cross-process determinism**: routing uses the workspace's
//!    fixed-key FxHash, never `RandomState` — pinned with golden values,
//!    so an accidental switch to a seeded hasher (which would strand every
//!    session on restart) fails loudly;
//! 3. **Balance**: with the default vnode count, per-replica load on a
//!    10k-user sample stays within 2× of uniform in both directions.

use sqp_router::{HashRing, DEFAULT_VNODES};

const USERS: u64 = 10_000;

fn route_all(ring: &HashRing) -> Vec<u32> {
    (0..USERS).map(|user| ring.route(user)).collect()
}

fn remapped(before: &[u32], after: &[u32]) -> usize {
    before.iter().zip(after).filter(|(a, b)| a != b).count()
}

#[test]
fn adding_one_replica_remaps_at_most_two_over_n() {
    for n in [2usize, 4, 8] {
        let before = route_all(&HashRing::new(n, DEFAULT_VNODES));
        let mut grown = HashRing::new(n, DEFAULT_VNODES);
        assert!(grown.add(n as u32));
        let after = route_all(&grown);
        let moved = remapped(&before, &after);
        let bound = 2 * USERS as usize / (n + 1);
        assert!(
            moved <= bound,
            "adding replica {n}: {moved} of {USERS} users remapped, bound {bound}"
        );
        // And everyone who moved, moved *to* the new replica — an add must
        // never shuffle users between pre-existing replicas.
        for (user, (b, a)) in before.iter().zip(&after).enumerate() {
            if b != a {
                assert_eq!(*a, n as u32, "user {user} moved between old replicas");
            }
        }
    }
}

#[test]
fn removing_one_replica_remaps_at_most_two_over_n() {
    for n in [3usize, 4, 8] {
        let full = HashRing::new(n, DEFAULT_VNODES);
        let before = route_all(&full);
        let mut shrunk = full.clone();
        assert_eq!(shrunk.remove(1), Ok(true));
        let after = route_all(&shrunk);
        let moved = remapped(&before, &after);
        let bound = 2 * USERS as usize / n;
        assert!(
            moved <= bound,
            "removing from {n} replicas: {moved} of {USERS} users remapped, bound {bound}"
        );
        // Only the removed replica's users moved; nobody else was touched.
        for (user, (b, a)) in before.iter().zip(&after).enumerate() {
            if b != a {
                assert_eq!(
                    *b, 1,
                    "user {user} moved but was not on the removed replica"
                );
            }
            assert_ne!(*a, 1, "user {user} still routed to the removed replica");
        }
    }
}

#[test]
fn add_then_remove_is_identity() {
    let base = HashRing::new(4, DEFAULT_VNODES);
    let mut churned = base.clone();
    churned.add(9);
    churned.remove(9).unwrap();
    assert_eq!(route_all(&base), route_all(&churned));
}

#[test]
fn routing_is_deterministic_across_ring_rebuilds() {
    // Two independently built rings agree on every user. Together with the
    // golden pins below this is the "no RandomState" guarantee: identical
    // inputs produce identical routing in any process, any run.
    let a = HashRing::new(4, DEFAULT_VNODES);
    let b = HashRing::new(4, DEFAULT_VNODES);
    assert_eq!(route_all(&a), route_all(&b));
}

#[test]
fn routing_matches_golden_values() {
    // Pinned observed outputs. These fail if anyone changes the point/user
    // hash (or swaps in a seeded hasher) — which in production would strand
    // every session on the wrong replica after a restart, so it must be a
    // deliberate, visible decision (and a session-migration event).
    let ring = HashRing::new(4, DEFAULT_VNODES);
    let got: Vec<u32> = (0..16).map(|user| ring.route(user)).collect();
    assert_eq!(got, GOLDEN_ROUTES_4X128, "user→replica mapping changed");
}

/// Observed routing of users 0..16 on `HashRing::new(4, 128)`. Regenerate
/// by printing `(0..16).map(|u| ring.route(u))` if the placement hash is
/// ever deliberately changed.
const GOLDEN_ROUTES_4X128: [u32; 16] = [2, 0, 2, 1, 1, 1, 2, 2, 1, 2, 2, 3, 3, 0, 2, 3];

#[test]
fn distribution_is_within_two_of_uniform() {
    for n in [2usize, 4, 8] {
        let ring = HashRing::new(n, DEFAULT_VNODES);
        let mut counts = vec![0usize; n];
        for user in 0..USERS {
            counts[ring.route(user) as usize] += 1;
        }
        let mean = USERS as f64 / n as f64;
        for (replica, &count) in counts.iter().enumerate() {
            assert!(
                (count as f64) <= 2.0 * mean,
                "replica {replica}/{n} overloaded: {count} users vs mean {mean}"
            );
            assert!(
                (count as f64) >= mean / 2.0,
                "replica {replica}/{n} starved: {count} users vs mean {mean}"
            );
        }
    }
}
