//! [`ChaosProxy`]: a hermetic fault-injecting TCP forwarder.
//!
//! The disk seams ([`FaultyFs`](crate::FaultyFs)) make storage chaos
//! deterministic; this module does the same for the *network* between a
//! client and a server (`sqp-net`'s `NetServer`, or anything else TCP) —
//! without touching either side's code. A `ChaosProxy` listens on a loopback port, forwards bytes to a
//! real upstream, and injects the failure modes a remote serving client
//! must survive, scripted by the same seeded [`FaultPlan`](crate::FaultPlan):
//!
//! * **refuse-accept** (`refuse_accept_on` ordinals, or
//!   [`set_refuse`](ChaosProxy::set_refuse)) — the connection is accepted
//!   and instantly closed, the closest a bound listener gets to a dead
//!   endpoint: the client sees an immediate EOF/reset instead of service.
//! * **black-hole** (`blackhole_conn_on` ordinals, or
//!   [`set_blackhole`](ChaosProxy::set_blackhole)) — bytes are swallowed
//!   and nothing is ever forwarded or answered; the connection stays open
//!   so only the client's own deadline gets it out.
//! * **close-mid-frame** (`cut_frame_c2s_on`) — the scheduled
//!   client→server frame is forwarded up to the middle of its body, then
//!   both sides are killed: the server sees a torn frame, the client a
//!   dead connection.
//! * **byte-truncate** (`truncate_frame_s2c_on`) — the scheduled
//!   server→client reply is forwarded missing its final byte, then both
//!   sides are killed: the client's decoder sees an EOF inside a frame.
//! * **delay** — every forwarded frame strikes the hazard sites
//!   `net.proxy.c2s` / `net.proxy.s2c`, so plans with a `"net."` delay
//!   prefix inject seeded probabilistic stalls.
//!
//! The forwarders are frame-aware (they parse the wire protocol's `u32`
//! little-endian length prefix) so "mid-frame" is exact, but they degrade
//! to transparent byte forwarding if the stream stops looking like
//! frames — the proxy never deadlocks an unknown protocol. Half-closes
//! propagate (client `shutdown(Write)` reaches the upstream as EOF), so
//! the server's FIN-not-RST close discipline survives proxying.

use crate::chaos::Chaos;
use sqp_common::hazard::Hazard;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval for forwarder reads: how fast runtime flag flips
/// (black-hole, shutdown) take effect on an otherwise idle connection.
const POLL: Duration = Duration::from_millis(25);

/// Streams that stop parsing as length-prefixed frames (a prefix of 0 or
/// beyond this) are forwarded transparently instead.
const MAX_PLAUSIBLE_FRAME: usize = 64 << 20;

/// Counters of one proxy's life, snapshotted by [`ChaosProxy::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Connections accepted (including refused and black-holed ones).
    pub accepted: u64,
    /// Connections dropped immediately after accept.
    pub refused: u64,
    /// Connections black-holed from the start.
    pub blackholed: u64,
    /// Complete client→server frames forwarded or killed.
    pub frames_c2s: u64,
    /// Complete server→client frames forwarded or killed.
    pub frames_s2c: u64,
    /// Frames killed mid-body (client→server cuts).
    pub cut_frames: u64,
    /// Frames forwarded missing their last byte (server→client).
    pub truncated_frames: u64,
}

#[derive(Clone, Copy)]
enum Dir {
    C2s,
    S2c,
}

struct ProxyInner {
    chaos: Arc<Chaos>,
    upstream: SocketAddr,
    closing: AtomicBool,
    blackhole: AtomicBool,
    refuse: AtomicBool,
    conn_seq: AtomicU64,
    frames_c2s: AtomicU64,
    frames_s2c: AtomicU64,
    refused: AtomicU64,
    blackholed: AtomicU64,
    cut_frames: AtomicU64,
    truncated_frames: AtomicU64,
    conns: Mutex<Vec<ConnHandle>>,
}

struct ConnHandle {
    kill: Arc<ConnKill>,
    threads: Vec<JoinHandle<()>>,
}

/// Both sides of one proxied connection, shared by its forwarder threads
/// so either can kill the whole connection on a scheduled fault.
struct ConnKill {
    client: TcpStream,
    upstream: Option<TcpStream>,
}

impl ConnKill {
    fn kill(&self) {
        let _ = self.client.shutdown(Shutdown::Both);
        if let Some(up) = &self.upstream {
            let _ = up.shutdown(Shutdown::Both);
        }
    }
}

impl ProxyInner {
    fn lock_conns(&self) -> MutexGuard<'_, Vec<ConnHandle>> {
        // The registry only holds handles; recover from poisoning.
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn frames(&self, dir: Dir) -> &AtomicU64 {
        match dir {
            Dir::C2s => &self.frames_c2s,
            Dir::S2c => &self.frames_s2c,
        }
    }

    fn site(dir: Dir) -> &'static str {
        match dir {
            Dir::C2s => "net.proxy.c2s",
            Dir::S2c => "net.proxy.s2c",
        }
    }

    /// The scheduled fate of frame `ordinal` in direction `dir`.
    fn frame_fault(&self, dir: Dir, ordinal: u64) -> FrameFault {
        let plan = self.chaos.plan();
        match dir {
            Dir::C2s if plan.cut_frame_c2s_on.contains(&ordinal) => FrameFault::Cut,
            Dir::S2c if plan.truncate_frame_s2c_on.contains(&ordinal) => FrameFault::Truncate,
            _ => FrameFault::None,
        }
    }
}

#[derive(PartialEq)]
enum FrameFault {
    None,
    Cut,
    Truncate,
}

/// A loopback TCP forwarder that injects the [`FaultPlan`]'s network
/// faults between any client and one upstream address. See the
/// [module docs](self) for the fault menu.
///
/// [`FaultPlan`]: crate::FaultPlan
pub struct ChaosProxy {
    listen_addr: SocketAddr,
    inner: Arc<ProxyInner>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral loopback port forwarding to
    /// `upstream`, injecting `chaos`'s plan.
    pub fn start(upstream: SocketAddr, chaos: Arc<Chaos>) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let listen_addr = listener.local_addr()?;
        let inner = Arc::new(ProxyInner {
            chaos,
            upstream,
            closing: AtomicBool::new(false),
            blackhole: AtomicBool::new(false),
            refuse: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            frames_c2s: AtomicU64::new(0),
            frames_s2c: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            blackholed: AtomicU64::new(0),
            cut_frames: AtomicU64::new(0),
            truncated_frames: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("chaos-proxy-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(Self {
            listen_addr,
            inner,
            accept_thread: Some(accept_thread),
        })
    }

    /// Where clients connect (the proxy's own loopback listener).
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// The upstream this proxy forwards to.
    pub fn upstream(&self) -> SocketAddr {
        self.inner.upstream
    }

    /// Black-hole the proxy from now on: existing and new connections
    /// have their bytes swallowed (connections stay open; nothing is
    /// forwarded or answered). `false` restores forwarding for *new*
    /// frames on live connections and for new connections.
    pub fn set_blackhole(&self, on: bool) {
        self.inner.blackhole.store(on, Ordering::SeqCst);
    }

    /// Refuse (accept-then-close) every new connection from now on.
    pub fn set_refuse(&self, on: bool) {
        self.inner.refuse.store(on, Ordering::SeqCst);
    }

    /// Kill every live proxied connection (both sides) right now —
    /// the "endpoint process dies" event of a soak scenario.
    pub fn kill_connections(&self) {
        let mut conns = self.inner.lock_conns();
        for conn in conns.iter() {
            conn.kill.kill();
        }
        // Reap finished forwarders so a long soak's registry stays small.
        conns.retain_mut(|c| {
            c.threads.retain(|t| !t.is_finished());
            !c.threads.is_empty()
        });
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            accepted: self.inner.conn_seq.load(Ordering::Relaxed),
            refused: self.inner.refused.load(Ordering::Relaxed),
            blackholed: self.inner.blackholed.load(Ordering::Relaxed),
            frames_c2s: self.inner.frames_c2s.load(Ordering::Relaxed),
            frames_s2c: self.inner.frames_s2c.load(Ordering::Relaxed),
            cut_frames: self.inner.cut_frames.load(Ordering::Relaxed),
            truncated_frames: self.inner.truncated_frames.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, kill every connection, and join all proxy threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.closing.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.listen_addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let conns = {
            let mut guard = self.inner.lock_conns();
            std::mem::take(&mut *guard)
        };
        for conn in &conns {
            conn.kill.kill();
        }
        for conn in conns {
            for t in conn.threads {
                let _ = t.join();
            }
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if !self.inner.closing.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ProxyInner>) {
    loop {
        let Ok((client, _)) = listener.accept() else {
            return;
        };
        if inner.closing.load(Ordering::SeqCst) {
            return;
        }
        let ordinal = inner.conn_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let plan = inner.chaos.plan();
        if inner.refuse.load(Ordering::SeqCst) || plan.refuse_accept_on.contains(&ordinal) {
            inner.refused.fetch_add(1, Ordering::Relaxed);
            drop(client);
            continue;
        }
        let _ = client.set_nodelay(true);
        if inner.blackhole.load(Ordering::SeqCst) || plan.blackhole_conn_on.contains(&ordinal) {
            // No upstream at all: the client's bytes fall into the void.
            inner.blackholed.fetch_add(1, Ordering::Relaxed);
            spawn_conn(&inner, client, None);
            continue;
        }
        match TcpStream::connect_timeout(&inner.upstream, Duration::from_secs(1)) {
            Ok(upstream) => {
                let _ = upstream.set_nodelay(true);
                spawn_conn(&inner, client, Some(upstream));
            }
            Err(_) => drop(client), // upstream down: client sees EOF
        }
    }
}

fn spawn_conn(inner: &Arc<ProxyInner>, client: TcpStream, upstream: Option<TcpStream>) {
    let kill = Arc::new(ConnKill {
        client: match client.try_clone() {
            Ok(c) => c,
            Err(_) => return,
        },
        upstream: upstream.as_ref().and_then(|u| u.try_clone().ok()),
    });
    let mut threads = Vec::new();
    match upstream {
        None => {
            // Black-holed from birth: one swallower, no upstream.
            let inner = Arc::clone(inner);
            let kill2 = Arc::clone(&kill);
            if let Ok(t) = std::thread::Builder::new()
                .name("chaos-proxy-void".into())
                .spawn(move || swallow(client, &inner, &kill2))
            {
                threads.push(t);
            }
        }
        Some(upstream) => {
            let up2 = upstream.try_clone();
            let c2 = client.try_clone();
            let (Ok(up2), Ok(c2)) = (up2, c2) else {
                return;
            };
            for (src, dst, dir, name) in [
                (client, upstream, Dir::C2s, "chaos-proxy-c2s"),
                (up2, c2, Dir::S2c, "chaos-proxy-s2c"),
            ] {
                let inner = Arc::clone(inner);
                let kill2 = Arc::clone(&kill);
                if let Ok(t) = std::thread::Builder::new()
                    .name(name.into())
                    .spawn(move || forward(src, dst, dir, &inner, &kill2))
                {
                    threads.push(t);
                }
            }
        }
    }
    let mut conns = inner.lock_conns();
    conns.retain_mut(|c| {
        c.threads.retain(|t| !t.is_finished());
        !c.threads.is_empty()
    });
    conns.push(ConnHandle { kill, threads });
}

/// Read and discard everything from a black-holed client until it gives
/// up or the proxy closes.
fn swallow(mut client: TcpStream, inner: &ProxyInner, kill: &ConnKill) {
    let _ = client.set_read_timeout(Some(POLL));
    let mut buf = [0u8; 4096];
    loop {
        if inner.closing.load(Ordering::SeqCst) {
            kill.kill();
            return;
        }
        match client.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

/// One direction of a proxied connection: parse frames off `src`, apply
/// the plan's per-frame faults, forward to `dst`.
fn forward(mut src: TcpStream, mut dst: TcpStream, dir: Dir, inner: &ProxyInner, kill: &ConnKill) {
    let _ = src.set_read_timeout(Some(POLL));
    let _ = dst.set_write_timeout(Some(Duration::from_secs(5)));
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 16384];
    let mut raw_mode = false;
    loop {
        if inner.closing.load(Ordering::SeqCst) {
            kill.kill();
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Half-close: propagate the FIN and let the opposite
                // direction keep draining queued replies.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => {
                kill.kill();
                return;
            }
        };
        if inner.blackhole.load(Ordering::SeqCst) {
            // Swallow everything read while black-holed, including any
            // half-accumulated frame: the stream is desynchronized by
            // design and the connection only ends by deadline or kill.
            pending.clear();
            continue;
        }
        pending.extend_from_slice(&buf[..n]);
        if raw_mode {
            if dst.write_all(&pending).is_err() {
                kill.kill();
                return;
            }
            pending.clear();
            continue;
        }
        // Forward every complete frame in the pending buffer.
        loop {
            if pending.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
            if len == 0 || len > MAX_PLAUSIBLE_FRAME {
                // Not our framing: degrade to transparent forwarding.
                raw_mode = true;
                if dst.write_all(&pending).is_err() {
                    kill.kill();
                    return;
                }
                pending.clear();
                break;
            }
            if pending.len() < 4 + len {
                break;
            }
            let ordinal = inner.frames(dir).fetch_add(1, Ordering::SeqCst) + 1;
            inner.chaos.strike(ProxyInner::site(dir));
            match inner.frame_fault(dir, ordinal) {
                FrameFault::Cut => {
                    inner.cut_frames.fetch_add(1, Ordering::Relaxed);
                    let _ = dst.write_all(&pending[..4 + len / 2]);
                    kill.kill();
                    return;
                }
                FrameFault::Truncate => {
                    inner.truncated_frames.fetch_add(1, Ordering::Relaxed);
                    let _ = dst.write_all(&pending[..4 + len - 1]);
                    kill.kill();
                    return;
                }
                FrameFault::None => {
                    if dst.write_all(&pending[..4 + len]).is_err() {
                        kill.kill();
                        return;
                    }
                    pending.drain(..4 + len);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    /// A minimal framed echo server: accepts up to `max_conns`
    /// connections, echoes every frame back verbatim, exits on EOF.
    fn echo_server(max_conns: usize) -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut handlers = Vec::new();
            for _ in 0..max_conns {
                let Ok((mut conn, _)) = listener.accept() else {
                    break;
                };
                handlers.push(std::thread::spawn(move || {
                    while let Some(body) = read_body(&mut conn) {
                        send_frame(&mut conn, &body);
                    }
                }));
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        (addr, t)
    }

    fn send_frame(stream: &mut TcpStream, body: &[u8]) {
        let _ = stream.write_all(&(body.len() as u32).to_le_bytes());
        let _ = stream.write_all(body);
    }

    fn read_body(stream: &mut TcpStream) -> Option<Vec<u8>> {
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix).ok()?;
        let mut body = vec![0u8; u32::from_le_bytes(prefix) as usize];
        stream.read_exact(&mut body).ok()?;
        Some(body)
    }

    fn proxy_with(plan: FaultPlan, max_conns: usize) -> (ChaosProxy, JoinHandle<()>) {
        let (upstream, server) = echo_server(max_conns);
        let proxy = ChaosProxy::start(upstream, Chaos::new(plan)).unwrap();
        (proxy, server)
    }

    #[test]
    fn forwards_frames_and_refuses_scheduled_accepts() {
        let (proxy, server) = proxy_with(
            FaultPlan {
                seed: 1,
                refuse_accept_on: vec![1],
                ..FaultPlan::default()
            },
            1,
        );

        // Connection #1 is accepted then instantly dropped: the client
        // sees EOF (or a reset) where the echo was due.
        let mut refused = TcpStream::connect(proxy.listen_addr()).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        send_frame(&mut refused, b"never answered");
        assert!(read_body(&mut refused).is_none());

        // Connection #2 forwards transparently, both directions.
        let mut ok = TcpStream::connect(proxy.listen_addr()).unwrap();
        ok.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        send_frame(&mut ok, b"hello");
        assert_eq!(read_body(&mut ok).unwrap(), b"hello");
        send_frame(&mut ok, b"again");
        assert_eq!(read_body(&mut ok).unwrap(), b"again");

        let stats = proxy.stats();
        assert_eq!(stats.refused, 1);
        assert_eq!(stats.frames_c2s, 2);
        assert_eq!(stats.frames_s2c, 2);
        drop(ok);
        proxy.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn cuts_the_scheduled_frame_mid_body() {
        let (proxy, _server) = proxy_with(
            FaultPlan {
                seed: 2,
                cut_frame_c2s_on: vec![2],
                ..FaultPlan::default()
            },
            1,
        );
        let mut client = TcpStream::connect(proxy.listen_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        send_frame(&mut client, b"first survives");
        assert_eq!(read_body(&mut client).unwrap(), b"first survives");
        // Frame #2 is forwarded only halfway, then the connection dies in
        // both directions: no reply ever comes.
        send_frame(&mut client, b"second is cut");
        assert!(read_body(&mut client).is_none());
        assert_eq!(proxy.stats().cut_frames, 1);
        proxy.shutdown();
    }

    #[test]
    fn truncates_the_scheduled_reply_by_one_byte() {
        let (proxy, _server) = proxy_with(
            FaultPlan {
                seed: 3,
                truncate_frame_s2c_on: vec![1],
                ..FaultPlan::default()
            },
            1,
        );
        let mut client = TcpStream::connect(proxy.listen_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        send_frame(&mut client, b"echo me");
        // The prefix announces 7 bytes but only 6 arrive before the kill:
        // an EOF inside the frame body.
        let mut prefix = [0u8; 4];
        client.read_exact(&mut prefix).unwrap();
        assert_eq!(u32::from_le_bytes(prefix), 7);
        let mut body = vec![0u8; 7];
        assert!(client.read_exact(&mut body).is_err());
        assert_eq!(proxy.stats().truncated_frames, 1);
        proxy.shutdown();
    }

    #[test]
    fn blackhole_swallows_then_recovers_and_kill_drops_live_conns() {
        let (proxy, _server) = proxy_with(FaultPlan::quiet(4), 2);
        let mut client = TcpStream::connect(proxy.listen_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        send_frame(&mut client, b"before");
        assert_eq!(read_body(&mut client).unwrap(), b"before");

        // Black-holed: the frame vanishes, the read hits its timeout, the
        // connection itself stays open.
        proxy.set_blackhole(true);
        std::thread::sleep(Duration::from_millis(60)); // let the flag land
        send_frame(&mut client, b"into the void");
        assert!(read_body(&mut client).is_none());

        // Recovery: new frames on the same connection forward again.
        proxy.set_blackhole(false);
        std::thread::sleep(Duration::from_millis(60));
        send_frame(&mut client, b"after");
        assert_eq!(read_body(&mut client).unwrap(), b"after");

        // Kill: the live connection dies under the client.
        proxy.kill_connections();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert!(read_body(&mut client).is_none());
        proxy.shutdown();
    }

    #[test]
    fn blackholed_conn_ordinal_never_reaches_upstream() {
        let (proxy, _server) = proxy_with(
            FaultPlan {
                seed: 5,
                blackhole_conn_on: vec![1],
                ..FaultPlan::default()
            },
            1,
        );
        let mut doomed = TcpStream::connect(proxy.listen_addr()).unwrap();
        doomed
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        send_frame(&mut doomed, b"hello?");
        assert!(read_body(&mut doomed).is_none());

        let mut fine = TcpStream::connect(proxy.listen_addr()).unwrap();
        fine.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        send_frame(&mut fine, b"works");
        assert_eq!(read_body(&mut fine).unwrap(), b"works");

        let stats = proxy.stats();
        assert_eq!(stats.blackholed, 1);
        assert_eq!(stats.frames_c2s, 1, "the void frame was never counted");
        proxy.shutdown();
    }
}
