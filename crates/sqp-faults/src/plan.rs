//! The fault plan: a declarative, replayable chaos schedule.
//!
//! A [`FaultPlan`] is data, not behavior — it names *which* events fault
//! and with what probability, and carries the seed that makes every
//! probabilistic draw replayable. The [`Chaos`](crate::Chaos) runtime
//! executes the plan; two runs built from the same plan make identical
//! fault decisions (asserted by the chaos soak's digest comparison).
//!
//! Two scheduling styles compose:
//!
//! * **Indexed schedules** (`write_error_on`, `corrupt_write_on`, …) name
//!   exact 1-based event ordinals — "the 2nd snapshot write is corrupted".
//!   These make the marquee chaos events (a quarantine, a breaker trip)
//!   certain rather than merely probable, which keeps soak assertions
//!   sharp.
//! * **Seeded probabilities** (`p_delay`) draw from a per-site
//!   xoshiro256++ stream derived from `seed ^ fx_hash(site)`, so the k-th
//!   decision at any given site is a pure function of the seed no matter
//!   how threads interleave *between* sites.

use std::time::Duration;

/// A declarative chaos schedule. See the module docs for semantics.
///
/// The default plan injects nothing — every field empty or zero — so a
/// plan can be built by naming only the faults a scenario needs.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for all probabilistic draws (per-site streams derive from it).
    pub seed: u64,
    /// 1-based global read ordinals that fail with an injected IO error.
    pub read_error_on: Vec<u64>,
    /// 1-based global read ordinals that return truncated contents.
    pub short_read_on: Vec<u64>,
    /// 1-based global write ordinals that fail with an injected IO error.
    pub write_error_on: Vec<u64>,
    /// 1-based global write ordinals whose bytes are corrupted in flight
    /// (one deterministic byte flip) before reaching the disk.
    pub corrupt_write_on: Vec<u64>,
    /// Exact hazard sites where panics may be injected.
    pub panic_sites: Vec<String>,
    /// 1-based per-site strike ordinals (at `panic_sites`) that panic.
    pub panic_on: Vec<u64>,
    /// Hazard-site prefixes eligible for injected stalls (e.g. `"serve."`).
    pub delay_site_prefixes: Vec<String>,
    /// Probability that a strike at a delay-eligible site stalls.
    pub p_delay: f64,
    /// Stall length for injected delays.
    pub delay: Duration,
    /// 1-based accepted-connection ordinals a [`ChaosProxy`] closes
    /// immediately after accepting (the closest a listening proxy gets to
    /// a refused connect: the client sees an instant reset/EOF).
    ///
    /// [`ChaosProxy`]: crate::netchaos::ChaosProxy
    pub refuse_accept_on: Vec<u64>,
    /// 1-based accepted-connection ordinals a proxy black-holes: bytes in
    /// either direction are swallowed, nothing is forwarded, the
    /// connection stays open until the client's deadline fires.
    pub blackhole_conn_on: Vec<u64>,
    /// 1-based global client→server frame ordinals the proxy cuts
    /// mid-frame: the length prefix and half the body are forwarded, then
    /// both sides are killed (the server sees a torn frame).
    pub cut_frame_c2s_on: Vec<u64>,
    /// 1-based global server→client frame ordinals the proxy truncates:
    /// the frame is forwarded missing its last byte, then both sides are
    /// killed (the client sees a torn reply).
    pub truncate_frame_s2c_on: Vec<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (identical to `Default`); chaos wiring
    /// with this plan behaves exactly like production wiring.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// True when no fault of any kind can fire.
    pub fn is_quiet(&self) -> bool {
        self.read_error_on.is_empty()
            && self.short_read_on.is_empty()
            && self.write_error_on.is_empty()
            && self.corrupt_write_on.is_empty()
            && (self.panic_sites.is_empty() || self.panic_on.is_empty())
            && (self.p_delay <= 0.0 || self.delay_site_prefixes.is_empty())
            && self.refuse_accept_on.is_empty()
            && self.blackhole_conn_on.is_empty()
            && self.cut_frame_c2s_on.is_empty()
            && self.truncate_frame_s2c_on.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_quiet() {
        assert!(FaultPlan::default().is_quiet());
        assert!(FaultPlan::quiet(7).is_quiet());
        let mut p = FaultPlan::quiet(7);
        p.corrupt_write_on = vec![2];
        assert!(!p.is_quiet());
    }
}
