//! Deterministic fault injection for the SQP serving stack.
//!
//! The resilient serving stack (supervised retraining, snapshot
//! quarantine/rollback, overload shedding) is only trustworthy if its
//! failure paths are *executed*, and failure paths are only debuggable if
//! their execution is *replayable*. This crate provides both halves:
//!
//! * [`FaultPlan`] — a declarative chaos schedule: exact event ordinals for
//!   disk faults and worker panics, seeded probabilities for stalls.
//! * [`Chaos`] — the runtime that executes a plan at the `sqp-common` fault
//!   seams: it implements [`Hazard`](sqp_common::hazard::Hazard) (panic and
//!   stall injection), hands out a [`FaultyFs`] (disk-fault injection over
//!   the [`FsIo`](sqp_common::fsio::FsIo) seam), counts every injected
//!   fault into [`ChaosStats`], and folds every decision into a replay
//!   [`digest`](Chaos::digest).
//! * [`VirtualClock`] — a [`Clock`](sqp_common::clock::Clock) whose sleeps
//!   advance instantly, so backoff- and cooldown-heavy scenarios run in
//!   microseconds.
//! * [`ChaosProxy`] ([`netchaos`]) — a loopback TCP forwarder that injects
//!   the plan's *network* faults (refuse-accept, black-hole,
//!   close-mid-frame, byte-truncate, delay) between any client and a real
//!   server, so cross-process resilience is provable in-repo.
//!
//! Everything is std-only and seeded by `sqp-common`'s xoshiro256++: a run
//! with the same plan makes bit-identical fault decisions, which the chaos
//! soak test asserts by comparing digests across runs.

#![deny(missing_docs)]

mod chaos;
mod clock;
mod fs;
pub mod netchaos;
mod plan;

pub use chaos::{Chaos, ChaosStats, PANIC_MARKER};
pub use clock::VirtualClock;
pub use fs::FaultyFs;
pub use netchaos::{ChaosProxy, ProxyStats};
pub use plan::FaultPlan;
