//! A virtual clock: time that moves only when someone sleeps.
//!
//! Resilience logic is full of waits — retry backoff, circuit-breaker
//! cooldowns — that would make real-time chaos tests take minutes. The
//! [`VirtualClock`] implements [`Clock`] over an atomic counter: `sleep`
//! advances the counter instantly instead of blocking, and `now_millis`
//! reads it. Deterministic, instantaneous, and shared safely across the
//! supervised threads of a scenario.

use sqp_common::clock::Clock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A [`Clock`] whose time advances only via `sleep` (or [`advance`]).
///
/// [`advance`]: VirtualClock::advance
///
/// # Examples
///
/// ```
/// use sqp_common::clock::Clock;
/// use sqp_faults::VirtualClock;
/// use std::time::Duration;
///
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now_millis(), 0);
/// clock.sleep(Duration::from_secs(60)); // returns immediately
/// assert_eq!(clock.now_millis(), 60_000);
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ms: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `ms` without any thread sleeping.
    pub fn advance(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_millis(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    fn sleep(&self, dur: Duration) {
        // Saturating: a pathological Duration must not wrap virtual time.
        let ms = u64::try_from(dur.as_millis()).unwrap_or(u64::MAX);
        self.now_ms
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |t| {
                Some(t.saturating_add(ms))
            })
            // Invariant: the closure always returns Some, so fetch_update
            // cannot fail.
            .unwrap_or_else(|t| t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_advances_without_blocking() {
        let clock = VirtualClock::new();
        let t0 = std::time::Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(clock.now_millis(), 3_600_000);
        clock.advance(5);
        assert_eq!(clock.now_millis(), 3_600_005);
    }

    #[test]
    fn extreme_duration_saturates() {
        let clock = VirtualClock::new();
        clock.sleep(Duration::MAX);
        clock.sleep(Duration::from_millis(1));
        assert_eq!(clock.now_millis(), u64::MAX);
    }
}
