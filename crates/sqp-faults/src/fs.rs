//! A fault-injecting filesystem: the [`FsIo`] seam under a chaos plan.
//!
//! [`FaultyFs`] wraps the real filesystem and consults its [`Chaos`]
//! runtime's indexed schedules before every read and write: the plan names
//! exact 1-based event ordinals that fail, return short, or corrupt the
//! payload in flight. Ordinals are global across the scenario (the 2nd
//! write the store performs, wherever it lands), which keeps fault timing
//! exact in single-driver scenarios like the chaos soak's scripted retrain
//! loop.

use crate::Chaos;
use sqp_common::fsio::{FsIo, RealFs};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// An [`FsIo`] that injects the [`Chaos`] plan's disk faults in front of
/// the real filesystem.
///
/// # Examples
///
/// ```
/// use sqp_common::fsio::FsIo;
/// use sqp_faults::{Chaos, FaultPlan};
///
/// let chaos = Chaos::new(FaultPlan {
///     seed: 7,
///     write_error_on: vec![1], // the first write fails...
///     ..FaultPlan::default()
/// });
/// let fs = chaos.faulty_fs();
/// let dir = std::env::temp_dir().join(format!("sqp-faultyfs-doc-{}", std::process::id()));
/// fs.create_dir_all(&dir).unwrap();
/// let path = dir.join("snap.bin");
/// assert!(fs.write_atomic(&path, b"payload").is_err());
/// fs.write_atomic(&path, b"payload").unwrap(); // ...the second succeeds
/// assert_eq!(fs.read(&path).unwrap(), b"payload");
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct FaultyFs {
    chaos: Arc<Chaos>,
    inner: RealFs,
}

impl FaultyFs {
    /// A fault-injecting filesystem driven by `chaos`.
    pub fn new(chaos: Arc<Chaos>) -> Self {
        Self {
            chaos,
            inner: RealFs,
        }
    }

    fn injected(kind: &str, ordinal: u64) -> io::Error {
        io::Error::other(format!("injected chaos {kind} error (event #{ordinal})"))
    }
}

impl FsIo for FaultyFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let ordinal = self.chaos.reads.fetch_add(1, Ordering::SeqCst) + 1;
        if self.chaos.plan().read_error_on.contains(&ordinal) {
            self.chaos.note_read_error();
            return Err(Self::injected("read", ordinal));
        }
        let mut bytes = self.inner.read(path)?;
        if self.chaos.plan().short_read_on.contains(&ordinal) {
            self.chaos.note_short_read();
            // Deterministic truncation: drop the second half (at least one
            // byte), modeling a reader that hit EOF early.
            bytes.truncate(bytes.len() / 2);
        }
        Ok(bytes)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let ordinal = self.chaos.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if self.chaos.plan().write_error_on.contains(&ordinal) {
            self.chaos.note_write_error();
            return Err(Self::injected("write", ordinal));
        }
        if self.chaos.plan().corrupt_write_on.contains(&ordinal) && !bytes.is_empty() {
            self.chaos.note_corrupt_write();
            // One deterministic byte flip at a seed+ordinal-derived offset:
            // the file lands complete (the atomic rename succeeds) but its
            // checksum no longer matches — a silent-corruption model.
            let mut corrupted = bytes.to_vec();
            let pos = (sqp_common::hash::fx_hash_one(&(self.chaos.plan().seed, ordinal))
                % corrupted.len() as u64) as usize;
            corrupted[pos] ^= 0xA5;
            return self.inner.write_atomic(path, &corrupted);
        }
        self.inner.write_atomic(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqp-faultyfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scheduled_read_faults_fire_on_exact_ordinals() {
        let dir = scratch("read");
        let chaos = Chaos::new(FaultPlan {
            seed: 3,
            read_error_on: vec![2],
            short_read_on: vec![3],
            ..FaultPlan::default()
        });
        let fs = chaos.faulty_fs();
        let path = dir.join("f.bin");
        fs.write_atomic(&path, b"0123456789").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"0123456789"); // #1 clean
        assert!(fs.read(&path).is_err()); // #2 injected error
        assert_eq!(fs.read(&path).unwrap(), b"01234"); // #3 short
        assert_eq!(fs.read(&path).unwrap(), b"0123456789"); // #4 clean
        let stats = chaos.stats();
        assert_eq!((stats.read_errors, stats.short_reads), (1, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_write_flips_exactly_one_byte_deterministically() {
        let dir = scratch("corrupt");
        let payload = vec![0u8; 64];
        let read_back = |seed| {
            let chaos = Chaos::new(FaultPlan {
                seed,
                corrupt_write_on: vec![1],
                ..FaultPlan::default()
            });
            let fs = chaos.faulty_fs();
            let path = dir.join(format!("c-{seed}.bin"));
            fs.write_atomic(&path, &payload).unwrap();
            fs.read(&path).unwrap()
        };
        let a = read_back(11);
        let b = read_back(11);
        assert_eq!(a, b, "corruption must be seed-deterministic");
        assert_eq!(a.len(), payload.len());
        let flipped: Vec<usize> = (0..a.len()).filter(|&i| a[i] != payload[i]).collect();
        assert_eq!(flipped.len(), 1);
        assert_eq!(a[flipped[0]], 0xA5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quiet_plan_passes_everything_through() {
        let dir = scratch("quiet");
        let chaos = Chaos::new(FaultPlan::quiet(5));
        let fs = chaos.faulty_fs();
        let path = dir.join("f.bin");
        fs.write_atomic(&path, b"data").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"data");
        fs.rename(&path, &dir.join("g.bin")).unwrap();
        assert_eq!(fs.list(&dir).unwrap(), vec![dir.join("g.bin")]);
        fs.remove_file(&dir.join("g.bin")).unwrap();
        let stats = chaos.stats();
        assert_eq!((stats.reads, stats.writes), (1, 1));
        assert_eq!(
            stats.read_errors + stats.write_errors + stats.corrupt_writes,
            0
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
