//! The chaos runtime: executes a [`FaultPlan`] at the workspace's fault
//! seams.
//!
//! One [`Chaos`] value is shared (via `Arc`) by everything a scenario
//! wires: it implements [`Hazard`] for panic/stall injection, hands out a
//! [`FaultyFs`](crate::FaultyFs) for disk-fault injection, and counts every
//! decision it makes into [`ChaosStats`]. The [`digest`](Chaos::digest)
//! folds all decisions into one number — two runs of a deterministic
//! scenario with the same plan must produce the same digest, which is how
//! the chaos soak asserts seed-replayability.

use crate::plan::FaultPlan;
use sqp_common::clock::{Clock, RealClock};
use sqp_common::hash::fx_hash_one;
use sqp_common::hazard::Hazard;
use sqp_common::rng::{Rng, StdRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Marker embedded in every injected panic's payload, so panic hooks and
/// supervisors can distinguish scheduled chaos from genuine bugs.
pub const PANIC_MARKER: &str = "injected chaos panic";

/// One hazard site's deterministic decision stream.
struct SiteStream {
    rng: StdRng,
    /// Strikes observed at this site so far (1-based ordinals).
    strikes: u64,
    /// Rolling hash over the site's decisions, for the digest.
    decisions: u64,
}

/// Counters of injected faults (and the event totals they were drawn
/// from), snapshotted by [`Chaos::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// File reads observed.
    pub reads: u64,
    /// File writes observed.
    pub writes: u64,
    /// Reads failed with an injected error.
    pub read_errors: u64,
    /// Reads returned truncated.
    pub short_reads: u64,
    /// Writes failed with an injected error.
    pub write_errors: u64,
    /// Writes whose payload was corrupted in flight.
    pub corrupt_writes: u64,
    /// Hazard strikes that stalled the calling thread.
    pub delays: u64,
    /// Hazard strikes that panicked the calling thread.
    pub panics: u64,
}

/// Executes a [`FaultPlan`]: the shared chaos state of one scenario.
///
/// # Examples
///
/// A hazard that panics on its first strike at a named site:
///
/// ```
/// use sqp_common::hazard::Hazard;
/// use sqp_faults::{Chaos, FaultPlan, PANIC_MARKER};
///
/// let chaos = Chaos::new(FaultPlan {
///     seed: 42,
///     panic_sites: vec!["store.retrain.train".into()],
///     panic_on: vec![1],
///     ..FaultPlan::default()
/// });
/// let caught =
///     std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| chaos.strike("store.retrain.train")));
/// let payload = caught.unwrap_err();
/// assert!(payload.downcast_ref::<String>().unwrap().contains(PANIC_MARKER));
/// // The ordinal was consumed: the second strike passes clean.
/// chaos.strike("store.retrain.train");
/// assert_eq!(chaos.stats().panics, 1);
/// ```
pub struct Chaos {
    plan: FaultPlan,
    clock: Arc<dyn Clock>,
    pub(crate) reads: AtomicU64,
    pub(crate) writes: AtomicU64,
    read_errors: AtomicU64,
    short_reads: AtomicU64,
    write_errors: AtomicU64,
    corrupt_writes: AtomicU64,
    delays: AtomicU64,
    panics: AtomicU64,
    sites: Mutex<BTreeMap<String, SiteStream>>,
}

impl std::fmt::Debug for Chaos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chaos")
            .field("plan", &self.plan)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Chaos {
    /// A chaos runtime executing `plan`, stalling on the real clock.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Self::with_clock(plan, Arc::new(RealClock))
    }

    /// A chaos runtime whose injected stalls sleep on `clock` (a virtual
    /// clock makes delay-heavy plans run instantly).
    pub fn with_clock(plan: FaultPlan, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Self {
            plan,
            clock,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            short_reads: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            corrupt_writes: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            sites: Mutex::new(BTreeMap::new()),
        })
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A [`FsIo`](sqp_common::fsio::FsIo) that injects this plan's disk
    /// faults in front of the real filesystem.
    pub fn faulty_fs(self: &Arc<Self>) -> crate::FaultyFs {
        crate::FaultyFs::new(Arc::clone(self))
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
            short_reads: self.short_reads.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            corrupt_writes: self.corrupt_writes.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }

    /// Fold every decision this runtime has made — per-site strike counts
    /// and probabilistic draws, IO event totals, injected-fault counters —
    /// into one value. A scenario whose event counts are deterministic
    /// (fixed ops per worker, a scripted retrain driver) produces the same
    /// digest on every run with the same plan; the chaos soak asserts
    /// exactly that.
    pub fn digest(&self) -> u64 {
        const PRIME: u64 = 0x100000001b3;
        let mut h = 0xcbf29ce484222325u64 ^ self.plan.seed;
        let fold = |h: u64, v: u64| (h ^ v).wrapping_mul(PRIME);
        let s = self.stats();
        for v in [
            s.reads,
            s.writes,
            s.read_errors,
            s.short_reads,
            s.write_errors,
            s.corrupt_writes,
            s.delays,
            s.panics,
        ] {
            h = fold(h, v);
        }
        // BTreeMap iteration is name-ordered, so the fold is independent of
        // site creation order.
        let sites = self.lock_sites();
        for (name, stream) in sites.iter() {
            h = fold(h, fx_hash_one(&name.as_str()));
            h = fold(h, stream.strikes);
            h = fold(h, stream.decisions);
        }
        h
    }

    /// Install a process-wide panic hook that silences injected chaos
    /// panics (payloads carrying [`PANIC_MARKER`]) and forwards everything
    /// else to the previous hook. Idempotent; intended for chaos test
    /// binaries, where scheduled panics would otherwise spray backtraces
    /// over the output.
    pub fn install_quiet_panic_hook() {
        use std::sync::Once;
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains(PANIC_MARKER));
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    fn lock_sites(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, SiteStream>> {
        // Invariant: the map is only mutated under the lock and every
        // mutation (entry insert, counter bump) leaves it valid even if a
        // strike panics by design right after — recover from poisoning.
        self.sites.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a strike at `site`, returning its 1-based ordinal and the
    /// site's probabilistic draw for this strike.
    fn draw(&self, site: &str) -> (u64, f64) {
        let mut sites = self.lock_sites();
        let stream = sites.entry(site.to_owned()).or_insert_with(|| SiteStream {
            // Per-site streams: the k-th draw at a site depends only on the
            // seed and the site name, never on other sites' activity.
            rng: StdRng::seed_from_u64(self.plan.seed ^ fx_hash_one(&site)),
            strikes: 0,
            decisions: 0,
        });
        stream.strikes += 1;
        let draw: f64 = stream.rng.random();
        stream.decisions = (stream.decisions ^ draw.to_bits()).wrapping_mul(0x100000001b3);
        (stream.strikes, draw)
    }
}

impl Hazard for Chaos {
    fn strike(&self, site: &str) {
        let (ordinal, draw) = self.draw(site);
        if self.plan.panic_sites.iter().any(|s| s == site) && self.plan.panic_on.contains(&ordinal)
        {
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("{PANIC_MARKER} at {site} strike #{ordinal}");
        }
        if self.plan.p_delay > 0.0
            && draw < self.plan.p_delay
            && self
                .plan
                .delay_site_prefixes
                .iter()
                .any(|p| site.starts_with(p.as_str()))
        {
            self.delays.fetch_add(1, Ordering::Relaxed);
            self.clock.sleep(self.plan.delay);
        }
    }
}

// Internal hooks for FaultyFs (same crate).
impl Chaos {
    pub(crate) fn note_read_error(&self) {
        self.read_errors.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_short_read(&self) {
        self.short_reads.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_write_error(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_corrupt_write(&self) {
        self.corrupt_writes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn per_site_streams_are_interleaving_independent() {
        let plan = FaultPlan {
            seed: 99,
            p_delay: 0.5,
            delay: Duration::from_millis(0),
            delay_site_prefixes: vec!["serve.".into()],
            ..FaultPlan::default()
        };
        // Run A: site draws interleaved one way.
        let a = Chaos::new(plan.clone());
        for _ in 0..50 {
            a.strike("serve.shard.0");
            a.strike("serve.shard.1");
        }
        // Run B: the same per-site strike counts, opposite global order.
        let b = Chaos::new(plan);
        for _ in 0..50 {
            b.strike("serve.shard.1");
        }
        for _ in 0..50 {
            b.strike("serve.shard.0");
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.stats().delays, b.stats().delays);
    }

    #[test]
    fn digest_differs_across_seeds() {
        let mk = |seed| {
            let plan = FaultPlan {
                seed,
                p_delay: 0.5,
                delay: Duration::from_millis(0),
                delay_site_prefixes: vec!["serve.".into()],
                ..FaultPlan::default()
            };
            let c = Chaos::new(plan);
            for _ in 0..20 {
                c.strike("serve.shard.0");
            }
            c.digest()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn panic_ordinals_are_exact() {
        let chaos = Chaos::new(FaultPlan {
            seed: 1,
            panic_sites: vec!["x".into()],
            panic_on: vec![2, 3],
            ..FaultPlan::default()
        });
        chaos.strike("x"); // #1 clean
        for expected in 2..=3u64 {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| chaos.strike("x")))
                .unwrap_err();
            let msg = err.downcast_ref::<String>().unwrap();
            assert!(msg.contains(&format!("#{expected}")), "{msg}");
        }
        chaos.strike("x"); // #4 clean
        assert_eq!(chaos.stats().panics, 2);
        // Panics at unlisted sites never fire.
        let other = Chaos::new(FaultPlan {
            seed: 1,
            panic_sites: vec!["x".into()],
            panic_on: vec![1],
            ..FaultPlan::default()
        });
        other.strike("y");
        assert_eq!(other.stats().panics, 0);
    }
}
