//! The naive variable-length N-gram model — §IV-A of the paper.
//!
//! For a user who has issued `i−1` queries, the `i`-gram model is selected
//! and the **entire** context must match a trained state. Training states are
//! the session *prefix* contexts of §V-A.5 ("Aggregating Training Contexts"):
//! from `[q1..q5]` with frequency 10 come the states `[q1]`, `[q1,q2]`,
//! `[q1,q2,q3]`, `[q1..q4]`, each predicting its following query with support
//! 10. Sticking to the maximum-length context is what gives this model its
//! slightly higher precision and its catastrophic coverage decay (Fig 11).

use crate::model::{Recommender, SequenceScorer, WeightedSessions};
use sqp_common::mem::HASH_ENTRY_OVERHEAD;
use sqp_common::topk::Scored;
use sqp_common::{Counter, FxHashMap, QueryId, QuerySeq};

/// Variable-length N-gram model over full prefix contexts.
pub struct NGram {
    /// state (full prefix context) → ranked continuations.
    /// `pub(crate)` so [`crate::persist`] can round-trip the state table.
    pub(crate) states: FxHashMap<QuerySeq, Box<[(QueryId, u64)]>>,
    /// Largest trained context length (= N−1 of the largest N-gram).
    pub(crate) max_order: usize,
}

impl NGram {
    /// Train the family of N-gram models (one per context length) in one pass.
    pub fn train(sessions: &WeightedSessions) -> Self {
        let mut counts: FxHashMap<QuerySeq, Counter<QueryId>> = FxHashMap::default();
        let mut max_order = 0;
        for (s, f) in sessions {
            for i in 1..s.len() {
                let ctx: QuerySeq = s[..i].into();
                max_order = max_order.max(i);
                counts.entry(ctx).or_default().add(s[i], *f);
            }
        }
        let states = counts
            .into_iter()
            .map(|(ctx, c)| (ctx, c.sorted_desc().into_boxed_slice()))
            .collect();
        NGram { states, max_order }
    }

    /// Ranked continuations of an exact state (empty when untrained).
    pub fn continuations(&self, context: &[QueryId]) -> &[(QueryId, u64)] {
        self.states.get(context).map(|b| b.as_ref()).unwrap_or(&[])
    }

    /// Whether `context` is a trained state (Table VI reason 4 checks this).
    pub fn has_state(&self, context: &[QueryId]) -> bool {
        self.states.contains_key(context)
    }

    /// Number of trained states across all orders.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Largest trained context length.
    pub fn max_order(&self) -> usize {
        self.max_order
    }
}

impl Recommender for NGram {
    fn name(&self) -> &str {
        "N-gram"
    }

    fn recommend(&self, context: &[QueryId], k: usize) -> Vec<Scored> {
        if context.is_empty() {
            return Vec::new();
        }
        self.continuations(context)
            .iter()
            .take(k)
            .map(|&(q, c)| Scored::new(q, c as f64))
            .collect()
    }

    fn covers(&self, context: &[QueryId]) -> bool {
        !context.is_empty() && self.has_state(context)
    }

    fn memory_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for (ctx, list) in &self.states {
            bytes += ctx.len() * std::mem::size_of::<QueryId>();
            bytes += list.len() * std::mem::size_of::<(QueryId, u64)>();
            bytes += std::mem::size_of::<QuerySeq>()
                + std::mem::size_of::<Box<[(QueryId, u64)]>>()
                + HASH_ENTRY_OVERHEAD;
        }
        bytes
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl SequenceScorer for NGram {
    fn sequence_log10_prob(&self, seq: &[QueryId]) -> f64 {
        let mut lp = 0.0;
        for i in 1..seq.len() {
            let list = self.continuations(&seq[..i]);
            let total: u64 = list.iter().map(|(_, c)| c).sum();
            let hit = list.iter().find(|(q, _)| *q == seq[i]).map(|(_, c)| *c);
            match (hit, total) {
                (Some(c), t) if t > 0 => lp += (c as f64 / t as f64).log10(),
                // Untrained state or unseen continuation: the naive N-gram
                // simply has no estimate; charge a floor so log-loss stays
                // finite and comparable.
                _ => lp += (1e-9f64).log10(),
            }
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    fn model() -> NGram {
        NGram::train(&[
            (seq(&[0, 1, 2]), 6), // states [0]→1, [0,1]→2
            (seq(&[0, 2]), 2),    // state [0]→2
            (seq(&[1, 2, 3, 4]), 1),
        ])
    }

    #[test]
    fn prefix_states_only() {
        let m = model();
        // [0] trained with both continuations.
        assert_eq!(
            m.continuations(&seq(&[0])),
            &[(QueryId(1), 6), (QueryId(2), 2)]
        );
        // [1] appears mid-session in [0,1,2] but IS a prefix of [1,2,3,4].
        assert_eq!(m.continuations(&seq(&[1])), &[(QueryId(2), 1)]);
        // [1,2] is a prefix state of the long session.
        assert_eq!(m.continuations(&seq(&[1, 2])), &[(QueryId(3), 1)]);
        // But [2] alone is never a prefix.
        assert!(!m.has_state(&seq(&[2])));
    }

    #[test]
    fn full_context_must_match() {
        let m = model();
        // The user context [5,0] is not a trained state even though [0] is:
        // the naive model "sticks to the maximum length context".
        assert!(m.recommend(&seq(&[5, 0]), 5).is_empty());
        assert!(!m.covers(&seq(&[5, 0])));
        // Exact state matches work at any order.
        assert_eq!(m.recommend(&seq(&[0, 1]), 5)[0].query, QueryId(2));
        assert_eq!(m.recommend(&seq(&[1, 2, 3]), 5)[0].query, QueryId(4));
    }

    #[test]
    fn max_order_reported() {
        assert_eq!(model().max_order(), 3);
        assert_eq!(model().state_count(), 5); // [0],[1],[0,1],[1,2],[1,2,3]
    }

    #[test]
    fn empty_context_uncovered() {
        let m = model();
        assert!(m.recommend(&[], 5).is_empty());
        assert!(!m.covers(&[]));
    }

    #[test]
    fn sequence_log_prob() {
        let m = model();
        // P(1|[0]) = 6/8, P(2|[0,1]) = 1.
        let lp = m.sequence_log10_prob(&seq(&[0, 1, 2]));
        assert!((lp - (0.75f64).log10()).abs() < 1e-12);
        // Unknown transitions hit the floor.
        let lp2 = m.sequence_log10_prob(&seq(&[2, 0]));
        assert!(lp2 <= (1e-9f64).log10() + 1e-9);
    }

    #[test]
    fn respects_k() {
        let m = model();
        assert_eq!(m.recommend(&seq(&[0]), 1).len(), 1);
        assert_eq!(m.recommend(&seq(&[0]), 10).len(), 2);
    }
}
