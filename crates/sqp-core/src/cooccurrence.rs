//! The Co-occurrence pair-wise baseline.
//!
//! §V-B of the paper: *"Given a test query q, this method computes a ranked
//! list of queries that co-occurs with q in the training set"* — the approach
//! of Huang et al. for real-time term suggestion. Order inside the session is
//! ignored, which buys this baseline the best raw coverage (Fig 10) at the
//! cost of the worst accuracy (Fig 8).

use crate::model::{Recommender, WeightedSessions};
use sqp_common::mem::HASH_ENTRY_OVERHEAD;
use sqp_common::topk::Scored;
use sqp_common::{Counter, FxHashMap, QueryId};

/// Co-occurrence model: `q → queries sharing a session with q`, ranked.
pub struct Cooccurrence {
    /// `pub(crate)` so [`crate::persist`] can round-trip the count table.
    pub(crate) lists: FxHashMap<QueryId, Box<[(QueryId, u64)]>>,
}

impl Cooccurrence {
    /// Count all ordered position pairs `(s[i], s[j])`, `i ≠ j`, of distinct
    /// queries within each session, weighted by session frequency. Both
    /// directions are counted, so lookups are symmetric.
    pub fn train(sessions: &WeightedSessions) -> Self {
        let mut counts: FxHashMap<QueryId, Counter<QueryId>> = FxHashMap::default();
        for (s, f) in sessions {
            for i in 0..s.len() {
                for j in 0..s.len() {
                    if i != j && s[i] != s[j] {
                        counts.entry(s[i]).or_default().add(s[j], *f);
                    }
                }
            }
        }
        let lists = counts
            .into_iter()
            .map(|(q, c)| (q, c.sorted_desc().into_boxed_slice()))
            .collect();
        Cooccurrence { lists }
    }

    /// Ranked co-occurring queries of `q` (empty when unknown).
    pub fn cooccurring(&self, q: QueryId) -> &[(QueryId, u64)] {
        self.lists.get(&q).map(|b| b.as_ref()).unwrap_or(&[])
    }
}

impl Recommender for Cooccurrence {
    fn name(&self) -> &str {
        "Co-occ."
    }

    fn recommend(&self, context: &[QueryId], k: usize) -> Vec<Scored> {
        let Some(&last) = context.last() else {
            return Vec::new();
        };
        self.cooccurring(last)
            .iter()
            .take(k)
            .map(|&(q, c)| Scored::new(q, c as f64))
            .collect()
    }

    fn covers(&self, context: &[QueryId]) -> bool {
        context
            .last()
            .is_some_and(|q| !self.cooccurring(*q).is_empty())
    }

    fn memory_bytes(&self) -> usize {
        let shallow = self.lists.len()
            * (std::mem::size_of::<QueryId>()
                + std::mem::size_of::<Box<[(QueryId, u64)]>>()
                + HASH_ENTRY_OVERHEAD);
        let deep: usize = self
            .lists
            .values()
            .map(|v| v.len() * std::mem::size_of::<(QueryId, u64)>())
            .sum();
        shallow + deep
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    fn model() -> Cooccurrence {
        Cooccurrence::train(&[
            (seq(&[0, 1, 2]), 2), // pairs: 0-1, 0-2, 1-2 (both directions)
            (seq(&[2, 0]), 1),    // 2-0
            (seq(&[5]), 4),       // no pairs
        ])
    }

    #[test]
    fn symmetric_counts() {
        let m = model();
        let zero: Vec<_> = m.cooccurring(QueryId(0)).to_vec();
        // 0 with 1 (weight 2), 0 with 2 (weight 2 + 1 = 3).
        assert_eq!(zero, vec![(QueryId(2), 3), (QueryId(1), 2)]);
        let two: Vec<_> = m.cooccurring(QueryId(2)).to_vec();
        assert_eq!(two, vec![(QueryId(0), 3), (QueryId(1), 2)]);
    }

    #[test]
    fn order_is_ignored() {
        // 2 appears only at the last position in session [0,1,2] — Adjacency
        // cannot predict from it, but Co-occurrence can.
        let m = model();
        assert!(m.covers(&seq(&[2])));
        let recs = m.recommend(&seq(&[2]), 5);
        assert_eq!(recs[0].query, QueryId(0));
    }

    #[test]
    fn repeated_queries_do_not_self_pair() {
        let m = Cooccurrence::train(&[(seq(&[7, 7]), 3)]);
        assert!(m.cooccurring(QueryId(7)).is_empty());
    }

    #[test]
    fn singleton_sessions_contribute_nothing() {
        let m = model();
        assert!(m.recommend(&seq(&[5]), 5).is_empty());
        assert!(!m.covers(&seq(&[5])));
    }

    #[test]
    fn recommend_respects_k_and_empty_context() {
        let m = model();
        assert_eq!(m.recommend(&seq(&[0]), 1).len(), 1);
        assert!(m.recommend(&[], 3).is_empty());
    }

    #[test]
    fn coverage_superset_of_adjacency() {
        // Structural property from the paper's Table VI: anything Adjacency
        // covers, Co-occurrence covers too.
        let sessions = vec![
            (seq(&[0, 1, 2]), 5),
            (seq(&[3, 4]), 2),
            (seq(&[9]), 1),
            (seq(&[4, 3]), 1),
        ];
        let adj = crate::adjacency::Adjacency::train(&sessions);
        let co = Cooccurrence::train(&sessions);
        for q in 0..10u32 {
            let ctx = seq(&[q]);
            if adj.covers(&ctx) {
                assert!(co.covers(&ctx), "q{q} covered by Adj but not Co-occ");
            }
        }
    }
}
