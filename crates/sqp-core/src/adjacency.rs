//! The Adjacency pair-wise baseline.
//!
//! §V-B of the paper: *"Given a test query q, this method computes a ranked
//! list of queries that immediately follows q in the training set"* — the
//! approach of Jones et al. for query substitution. Only the most recent
//! query of the context is consulted; all earlier history is discarded.

use crate::model::{Recommender, WeightedSessions};
use sqp_common::mem::HASH_ENTRY_OVERHEAD;
use sqp_common::topk::Scored;
use sqp_common::{Counter, FxHashMap, QueryId};

/// Adjacency model: `q → ranked successors of q`.
pub struct Adjacency {
    /// Successor lists sorted by descending count, ties by ascending id.
    /// `pub(crate)` so [`crate::persist`] can round-trip the count table.
    pub(crate) lists: FxHashMap<QueryId, Box<[(QueryId, u64)]>>,
}

impl Adjacency {
    /// Count adjacent pairs at every session position.
    pub fn train(sessions: &WeightedSessions) -> Self {
        let mut counts: FxHashMap<QueryId, Counter<QueryId>> = FxHashMap::default();
        for (s, f) in sessions {
            for w in s.windows(2) {
                counts.entry(w[0]).or_default().add(w[1], *f);
            }
        }
        let lists = counts
            .into_iter()
            .map(|(q, c)| (q, c.sorted_desc().into_boxed_slice()))
            .collect();
        Adjacency { lists }
    }

    /// Ranked successors of `q` (empty slice when unknown).
    pub fn successors(&self, q: QueryId) -> &[(QueryId, u64)] {
        self.lists.get(&q).map(|b| b.as_ref()).unwrap_or(&[])
    }
}

impl Recommender for Adjacency {
    fn name(&self) -> &str {
        "Adj."
    }

    fn recommend(&self, context: &[QueryId], k: usize) -> Vec<Scored> {
        let Some(&last) = context.last() else {
            return Vec::new();
        };
        self.successors(last)
            .iter()
            .take(k)
            .map(|&(q, c)| Scored::new(q, c as f64))
            .collect()
    }

    fn covers(&self, context: &[QueryId]) -> bool {
        context
            .last()
            .is_some_and(|q| !self.successors(*q).is_empty())
    }

    fn memory_bytes(&self) -> usize {
        let shallow = self.lists.len()
            * (std::mem::size_of::<QueryId>()
                + std::mem::size_of::<Box<[(QueryId, u64)]>>()
                + HASH_ENTRY_OVERHEAD);
        let deep: usize = self
            .lists
            .values()
            .map(|v| v.len() * std::mem::size_of::<(QueryId, u64)>())
            .sum();
        shallow + deep
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    fn model() -> Adjacency {
        Adjacency::train(&[
            (seq(&[0, 1, 2]), 5), // 0→1, 1→2
            (seq(&[0, 2]), 3),    // 0→2
            (seq(&[3]), 9),       // no pairs
        ])
    }

    #[test]
    fn counts_adjacent_pairs_weighted() {
        let m = model();
        assert_eq!(
            m.successors(QueryId(0)),
            &[(QueryId(1), 5), (QueryId(2), 3)]
        );
        assert_eq!(m.successors(QueryId(1)), &[(QueryId(2), 5)]);
        assert!(m.successors(QueryId(2)).is_empty());
        assert!(m.successors(QueryId(3)).is_empty());
    }

    #[test]
    fn recommend_uses_last_query_only() {
        let m = model();
        let recs = m.recommend(&seq(&[9, 9, 0]), 5);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].query, QueryId(1));
        assert_eq!(recs[1].query, QueryId(2));
    }

    #[test]
    fn truncates_to_k() {
        let m = model();
        assert_eq!(m.recommend(&seq(&[0]), 1).len(), 1);
    }

    #[test]
    fn uncovered_cases() {
        let m = model();
        assert!(m.recommend(&seq(&[2]), 5).is_empty()); // only at last position
        assert!(m.recommend(&seq(&[3]), 5).is_empty()); // singleton sessions
        assert!(m.recommend(&seq(&[42]), 5).is_empty()); // unknown
        assert!(m.recommend(&[], 5).is_empty());
        assert!(!m.covers(&seq(&[2])));
        assert!(m.covers(&seq(&[1])));
    }

    #[test]
    fn ties_break_by_ascending_id() {
        let m = Adjacency::train(&[(seq(&[0, 5]), 2), (seq(&[0, 3]), 2)]);
        assert_eq!(
            m.successors(QueryId(0)),
            &[(QueryId(3), 2), (QueryId(5), 2)]
        );
    }

    #[test]
    fn memory_grows_with_vocabulary() {
        let small = model();
        let big = Adjacency::train(
            &(0..200u32)
                .map(|i| (seq(&[i, i + 1000]), 1))
                .collect::<Vec<_>>(),
        );
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
