//! The Mixture Variable Memory Markov model (MVMM) — §IV-C of the paper.
//!
//! Multiple VMM components (different ε and/or depth bounds D) are trained
//! independently — in parallel, as the paper notes the K models can be — and
//! combined at prediction time with weights
//!
//! `w(D,T) = N(d; 0, σ_D²)` (Eq. 4)
//!
//! where `d` is the edit distance between the live context and the PST state
//! the component matched, and the σ vector is learned offline by the Newton
//! iteration of `newton.rs` (Eq. 7–10). Escaped conditional probabilities
//! (Eq. 5–6) penalize partially matching components, which is precisely what
//! makes the mixture prefer components whose memory bound fits the context.

use crate::model::{Recommender, SequenceScorer, WeightedSessions};
use crate::newton::{fit_mixture_sigmas, FitConfig, FitOutcome};
use crate::vmm::{Vmm, VmmConfig};
use sqp_common::dist::levenshtein;
use sqp_common::math::gaussian_pdf;
use sqp_common::topk::Scored;
use sqp_common::{FxHashMap, QueryId, QuerySeq};

/// MVMM training parameters.
#[derive(Clone, Debug)]
pub struct MvmmConfig {
    /// The VMM components to mix.
    pub components: Vec<VmmConfig>,
    /// Newton-fit parameters for the mixture deviations.
    pub fit: FitConfig,
    /// Train components on parallel threads (one per component).
    pub parallel: bool,
}

impl Default for MvmmConfig {
    fn default() -> Self {
        Self::epsilon_sweep()
    }
}

impl MvmmConfig {
    /// The paper's §V-D headline mixture: 11 unbounded VMMs with
    /// ε ∈ {0.00, 0.01, …, 0.10}.
    pub fn epsilon_sweep() -> Self {
        Self {
            components: (0..=10)
                .map(|i| VmmConfig::with_epsilon(i as f64 * 0.01))
                .collect(),
            fit: FitConfig::default(),
            parallel: true,
        }
    }

    /// A depth mixture (the Table VII example mixes 2-bounded VMM(0.1) with
    /// 3-bounded VMM(0.2)).
    pub fn depth_mixture(specs: &[(usize, f64)]) -> Self {
        Self {
            components: specs
                .iter()
                .map(|&(d, e)| VmmConfig::bounded(d, e))
                .collect(),
            fit: FitConfig::default(),
            parallel: true,
        }
    }

    /// A small mixture for tests/benches.
    pub fn small() -> Self {
        Self {
            components: vec![
                VmmConfig::with_epsilon(0.0),
                VmmConfig::with_epsilon(0.05),
                VmmConfig::with_epsilon(0.1),
            ],
            fit: FitConfig {
                max_fit_sequences: 300,
                ..FitConfig::default()
            },
            parallel: false,
        }
    }
}

/// A trained MVMM.
pub struct Mvmm {
    components: Vec<Vmm>,
    sigmas: Vec<f64>,
    fit: FitOutcome,
}

impl Mvmm {
    /// Train all components and fit the mixture deviations.
    ///
    /// # Panics
    /// Panics when `cfg.components` is empty.
    pub fn train(sessions: &WeightedSessions, cfg: &MvmmConfig) -> Self {
        assert!(
            !cfg.components.is_empty(),
            "MVMM needs at least one component"
        );

        // Window counts depend only on `max_depth`, not on ε — count the
        // corpus once per distinct depth and train every component off the
        // shared trie (the default ε sweep counts once instead of 11×).
        let mut depths: Vec<Option<usize>> = Vec::new();
        for c in &cfg.components {
            if !depths.contains(&c.max_depth) {
                depths.push(c.max_depth);
            }
        }
        let counts: Vec<crate::counts::WindowCounts> = depths
            .iter()
            .map(|d| crate::counts::WindowCounts::build_with(sessions, *d, cfg.parallel))
            .collect();
        let counts_for = |c: &VmmConfig| {
            let i = depths.iter().position(|d| *d == c.max_depth).unwrap();
            &counts[i]
        };

        let components: Vec<Vmm> = if cfg.parallel && cfg.components.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = cfg
                    .components
                    .iter()
                    .map(|c| {
                        let shared = counts_for(c);
                        let cc = *c;
                        scope.spawn(move || Vmm::train_with_counts(shared, cc))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("component training panicked"))
                    .collect()
            })
        } else {
            cfg.components
                .iter()
                .map(|c| Vmm::train_with_counts(counts_for(c), *c))
                .collect()
        };

        // Select the fit corpus: the most frequent multi-query sessions.
        let mut multi: Vec<&(QuerySeq, u64)> =
            sessions.iter().filter(|(s, _)| s.len() >= 2).collect();
        multi.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        multi.truncate(cfg.fit.max_fit_sequences);
        let mass: u64 = multi.iter().map(|(_, f)| f).sum();

        let (mut p, mut a, mut d) = (Vec::new(), Vec::new(), Vec::new());
        for (s, f) in &multi {
            p.push(*f as f64 / mass.max(1) as f64);
            let ctx = &s[..s.len() - 1];
            let mut a_row = Vec::with_capacity(components.len());
            let mut d_row = Vec::with_capacity(components.len());
            for comp in &components {
                a_row.push(10f64.powf(comp.sequence_log10_prob_escaped(s)).max(1e-300));
                d_row.push(Self::disparity(comp, ctx));
            }
            a.push(a_row);
            d.push(d_row);
        }

        let fit = fit_mixture_sigmas(&p, &a, &d, &cfg.fit);
        Mvmm {
            sigmas: fit.sigmas.clone(),
            fit,
            components,
        }
    }

    /// Edit distance between the context and the state a component matched
    /// (the `d(T)` of Eq. 4); the root counts as the empty state.
    fn disparity(comp: &Vmm, ctx: &[QueryId]) -> f64 {
        match comp.match_state(ctx) {
            Some((idx, _)) => {
                let state = &comp.pst().node(idx).context;
                levenshtein(ctx, state) as f64
            }
            None => ctx.len() as f64,
        }
    }

    /// The trained components.
    pub fn components(&self) -> &[Vmm] {
        &self.components
    }

    /// Fitted mixture deviations (one per component).
    pub fn sigmas(&self) -> &[f64] {
        &self.sigmas
    }

    /// Diagnostics from the Newton fit.
    pub fn fit_outcome(&self) -> &FitOutcome {
        &self.fit
    }

    /// Normalized weights of the matched components for a context; `None` for
    /// unmatched components.
    pub fn component_weights(&self, ctx: &[QueryId]) -> Vec<Option<f64>> {
        let raw: Vec<Option<f64>> = self
            .components
            .iter()
            .zip(&self.sigmas)
            .map(|(comp, &sigma)| {
                comp.match_state(ctx).map(|(idx, _)| {
                    let state = &comp.pst().node(idx).context;
                    gaussian_pdf(levenshtein(ctx, state) as f64, sigma)
                })
            })
            .collect();
        let total: f64 = raw.iter().flatten().sum();
        if total <= 0.0 {
            return raw.iter().map(|w| w.map(|_| 0.0)).collect();
        }
        raw.iter().map(|w| w.map(|v| v / total)).collect()
    }

    /// Number of distinct states across all components, counting the shared
    /// root once — the size of the *merged* PST the paper deploys ("each node
    /// requires just 4 extra bits" to record its source models, §V-F.2).
    pub fn merged_state_count(&self) -> usize {
        let mut states: sqp_common::FxHashSet<&[QueryId]> = Default::default();
        for comp in &self.components {
            for node in comp.pst().iter() {
                states.insert(&node.context);
            }
        }
        states.len()
    }

    /// Approximate heap bytes of the merged single-PST deployment
    /// representation (Table VII): the union of states, each charged its
    /// largest per-component distribution plus a 2-byte source bitmask, plus
    /// one escape table (the largest component already subsumes the others).
    pub fn merged_memory_bytes(&self) -> usize {
        let mut per_state: FxHashMap<&[QueryId], usize> = FxHashMap::default();
        for comp in &self.components {
            for node in comp.pst().iter() {
                let cost = std::mem::size_of::<crate::pst::PstNode>()
                    + node.context.len() * std::mem::size_of::<QueryId>()
                    + node.dist.support() * std::mem::size_of::<u32>() // rank array
                    + std::mem::size_of_val(node.dist.raw_counts())
                    + std::mem::size_of::<(QueryId, u32)>() // child edge slot
                    + 2; // source-model bitmask (the paper's "4 extra bits", padded)
                let e = per_state.entry(&node.context).or_insert(0);
                *e = (*e).max(cost);
            }
        }
        let states: usize = per_state.values().sum();
        // One escape table serves the merged tree; the largest component's
        // table subsumes the bounded ones.
        let escape = self
            .components
            .iter()
            .map(|c| c.memory_bytes().saturating_sub(c.pst().heap_bytes()))
            .max()
            .unwrap_or(0);
        states + escape
    }
}

impl Recommender for Mvmm {
    fn name(&self) -> &str {
        "MVMM"
    }

    fn recommend(&self, context: &[QueryId], k: usize) -> Vec<Scored> {
        if k == 0 || context.is_empty() {
            return Vec::new();
        }
        let weights = self.component_weights(context);
        if weights.iter().all(Option::is_none) {
            return Vec::new();
        }

        // Candidate pool: the matched state's observed continuations from
        // every matched component.
        let mut candidates: sqp_common::FxHashSet<QueryId> = Default::default();
        for (comp, w) in self.components.iter().zip(&weights) {
            if w.is_some() {
                if let Some((idx, _)) = comp.match_state(context) {
                    for (q, _) in comp.pst().node(idx).dist.observed().take(k * 4) {
                        candidates.insert(q);
                    }
                }
            }
        }

        // Re-rank by the weighted escaped conditionals (§IV-C.3).
        let scored: Vec<Scored> = candidates
            .into_iter()
            .map(|q| {
                let mut score = 0.0;
                for (comp, w) in self.components.iter().zip(&weights) {
                    if let Some(w) = w {
                        score += w * comp.cond_prob_escaped(context, q);
                    }
                }
                Scored::new(q, score)
            })
            .collect();
        sqp_common::topk::top_k(scored, k)
    }

    fn covers(&self, context: &[QueryId]) -> bool {
        self.components.iter().any(|c| c.covers(context))
    }

    fn memory_bytes(&self) -> usize {
        self.merged_memory_bytes()
    }
}

impl SequenceScorer for Mvmm {
    fn sequence_log10_prob(&self, seq: &[QueryId]) -> f64 {
        if seq.len() < 2 {
            return 0.0;
        }
        let ctx = &seq[..seq.len() - 1];
        // Weights over ALL components (unmatched ⇒ disparity = |ctx|), per
        // Eq. (2)/(4).
        let raw: Vec<f64> = self
            .components
            .iter()
            .zip(&self.sigmas)
            .map(|(comp, &sigma)| gaussian_pdf(Self::disparity(comp, ctx), sigma))
            .collect();
        let total: f64 = raw.iter().sum();
        if total <= 0.0 {
            return -300.0;
        }
        let mix: f64 = self
            .components
            .iter()
            .zip(&raw)
            .map(|(comp, w)| (w / total) * 10f64.powf(comp.sequence_log10_prob_escaped(seq)))
            .sum();
        mix.max(1e-300).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::toy_corpus;
    use sqp_common::seq;

    fn toy_mvmm() -> Mvmm {
        Mvmm::train(&toy_corpus(), &MvmmConfig::small())
    }

    #[test]
    fn trains_all_components_and_sigmas() {
        let m = toy_mvmm();
        assert_eq!(m.components().len(), 3);
        assert_eq!(m.sigmas().len(), 3);
        for &s in m.sigmas() {
            assert!(s > 0.0 && s.is_finite());
        }
    }

    #[test]
    fn recommendation_agrees_with_components_on_exact_states() {
        let m = toy_mvmm();
        // All components agree: after [q1,q0] recommend q1 (P = 0.7).
        let recs = m.recommend(&seq(&[1, 0]), 2);
        assert_eq!(recs[0].query, QueryId(1));
        // After [q0] recommend q0 (P = 0.9).
        assert_eq!(m.recommend(&seq(&[0]), 1)[0].query, QueryId(0));
    }

    #[test]
    fn weights_are_normalized_over_matched_components() {
        let m = toy_mvmm();
        let w = m.component_weights(&seq(&[1, 0]));
        let total: f64 = w.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn coverage_is_union_of_components() {
        let m = toy_mvmm();
        assert!(m.covers(&seq(&[0])));
        assert!(m.covers(&seq(&[42, 1]))); // partial match on last query
        assert!(!m.covers(&seq(&[42]))); // unknown last query
        assert!(m.recommend(&seq(&[42]), 5).is_empty());
    }

    #[test]
    fn parallel_and_serial_training_agree() {
        let mut cfg = MvmmConfig::small();
        cfg.parallel = false;
        let serial = Mvmm::train(&toy_corpus(), &cfg);
        cfg.parallel = true;
        let parallel = Mvmm::train(&toy_corpus(), &cfg);
        assert_eq!(serial.sigmas(), parallel.sigmas());
        let a = serial.recommend(&seq(&[1, 0]), 5);
        let b = parallel.recommend(&seq(&[1, 0]), 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query, y.query);
            assert!((x.score - y.score).abs() < 1e-15);
        }
    }

    #[test]
    fn merged_state_count_bounds() {
        let m = toy_mvmm();
        let max_single = m.components().iter().map(|c| c.node_count()).max().unwrap();
        let sum: usize = m.components().iter().map(|c| c.node_count()).sum();
        let merged = m.merged_state_count();
        assert!(merged >= max_single);
        assert!(merged <= sum);
    }

    #[test]
    fn merged_memory_well_below_component_sum() {
        // Table VII: the MVMM "only requires marginally more memory compared
        // to the standard VMM models".
        let m = toy_mvmm();
        let sum: usize = m.components().iter().map(|c| c.memory_bytes()).sum();
        assert!(m.memory_bytes() < sum);
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn sequence_scoring_is_a_proper_mixture() {
        let m = toy_mvmm();
        let s = seq(&[1, 0, 1]);
        let mix = m.sequence_log10_prob(&s);
        // The mixture probability lies within the range of the component
        // probabilities (convex combination).
        let comp_lps: Vec<f64> = m
            .components()
            .iter()
            .map(|c| c.sequence_log10_prob_escaped(&s))
            .collect();
        let lo = comp_lps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = comp_lps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            mix >= lo - 1e-9 && mix <= hi + 1e-9,
            "{lo} <= {mix} <= {hi}"
        );
    }

    #[test]
    fn respects_k_and_sorted_scores() {
        let m = toy_mvmm();
        let recs = m.recommend(&seq(&[0]), 1);
        assert_eq!(recs.len(), 1);
        let recs2 = m.recommend(&seq(&[1]), 2);
        for w in recs2.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_component_list_panics() {
        let cfg = MvmmConfig {
            components: vec![],
            fit: FitConfig::default(),
            parallel: false,
        };
        Mvmm::train(&toy_corpus(), &cfg);
    }

    #[test]
    fn depth_mixture_config() {
        let cfg = MvmmConfig::depth_mixture(&[(2, 0.1), (3, 0.2)]);
        assert_eq!(cfg.components.len(), 2);
        assert_eq!(cfg.components[0].max_depth, Some(2));
        let m = Mvmm::train(&toy_corpus(), &cfg);
        assert!(m.merged_state_count() >= 1);
    }
}
