//! Newton iteration for the MVMM mixture parameters — §IV-C.3 of the paper.
//!
//! The mixture weight of component D is a zero-mean Gaussian of the context
//! disparity `d` with learnable deviation σ_D (Eq. 4). The σ vector is chosen
//! to minimize KL(P ‖ P̂_w) over training sequences, i.e. to maximize
//!
//! f(σ) = Σ_T  P(X_T) · log10 Σ_D  g(σ_D; d_{T,D}) · P̂_D(X_T)      (Eq. 9)
//!
//! The paper prescribes the classical Newton step σ ← σ − H⁻¹∇f (Eq. 10);
//! we implement it with an analytic gradient/Hessian, projection onto
//! [σ_min, σ_max], and a backtracking gradient-ascent fallback for steps the
//! quadratic model gets wrong (Newton on a non-concave region can point
//! downhill).

#![allow(clippy::needless_range_loop)] // dense matrix math reads best indexed

use sqp_common::math::{gaussian_pdf, gaussian_pdf_d2sigma, gaussian_pdf_dsigma};

/// Optimizer configuration.
#[derive(Clone, Copy, Debug)]
pub struct FitConfig {
    /// Maximum Newton/gradient iterations.
    pub max_iters: usize,
    /// Convergence threshold on objective improvement.
    pub tol: f64,
    /// Initial σ for every component.
    pub sigma_init: f64,
    /// Lower projection bound (σ must stay positive).
    pub sigma_min: f64,
    /// Upper projection bound.
    pub sigma_max: f64,
    /// Cap on the number of training sequences used for the fit.
    pub max_fit_sequences: usize,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            max_iters: 60,
            tol: 1e-10,
            sigma_init: 1.0,
            sigma_min: 0.05,
            sigma_max: 64.0,
            max_fit_sequences: 2_000,
        }
    }
}

/// Result of the σ fit.
#[derive(Clone, Debug)]
pub struct FitOutcome {
    /// Fitted deviations, one per mixture component.
    pub sigmas: Vec<f64>,
    /// Final objective value (Eq. 9, base-10 logs).
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// True when the improvement fell below tolerance before `max_iters`.
    pub converged: bool,
    /// How many iterations accepted the pure Newton step.
    pub newton_steps: usize,
}

const LN10: f64 = std::f64::consts::LN_10;

fn objective(p: &[f64], a: &[Vec<f64>], d: &[Vec<f64>], sigma: &[f64]) -> f64 {
    let mut f = 0.0;
    for t in 0..p.len() {
        let m: f64 = (0..sigma.len())
            .map(|k| a[t][k] * gaussian_pdf(d[t][k], sigma[k]))
            .sum();
        f += p[t] * m.max(1e-300).log10();
    }
    f
}

fn gradient(p: &[f64], a: &[Vec<f64>], d: &[Vec<f64>], sigma: &[f64]) -> Vec<f64> {
    let kn = sigma.len();
    let mut g = vec![0.0; kn];
    for t in 0..p.len() {
        let m: f64 = (0..kn)
            .map(|k| a[t][k] * gaussian_pdf(d[t][k], sigma[k]))
            .sum::<f64>()
            .max(1e-300);
        for k in 0..kn {
            g[k] += p[t] * a[t][k] * gaussian_pdf_dsigma(d[t][k], sigma[k]) / (m * LN10);
        }
    }
    g
}

fn hessian(p: &[f64], a: &[Vec<f64>], d: &[Vec<f64>], sigma: &[f64]) -> Vec<Vec<f64>> {
    let kn = sigma.len();
    let mut h = vec![vec![0.0; kn]; kn];
    for t in 0..p.len() {
        let g_vals: Vec<f64> = (0..kn)
            .map(|k| a[t][k] * gaussian_pdf_dsigma(d[t][k], sigma[k]))
            .collect();
        let m: f64 = (0..kn)
            .map(|k| a[t][k] * gaussian_pdf(d[t][k], sigma[k]))
            .sum::<f64>()
            .max(1e-300);
        for k in 0..kn {
            for l in 0..kn {
                let mut v = -g_vals[k] * g_vals[l] / (m * m);
                if k == l {
                    v += a[t][k] * gaussian_pdf_d2sigma(d[t][k], sigma[k]) / m;
                }
                h[k][l] += p[t] * v / LN10;
            }
        }
    }
    h
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` for (near-)singular systems.
pub fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())?;
        if pivot_val < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate below.
        for r in col + 1..n {
            let factor = a[r][col] / a[col][col];
            for c in col..n {
                a[r][c] -= factor * a[col][c];
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in row + 1..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

fn project(sigma: &mut [f64], cfg: &FitConfig) {
    for s in sigma {
        *s = s.clamp(cfg.sigma_min, cfg.sigma_max);
    }
}

/// Fit the mixture deviations.
///
/// * `p[t]` — empirical probability of training sequence t (normalized);
/// * `a[t][k]` — generative probability `P̂_k(X_t)` of sequence t under
///   component k (Eq. 3, with escape);
/// * `d[t][k]` — context disparity (edit distance to the matched state).
pub fn fit_mixture_sigmas(
    p: &[f64],
    a: &[Vec<f64>],
    d: &[Vec<f64>],
    cfg: &FitConfig,
) -> FitOutcome {
    let kn = a.first().map(|row| row.len()).unwrap_or(0);
    let mut sigma = vec![cfg.sigma_init; kn];
    project(&mut sigma, cfg);
    if p.is_empty() || kn == 0 {
        return FitOutcome {
            objective: 0.0,
            sigmas: sigma,
            iterations: 0,
            converged: true,
            newton_steps: 0,
        };
    }

    let mut f = objective(p, a, d, &sigma);
    let mut newton_steps = 0;
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        let g = gradient(p, a, d, &sigma);
        let h = hessian(p, a, d, &sigma);

        // Newton candidate: σ − H⁻¹ ∇f (Eq. 10).
        let mut improved = false;
        if let Some(step) = solve_linear(h, g.clone()) {
            let mut cand: Vec<f64> = sigma.iter().zip(&step).map(|(s, dx)| s - dx).collect();
            project(&mut cand, cfg);
            let fc = objective(p, a, d, &cand);
            if fc > f {
                if (fc - f).abs() < cfg.tol {
                    sigma = cand;
                    f = fc;
                    converged = true;
                    newton_steps += 1;
                    break;
                }
                sigma = cand;
                f = fc;
                newton_steps += 1;
                improved = true;
            }
        }

        if !improved {
            // Backtracking gradient ascent.
            let mut eta = 1.0;
            let mut accepted = false;
            for _ in 0..30 {
                let mut cand: Vec<f64> = sigma.iter().zip(&g).map(|(s, gi)| s + eta * gi).collect();
                project(&mut cand, cfg);
                let fc = objective(p, a, d, &cand);
                if fc > f + 1e-15 {
                    if (fc - f).abs() < cfg.tol {
                        converged = true;
                    }
                    sigma = cand;
                    f = fc;
                    accepted = true;
                    break;
                }
                eta *= 0.5;
            }
            if !accepted {
                converged = true; // no ascent direction improves: at an optimum
                break;
            }
            if converged {
                break;
            }
        }
    }

    FitOutcome {
        sigmas: sigma,
        objective: f,
        iterations,
        converged,
        newton_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_linear_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear(a, vec![3.0, -2.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_general() {
        // [2 1; 1 3] x = [5; 10] → x = [1; 3]… check: 2+3=5 ✓, 1+9=10 ✓.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_linear(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_linear_needs_pivoting() {
        // Zero on the initial pivot position.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear(a, vec![2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn fit_recovers_preference_for_matching_component() {
        // Two components: component 0 always matches exactly (d = 0) with
        // high sequence probability; component 1 always has disparity 3 and
        // lower probability. The fit should find σ that favour component 0:
        // small σ0 concentrates mass at d = 0 where its evidence lives.
        let n = 40;
        let p = vec![1.0 / n as f64; n];
        let a: Vec<Vec<f64>> = (0..n).map(|_| vec![0.4, 0.05]).collect();
        let d: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0, 3.0]).collect();
        let out = fit_mixture_sigmas(&p, &a, &d, &FitConfig::default());
        assert!(out.iterations >= 1);
        // At d = 0 the Gaussian pdf grows as σ shrinks: expect σ0 pinned low.
        assert!(
            out.sigmas[0] < out.sigmas[1] + 1e-9,
            "sigmas = {:?}",
            out.sigmas
        );
        // Objective must have improved over the starting point.
        let start = vec![FitConfig::default().sigma_init; 2];
        assert!(out.objective >= objective(&p, &a, &d, &start) - 1e-12);
    }

    #[test]
    fn fit_is_deterministic() {
        let p = vec![0.5, 0.5];
        let a = vec![vec![0.3, 0.2], vec![0.1, 0.4]];
        let d = vec![vec![0.0, 1.0], vec![2.0, 0.0]];
        let o1 = fit_mixture_sigmas(&p, &a, &d, &FitConfig::default());
        let o2 = fit_mixture_sigmas(&p, &a, &d, &FitConfig::default());
        assert_eq!(o1.sigmas, o2.sigmas);
        assert_eq!(o1.objective, o2.objective);
    }

    #[test]
    fn fit_respects_bounds() {
        let cfg = FitConfig {
            sigma_min: 0.5,
            sigma_max: 2.0,
            ..FitConfig::default()
        };
        let p = vec![1.0];
        let a = vec![vec![0.9]];
        let d = vec![vec![0.0]];
        let out = fit_mixture_sigmas(&p, &a, &d, &cfg);
        assert!(out.sigmas[0] >= 0.5 - 1e-12);
        assert!(out.sigmas[0] <= 2.0 + 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let out = fit_mixture_sigmas(&[], &[], &[], &FitConfig::default());
        assert!(out.converged);
        assert!(out.sigmas.is_empty());
    }

    #[test]
    fn objective_monotone_over_iterations() {
        // Indirect check: running with max_iters = 1 can never beat
        // max_iters = 60.
        let n = 20;
        let p = vec![1.0 / n as f64; n];
        let a: Vec<Vec<f64>> = (0..n)
            .map(|t| vec![0.1 + 0.01 * (t % 5) as f64, 0.3, 0.05])
            .collect();
        let d: Vec<Vec<f64>> = (0..n).map(|t| vec![(t % 3) as f64, 1.0, 2.0]).collect();
        let short = fit_mixture_sigmas(
            &p,
            &a,
            &d,
            &FitConfig {
                max_iters: 1,
                ..FitConfig::default()
            },
        );
        let long = fit_mixture_sigmas(&p, &a, &d, &FitConfig::default());
        assert!(long.objective >= short.objective - 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let p = vec![0.6, 0.4];
        let a = vec![vec![0.3, 0.2], vec![0.15, 0.4]];
        let d = vec![vec![0.0, 2.0], vec![1.0, 0.0]];
        let sigma = vec![0.8, 1.3];
        let g = gradient(&p, &a, &d, &sigma);
        let h = 1e-6;
        for k in 0..2 {
            let mut up = sigma.clone();
            up[k] += h;
            let mut down = sigma.clone();
            down[k] -= h;
            let fd = (objective(&p, &a, &d, &up) - objective(&p, &a, &d, &down)) / (2.0 * h);
            assert!(
                (g[k] - fd).abs() < 1e-6,
                "component {k}: {} vs {}",
                g[k],
                fd
            );
        }
    }

    #[test]
    fn hessian_matches_finite_differences() {
        let p = vec![0.6, 0.4];
        let a = vec![vec![0.3, 0.2], vec![0.15, 0.4]];
        let d = vec![vec![0.0, 2.0], vec![1.0, 0.0]];
        let sigma = vec![0.8, 1.3];
        let hess = hessian(&p, &a, &d, &sigma);
        let h = 1e-5;
        for k in 0..2 {
            for l in 0..2 {
                let mut up = sigma.clone();
                up[l] += h;
                let mut down = sigma.clone();
                down[l] -= h;
                let fd =
                    (gradient(&p, &a, &d, &up)[k] - gradient(&p, &a, &d, &down)[k]) / (2.0 * h);
                assert!(
                    (hess[k][l] - fd).abs() < 1e-5,
                    "H[{k}][{l}]: {} vs {}",
                    hess[k][l],
                    fd
                );
            }
        }
    }
}
