//! The Prediction Suffix Tree (PST) data structure.
//!
//! Nodes are labelled with contexts (query sequences read chronologically);
//! the parent of state `[q1,…,ql]` is its *suffix* `[q2,…,ql]` — walking down
//! from the root prepends ever-older queries. Longest-suffix lookup is
//! O(D·log m), the paper's prediction-time bound with a binary-searched
//! sorted child slice per node (no hashing, no allocation on the serve
//! path).

use sqp_common::topk::Scored;
use sqp_common::{QueryId, QuerySeq};

/// A smoothed next-query distribution attached to a PST node.
///
/// Smoothing follows §IV-B.1(c): each unobserved query receives the constant
/// 1/|Q|, then the whole distribution is renormalized. With m observed
/// queries out of |Q| the normalizer is `Z = 1 + (|Q|−m)/|Q|`; when every
/// query is observed (the toy example) Z = 1 and the ML estimates survive
/// untouched.
///
/// Layout: raw ML counts are stored **sorted by query id**, so `prob` /
/// `ml_prob` are O(log m) binary searches; a parallel rank array keeps the
/// best-first order for top-k without re-sorting at query time.
#[derive(Clone, Debug)]
pub struct NodeDist {
    /// Raw ML counts, ascending by query id.
    by_id: Box<[(QueryId, u64)]>,
    /// Indexes into `by_id`, best first (descending smoothed probability,
    /// ties by ascending id).
    rank: Box<[u32]>,
    /// Total observed continuation mass.
    total: u64,
    /// Smoothing normalizer Z.
    z: f64,
    /// Smoothed probability of each individual unobserved query.
    unobserved_prob: f64,
}

impl NodeDist {
    /// Build from ML counts in any order, with universe size `n_queries`.
    pub fn from_counts(counts: Vec<(QueryId, u64)>, n_queries: usize) -> Self {
        let mut by_id = counts;
        by_id.sort_unstable_by_key(|&(q, _)| q);
        by_id.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        Self::from_sorted(by_id.into_boxed_slice(), n_queries)
    }

    /// Build straight from the arena's id-sorted parallel slices — the
    /// training fast path (no intermediate descending sort).
    pub fn from_sorted_slices(queries: &[QueryId], counts: &[u64], n_queries: usize) -> Self {
        debug_assert_eq!(queries.len(), counts.len());
        debug_assert!(queries.windows(2).all(|w| w[0] < w[1]));
        let by_id: Box<[(QueryId, u64)]> = queries
            .iter()
            .copied()
            .zip(counts.iter().copied())
            .collect();
        Self::from_sorted(by_id, n_queries)
    }

    fn from_sorted(by_id: Box<[(QueryId, u64)]>, n_queries: usize) -> Self {
        let total: u64 = by_id.iter().map(|(_, c)| c).sum();
        let m = by_id.len();
        let nq = n_queries.max(m).max(1);
        let z = 1.0 + (nq - m) as f64 / nq as f64;
        let unobserved_prob = if total == 0 {
            // No evidence at all: uniform.
            1.0 / nq as f64
        } else {
            (1.0 / nq as f64) / z
        };
        let mut rank: Box<[u32]> = (0..m as u32).collect();
        rank.sort_unstable_by(|&a, &b| {
            let (qa, ca) = by_id[a as usize];
            let (qb, cb) = by_id[b as usize];
            cb.cmp(&ca).then_with(|| qa.cmp(&qb))
        });
        NodeDist {
            by_id,
            rank,
            total,
            z,
            unobserved_prob,
        }
    }

    #[inline]
    fn smooth(&self, count: u64) -> f64 {
        (count as f64 / self.total.max(1) as f64) / self.z
    }

    /// Smoothed `P(q | this context)` — O(log m) binary search.
    #[inline]
    pub fn prob(&self, q: QueryId) -> f64 {
        match self.by_id.binary_search_by_key(&q, |&(e, _)| e) {
            Ok(i) => self.smooth(self.by_id[i].1),
            Err(_) => self.unobserved_prob,
        }
    }

    /// Raw ML probability (0 for unobserved), used by the KL growth test.
    #[inline]
    pub fn ml_prob(&self, q: QueryId) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        match self.by_id.binary_search_by_key(&q, |&(e, _)| e) {
            Ok(i) => self.by_id[i].1 as f64 / self.total as f64,
            Err(_) => 0.0,
        }
    }

    /// Top-k observed continuations by smoothed probability.
    pub fn top_k(&self, k: usize) -> Vec<Scored> {
        let mut out = Vec::with_capacity(k.min(self.rank.len()));
        self.top_k_into(k, &mut out);
        out
    }

    /// Top-k into a caller-owned buffer (cleared first) — the allocation-free
    /// serve path when the buffer is reused across requests.
    pub fn top_k_into(&self, k: usize, out: &mut Vec<Scored>) {
        out.clear();
        for &i in self.rank.iter().take(k) {
            let (q, c) = self.by_id[i as usize];
            out.push(Scored::new(q, self.smooth(c)));
        }
    }

    /// Observed continuations `(query, smoothed prob)`, best first.
    pub fn observed(&self) -> impl Iterator<Item = (QueryId, f64)> + '_ {
        self.rank.iter().map(|&i| {
            let (q, c) = self.by_id[i as usize];
            (q, self.smooth(c))
        })
    }

    /// Raw ML counts, ascending by query id.
    pub fn raw_counts(&self) -> &[(QueryId, u64)] {
        &self.by_id
    }

    /// Total observed continuation mass.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observed continuations.
    pub fn support(&self) -> usize {
        self.by_id.len()
    }

    /// True when the node has no continuation evidence.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    fn heap_bytes(&self) -> usize {
        self.by_id.len() * std::mem::size_of::<(QueryId, u64)>()
            + self.rank.len() * std::mem::size_of::<u32>()
    }
}

/// One PST node.
#[derive(Clone, Debug)]
pub struct PstNode {
    /// The context labelling this state (empty at the root).
    pub context: QuerySeq,
    /// Next-query distribution.
    pub dist: NodeDist,
    /// Child edges `(next-older query, node index)`, sorted by query id.
    children: Vec<(QueryId, u32)>,
    /// Parent node index (None at the root).
    pub parent: Option<u32>,
}

/// The prediction suffix tree.
#[derive(Clone, Debug)]
pub struct Pst {
    nodes: Vec<PstNode>,
}

impl Pst {
    /// Create a tree holding only the root (empty context) with the given
    /// prior distribution.
    pub fn new(root_dist: NodeDist) -> Self {
        Pst {
            nodes: vec![PstNode {
                context: Box::from([]),
                dist: root_dist,
                children: Vec::new(),
                parent: None,
            }],
        }
    }

    /// Number of nodes, including the root (the paper's PST size metric).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The root node.
    pub fn root(&self) -> &PstNode {
        &self.nodes[0]
    }

    /// Node by index.
    pub fn node(&self, idx: u32) -> &PstNode {
        &self.nodes[idx as usize]
    }

    /// Iterate all nodes (root first, then in insertion order).
    pub fn iter(&self) -> impl Iterator<Item = &PstNode> {
        self.nodes.iter()
    }

    #[inline]
    fn child_of(&self, idx: u32, q: QueryId) -> Option<u32> {
        let children = &self.nodes[idx as usize].children;
        children
            .binary_search_by_key(&q, |&(e, _)| e)
            .ok()
            .map(|i| children[i].1)
    }

    /// Insert a state. The parent (its one-shorter suffix) must already be
    /// present — the VMM trainer inserts states in ascending length order,
    /// which guarantees this because the state set is suffix-closed.
    ///
    /// # Panics
    /// Panics if the parent state is missing.
    pub fn insert(&mut self, context: QuerySeq, dist: NodeDist) -> u32 {
        debug_assert!(!context.is_empty(), "root is created by new()");
        let (parent_idx, matched) = self.longest_suffix(&context);
        assert_eq!(
            matched,
            context.len() - 1,
            "parent of {context:?} missing from PST"
        );
        let edge = context[0];
        let idx = self.nodes.len() as u32;
        self.nodes.push(PstNode {
            context,
            dist,
            children: Vec::new(),
            parent: Some(parent_idx),
        });
        let children = &mut self.nodes[parent_idx as usize].children;
        match children.binary_search_by_key(&edge, |&(e, _)| e) {
            Ok(_) => debug_assert!(false, "duplicate state insertion"),
            Err(pos) => children.insert(pos, (edge, idx)),
        }
        idx
    }

    /// Longest suffix of `context` that is a state: returns `(node index,
    /// matched length)`; `(0, 0)` means only the root matches.
    pub fn longest_suffix(&self, context: &[QueryId]) -> (u32, usize) {
        let mut idx = 0u32;
        let mut matched = 0usize;
        for i in (0..context.len()).rev() {
            match self.child_of(idx, context[i]) {
                Some(child) => {
                    idx = child;
                    matched += 1;
                }
                None => break,
            }
        }
        (idx, matched)
    }

    /// True when `context` is exactly a state of the tree.
    pub fn contains(&self, context: &[QueryId]) -> bool {
        let (_, matched) = self.longest_suffix(context);
        matched == context.len()
    }

    /// Node index of an exact state, if present.
    pub fn find(&self, context: &[QueryId]) -> Option<u32> {
        let (idx, matched) = self.longest_suffix(context);
        (matched == context.len()).then_some(idx)
    }

    /// Approximate owned heap bytes.
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<PstNode>();
        for n in &self.nodes {
            bytes += n.context.len() * std::mem::size_of::<QueryId>();
            bytes += n.dist.heap_bytes();
            bytes += n.children.capacity() * std::mem::size_of::<(QueryId, u32)>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    fn dist(pairs: &[(u32, u64)], nq: usize) -> NodeDist {
        NodeDist::from_counts(pairs.iter().map(|&(q, c)| (QueryId(q), c)).collect(), nq)
    }

    fn toy_tree() -> Pst {
        // Figure 3: root, q0, q1, q1q0.
        let mut pst = Pst::new(dist(&[(0, 187), (1, 31)], 2));
        pst.insert(seq(&[0]), dist(&[(0, 81), (1, 9)], 2));
        pst.insert(seq(&[1]), dist(&[(0, 16), (1, 4)], 2));
        pst.insert(seq(&[1, 0]), dist(&[(1, 7), (0, 3)], 2));
        pst
    }

    #[test]
    fn node_count_includes_root() {
        assert_eq!(toy_tree().len(), 4);
        assert!(!toy_tree().is_empty());
    }

    #[test]
    fn longest_suffix_walks_from_newest_to_oldest() {
        let pst = toy_tree();
        // [q0,q1,q0]: suffix [q1,q0] matches (length 2).
        let (idx, matched) = pst.longest_suffix(&seq(&[0, 1, 0]));
        assert_eq!(matched, 2);
        assert_eq!(pst.node(idx).context.as_ref(), seq(&[1, 0]).as_ref());
        // [q1,q1]: only [q1] matches.
        let (idx, matched) = pst.longest_suffix(&seq(&[1, 1]));
        assert_eq!(matched, 1);
        assert_eq!(pst.node(idx).context.as_ref(), seq(&[1]).as_ref());
        // Unknown query: root only.
        let (idx, matched) = pst.longest_suffix(&seq(&[9]));
        assert_eq!((idx, matched), (0, 0));
    }

    #[test]
    fn contains_and_find() {
        let pst = toy_tree();
        assert!(pst.contains(&seq(&[1, 0])));
        assert!(!pst.contains(&seq(&[0, 1])));
        assert!(pst.contains(&[]));
        assert!(pst.find(&seq(&[0])).is_some());
        assert!(pst.find(&seq(&[0, 0])).is_none());
    }

    #[test]
    #[should_panic(expected = "parent of")]
    fn insert_requires_parent() {
        let mut pst = Pst::new(dist(&[(0, 1)], 2));
        // [0,1] requires [1] first.
        pst.insert(seq(&[0, 1]), dist(&[(0, 1)], 2));
    }

    #[test]
    fn smoothing_full_support_is_ml() {
        // Both queries observed, |Q| = 2 ⇒ Z = 1, ML probabilities.
        let d = dist(&[(0, 81), (1, 9)], 2);
        assert!((d.prob(QueryId(0)) - 0.9).abs() < 1e-12);
        assert!((d.prob(QueryId(1)) - 0.1).abs() < 1e-12);
        assert!((d.ml_prob(QueryId(0)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn smoothing_partial_support_renormalizes() {
        // One of four queries observed: Z = 1 + 3/4 = 1.75.
        let d = dist(&[(0, 10)], 4);
        let p_obs = d.prob(QueryId(0));
        let p_un = d.prob(QueryId(3));
        assert!((p_obs - 1.0 / 1.75).abs() < 1e-12);
        assert!((p_un - 0.25 / 1.75).abs() < 1e-12);
        // Total mass: observed + 3 unobserved = 1.
        assert!((p_obs + 3.0 * p_un - 1.0).abs() < 1e-12);
        assert_eq!(d.ml_prob(QueryId(3)), 0.0);
    }

    #[test]
    fn top_k_orders_by_probability() {
        let d = dist(&[(5, 70), (2, 20), (9, 10)], 10);
        let top = d.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].query, QueryId(5));
        assert_eq!(top[1].query, QueryId(2));
        // Reused buffer gets the same answer.
        let mut buf = Vec::new();
        d.top_k_into(2, &mut buf);
        assert_eq!(buf, top);
    }

    #[test]
    fn raw_counts_are_id_sorted() {
        let d = dist(&[(9, 10), (2, 20), (5, 70)], 10);
        let ids: Vec<u32> = d.raw_counts().iter().map(|(q, _)| q.0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        // Best-first iteration still ranks by probability.
        let ranked: Vec<u32> = d.observed().map(|(q, _)| q.0).collect();
        assert_eq!(ranked, vec![5, 2, 9]);
    }

    #[test]
    fn from_sorted_slices_matches_from_counts() {
        let a = NodeDist::from_sorted_slices(&[QueryId(1), QueryId(4)], &[3, 9], 6);
        let b = dist(&[(4, 9), (1, 3)], 6);
        for q in 0..6 {
            assert_eq!(a.prob(QueryId(q)), b.prob(QueryId(q)));
            assert_eq!(a.ml_prob(QueryId(q)), b.ml_prob(QueryId(q)));
        }
    }

    #[test]
    fn empty_dist() {
        let d = NodeDist::from_counts(vec![], 5);
        assert!(d.is_empty());
        assert_eq!(d.total(), 0);
        assert!((d.prob(QueryId(0)) - 0.2).abs() < 1e-12); // uniform
        assert!(d.top_k(3).is_empty());
    }

    #[test]
    fn heap_bytes_grow_with_nodes() {
        let small = Pst::new(dist(&[(0, 1)], 2));
        assert!(toy_tree().heap_bytes() > small.heap_bytes());
    }
}
