//! Katz-style back-off N-gram — reference \[18\] of the paper.
//!
//! §IV-B introduces the VMM as "a variation of back-off N-gram"; this module
//! implements the original variation point so the two can be compared (the
//! paper's §VI asks for a study of "all the different N-gram variations").
//!
//! Differences from the naive [`crate::NGram`]:
//! * contexts are counted at **any** session position (like the VMM), not
//!   just as session prefixes;
//! * an unmatched context **backs off** to its suffix instead of failing,
//!   paying an absolute-discount penalty.
//!
//! Differences from the [`crate::Vmm`]:
//! * no KL growth criterion — every observed context up to the order bound
//!   becomes a state;
//! * back-off mass comes from absolute discounting (δ per observed
//!   continuation type), not from the session-start escape of Eq. (6).

use crate::counts::WindowCounts;
use crate::model::{Recommender, SequenceScorer, WeightedSessions};
use sqp_common::mem::HASH_ENTRY_OVERHEAD;
use sqp_common::topk::Scored;
use sqp_common::{FxHashMap, QueryId, QuerySeq};

/// Back-off N-gram configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackoffConfig {
    /// Maximum context length (the model's N − 1). `None` = unbounded.
    pub max_order: Option<usize>,
    /// Absolute discount δ ∈ (0, 1) subtracted from every observed
    /// continuation count to fund the back-off mass.
    pub discount: f64,
    /// Minimum continuation support for a context to become a state.
    pub min_support: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            max_order: Some(4),
            discount: 0.5,
            min_support: 1,
        }
    }
}

pub(crate) struct State {
    /// Observed continuations `(query, count)`, sorted by descending count.
    pub(crate) next: Box<[(QueryId, u64)]>,
    /// Total continuation mass.
    pub(crate) total: u64,
}

impl State {
    /// Discounted probability of an observed continuation, 0 if unobserved.
    fn discounted_prob(&self, q: QueryId, delta: f64) -> f64 {
        self.next
            .iter()
            .find(|(c, _)| *c == q)
            .map(|(_, count)| (*count as f64 - delta).max(0.0) / self.total as f64)
            .unwrap_or(0.0)
    }

    /// Mass reserved for backing off: δ · (#continuation types) / total.
    fn backoff_mass(&self, delta: f64) -> f64 {
        (delta * self.next.len() as f64 / self.total as f64).clamp(0.0, 1.0)
    }
}

/// The trained back-off model.
pub struct BackoffNgram {
    /// Fields are `pub(crate)` so [`crate::persist`] can round-trip them.
    pub(crate) states: FxHashMap<QuerySeq, State>,
    /// Unigram distribution (the back-off floor), sorted by count.
    pub(crate) unigrams: Box<[(QueryId, u64)]>,
    pub(crate) unigram_total: u64,
    pub(crate) config: BackoffConfig,
    pub(crate) n_queries: usize,
}

impl BackoffNgram {
    /// Train on weighted sessions.
    pub fn train(sessions: &WeightedSessions, config: BackoffConfig) -> Self {
        let counts = WindowCounts::build(sessions, config.max_order);
        let mut states = FxHashMap::default();
        for ctx in counts.candidates(config.min_support) {
            let next = counts.ml_counts(&ctx).into_boxed_slice();
            let total = next.iter().map(|(_, c)| c).sum();
            states.insert(ctx, State { next, total });
        }
        let unigrams: Box<[(QueryId, u64)]> = counts.root_counts_desc().into();
        let unigram_total = unigrams.iter().map(|(_, c)| c).sum();
        BackoffNgram {
            states,
            unigrams,
            unigram_total,
            config,
            n_queries: counts.n_queries.max(1),
        }
    }

    /// Number of stored context states (excluding the unigram floor).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Longest suffix of `context` that is a state, if any.
    pub fn longest_suffix<'a>(&self, context: &'a [QueryId]) -> Option<&'a [QueryId]> {
        for start in 0..context.len() {
            let suffix = &context[start..];
            if self.config.max_order.is_some_and(|d| suffix.len() > d) {
                continue;
            }
            if self.states.contains_key(suffix) {
                return Some(suffix);
            }
        }
        None
    }

    /// Katz-style conditional probability with recursive back-off.
    pub fn cond_prob(&self, context: &[QueryId], q: QueryId) -> f64 {
        let mut factor = 1.0;
        let mut ctx = context;
        // Skip over-order prefixes outright (they carry no evidence).
        if let Some(d) = self.config.max_order {
            if ctx.len() > d {
                ctx = &ctx[ctx.len() - d..];
            }
        }
        loop {
            if ctx.is_empty() {
                // Unigram floor with 1/|Q| smoothing for unseen queries.
                let count = self
                    .unigrams
                    .iter()
                    .find(|(c, _)| *c == q)
                    .map(|(_, n)| *n)
                    .unwrap_or(0);
                let p = if self.unigram_total == 0 {
                    1.0 / self.n_queries as f64
                } else if count > 0 {
                    count as f64 / self.unigram_total as f64
                } else {
                    1.0 / (self.unigram_total as f64 * self.n_queries as f64)
                };
                return factor * p;
            }
            match self.states.get(ctx) {
                Some(state) => {
                    let p = state.discounted_prob(q, self.config.discount);
                    if p > 0.0 {
                        return factor * p;
                    }
                    factor *= state.backoff_mass(self.config.discount).max(1e-12);
                    ctx = &ctx[1..];
                }
                None => {
                    // Unobserved context: back off freely.
                    ctx = &ctx[1..];
                }
            }
        }
    }
}

impl Recommender for BackoffNgram {
    fn name(&self) -> &str {
        "Backoff N-gram"
    }

    fn recommend(&self, context: &[QueryId], k: usize) -> Vec<Scored> {
        // Coverage semantics consistent with the other ordered models: the
        // current query must have continuation evidence somewhere.
        let Some(suffix) = self.longest_suffix(context) else {
            return Vec::new();
        };
        // Candidates: continuations observed at the matched state plus, if
        // short, at its own suffixes (back-off can surface them).
        let mut candidates: sqp_common::FxHashSet<QueryId> = Default::default();
        let mut s = suffix;
        while !s.is_empty() {
            if let Some(state) = self.states.get(s) {
                for &(q, _) in state.next.iter().take(k * 4) {
                    candidates.insert(q);
                }
            }
            s = &s[1..];
        }
        let scored: Vec<Scored> = candidates
            .into_iter()
            .map(|q| Scored::new(q, self.cond_prob(context, q)))
            .collect();
        sqp_common::topk::top_k(scored, k)
    }

    fn covers(&self, context: &[QueryId]) -> bool {
        self.longest_suffix(context).is_some()
    }

    fn memory_bytes(&self) -> usize {
        let mut bytes = self.unigrams.len() * std::mem::size_of::<(QueryId, u64)>();
        for (ctx, state) in &self.states {
            bytes += ctx.len() * std::mem::size_of::<QueryId>()
                + state.next.len() * std::mem::size_of::<(QueryId, u64)>()
                + std::mem::size_of::<QuerySeq>()
                + std::mem::size_of::<State>()
                + HASH_ENTRY_OVERHEAD;
        }
        bytes
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl SequenceScorer for BackoffNgram {
    fn sequence_log10_prob(&self, seq: &[QueryId]) -> f64 {
        let mut lp = 0.0;
        for i in 1..seq.len() {
            lp += self.cond_prob(&seq[..i], seq[i]).max(1e-300).log10();
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::toy_corpus;
    use sqp_common::seq;

    fn model() -> BackoffNgram {
        BackoffNgram::train(&toy_corpus(), BackoffConfig::default())
    }

    #[test]
    fn window_states_are_stored() {
        let m = model();
        // The toy candidate set: [0], [1], [0,1], [1,0].
        assert_eq!(m.state_count(), 4);
        assert!(m.states.contains_key(&seq(&[1, 0])));
        assert!(m.states.contains_key(&seq(&[0, 1]))); // no KL pruning here
    }

    #[test]
    fn discounted_probabilities_sum_below_one_on_observed() {
        let m = model();
        // State [1,0]: counts (q1:7, q0:3), δ = 0.5 ⇒ 6.5/10 + 2.5/10 = 0.9;
        // back-off mass = 2·0.5/10 = 0.1.
        let p1 = m.cond_prob(&seq(&[1, 0]), QueryId(1));
        let p0 = m.cond_prob(&seq(&[1, 0]), QueryId(0));
        assert!((p1 - 0.65).abs() < 1e-12, "p1 = {p1}");
        assert!((p0 - 0.25).abs() < 1e-12, "p0 = {p0}");
    }

    #[test]
    fn backoff_pays_discount_mass() {
        let m = model();
        // Query 2 never follows [1,0]; 2 is unseen entirely, so the chain
        // backs off through [0] to the unigram floor:
        // mass([1,0]) = 0.5·2/10 = 0.1; mass([0]) = 0.5·2/90 = 1/90;
        // unigram floor = 1/(218·|Q|) with |Q| = 2.
        let p = m.cond_prob(&seq(&[1, 0]), QueryId(2));
        let floor = 1.0 / (218.0 * 2.0);
        assert!((p - 0.1 * (1.0 / 90.0) * floor).abs() < 1e-15, "p = {p}");
        assert!(p > 0.0);
    }

    #[test]
    fn conditional_sums_to_roughly_one() {
        // Observed mass + backoff×(suffix dist) telescopes to ~1 over the
        // full universe; check with the two real queries (unseen queries add
        // the tiny smoothing remainder).
        let m = model();
        let total: f64 = (0..2).map(|q| m.cond_prob(&seq(&[1, 0]), QueryId(q))).sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(total > 0.85, "total = {total}");
    }

    #[test]
    fn recommend_matches_vmm_on_exact_state() {
        let m = model();
        let recs = m.recommend(&seq(&[1, 0]), 2);
        assert_eq!(recs[0].query, QueryId(1)); // same winner as the paper's PST
    }

    #[test]
    fn backs_off_on_unseen_context() {
        let m = model();
        // Context [1,1] is not a state (no continuation evidence), but its
        // suffix [1] is — the model still answers, like the VMM.
        let recs = m.recommend(&seq(&[1, 1]), 1);
        assert_eq!(recs[0].query, QueryId(0)); // P(q0|q1) dominates
        assert!(m.covers(&seq(&[1, 1])));
        assert!(!m.covers(&seq(&[9])));
    }

    #[test]
    fn max_order_truncates_long_contexts() {
        let m = BackoffNgram::train(
            &toy_corpus(),
            BackoffConfig {
                max_order: Some(1),
                ..BackoffConfig::default()
            },
        );
        assert_eq!(m.state_count(), 2); // only [0] and [1]
                                        // A length-3 context still answers through its last query.
        assert!(!m.recommend(&seq(&[0, 1, 0]), 3).is_empty());
    }

    #[test]
    fn coverage_equals_vmm_and_adjacency() {
        let corpus = toy_corpus();
        let bo = BackoffNgram::train(&corpus, BackoffConfig::default());
        let vmm = crate::Vmm::train(&corpus, crate::VmmConfig::with_epsilon(0.05));
        for a in 0..3u32 {
            for b in 0..3u32 {
                let ctx = seq(&[a, b]);
                assert_eq!(bo.covers(&ctx), vmm.covers(&ctx), "{ctx:?}");
            }
        }
    }

    #[test]
    fn sequence_scoring_is_finite() {
        let m = model();
        let lp = m.sequence_log10_prob(&seq(&[0, 1, 0, 1, 1, 0]));
        assert!(lp.is_finite());
        assert!(lp < 0.0);
    }

    #[test]
    fn empty_corpus() {
        let m = BackoffNgram::train(&[], BackoffConfig::default());
        assert_eq!(m.state_count(), 0);
        assert!(m.recommend(&seq(&[0]), 5).is_empty());
    }
}
