//! # sqp-core — sequential query prediction models
//!
//! The paper's contribution: given the queries a user has issued so far in a
//! session, predict the next query and recommend the top-N candidates.
//!
//! Five methods, all behind the [`Recommender`] trait:
//!
//! * [`Adjacency`] — pair-wise baseline: successors of the current query;
//! * [`Cooccurrence`] — pair-wise baseline: session co-occurrences;
//! * [`NGram`] — naive variable-length N-gram over full prefix contexts;
//! * [`Vmm`] — Variable Memory Markov model via a Prediction Suffix Tree
//!   with KL-divergence growth, 1/|Q| smoothing and context escape;
//! * [`Mvmm`] — the paper's Mixture VMM with Gaussian context-disparity
//!   weighting fitted by Newton iteration.
//!
//! ```
//! use sqp_core::{Recommender, Vmm, VmmConfig};
//! use sqp_core::toy::toy_corpus;
//!
//! let vmm = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.1));
//! let recs = vmm.recommend(&sqp_common::seq(&[1, 0]), 1);
//! assert_eq!(recs[0].query, sqp_common::QueryId(1)); // P(q1|q1q0) = 0.7
//! ```

#![deny(missing_docs)]

pub mod adjacency;
pub mod backoff;
pub mod cooccurrence;
pub mod counts;
pub mod hmm;
pub mod model;
pub mod mvmm;
pub mod newton;
pub mod ngram;
pub mod persist;
pub mod pst;
pub mod toy;
pub mod vmm;

pub use adjacency::Adjacency;
pub use backoff::{BackoffConfig, BackoffNgram};
pub use cooccurrence::Cooccurrence;
pub use hmm::{Hmm, HmmConfig};
pub use model::{Recommender, SequenceScorer, WeightedSessions};
pub use mvmm::{Mvmm, MvmmConfig};
pub use newton::{fit_mixture_sigmas, FitConfig, FitOutcome};
pub use ngram::NGram;
pub use persist::{model_from_bytes, model_to_bytes, ModelKind};
pub use pst::{NodeDist, Pst, PstNode};
pub use vmm::{Vmm, VmmConfig};
