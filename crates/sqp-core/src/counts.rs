//! Suffix-window counting for VMM training.
//!
//! VMM statistics are counted over **windows at any session position**, not
//! just session prefixes. This is forced by the paper's own toy example
//! (Table II → Fig 3): P(q0|q1) = 0.8 only holds if the mid-session
//! occurrences of `q1` in `q0q1q0` / `q0q1q1` are counted — prefix-only
//! counting would give 0.833. Each window records its total occurrences, how
//! often it occurs at a session start (the `‖[e,s]‖` events of Eq. 6), and
//! the distribution of queries that follow it.

use sqp_common::{Counter, FxHashMap, FxHashSet, QueryId, QuerySeq};

/// Counts for one window (a candidate PST context).
#[derive(Clone, Debug, Default)]
pub struct WindowEntry {
    /// Weighted occurrences of the window anywhere in a session.
    pub total: u64,
    /// Weighted occurrences at the very start of a session.
    pub at_start: u64,
    /// Weighted counts of the query immediately following the window.
    pub next: Counter<QueryId>,
}

/// All window statistics of a training corpus up to a maximum window length.
#[derive(Debug)]
pub struct WindowCounts {
    entries: FxHashMap<QuerySeq, WindowEntry>,
    /// Prior (root) distribution: weighted occurrences of every query.
    root_next: Counter<QueryId>,
    /// Number of distinct queries in the corpus — the paper's |Q|.
    pub n_queries: usize,
    /// Total weighted sessions.
    pub total_sessions: u64,
    /// Total weighted query occurrences.
    pub total_occurrences: u64,
    /// Longest window length counted.
    pub max_len: usize,
}

impl WindowCounts {
    /// Count windows of length `1..=max_len` over weighted sessions.
    /// `max_len = None` counts every possible window (unbounded VMM).
    pub fn build(sessions: &[(QuerySeq, u64)], max_len: Option<usize>) -> Self {
        let longest = sessions.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
        let max_len = max_len.unwrap_or(longest).min(longest.max(1));

        let mut entries: FxHashMap<QuerySeq, WindowEntry> = FxHashMap::default();
        let mut root_next = Counter::new();
        let mut distinct: FxHashSet<QueryId> = FxHashSet::default();
        let mut total_sessions = 0u64;
        let mut total_occurrences = 0u64;

        for (s, f) in sessions {
            total_sessions += f;
            for (pos, &q) in s.iter().enumerate() {
                distinct.insert(q);
                root_next.add(q, *f);
                total_occurrences += f;
                let _ = pos;
            }
            for start in 0..s.len() {
                let limit = max_len.min(s.len() - start);
                for win_len in 1..=limit {
                    let w: QuerySeq = s[start..start + win_len].into();
                    let e = entries.entry(w).or_default();
                    e.total += f;
                    if start == 0 {
                        e.at_start += f;
                    }
                    if start + win_len < s.len() {
                        e.next.add(s[start + win_len], *f);
                    }
                }
            }
        }

        WindowCounts {
            entries,
            root_next,
            n_queries: distinct.len(),
            total_sessions,
            total_occurrences,
            max_len,
        }
    }

    /// Counts for a window, if observed.
    pub fn entry(&self, window: &[QueryId]) -> Option<&WindowEntry> {
        self.entries.get(window)
    }

    /// The prior next-query distribution (root of the PST).
    pub fn root_counts(&self) -> &Counter<QueryId> {
        &self.root_next
    }

    /// Maximum-likelihood conditional distribution `P(·|window)` as sorted
    /// `(query, count)` pairs; empty when the window has no continuation.
    pub fn ml_counts(&self, window: &[QueryId]) -> Vec<(QueryId, u64)> {
        self.entries
            .get(window)
            .map(|e| e.next.sorted_desc())
            .unwrap_or_default()
    }

    /// Candidate PST contexts: observed windows with continuation evidence of
    /// at least `min_support`, sorted by (length, sequence) so growth is
    /// deterministic and parents precede children.
    pub fn candidates(&self, min_support: u64) -> Vec<QuerySeq> {
        let mut out: Vec<QuerySeq> = self
            .entries
            .iter()
            .filter(|(_, e)| e.next.total() >= min_support.max(1))
            .map(|(w, _)| w.clone())
            .collect();
        out.sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        out
    }

    /// Escape probability of Eq. (6) for an *unobserved* context
    /// `s = [q1, s']`:
    ///
    /// `P̂(escape|s) = ‖[e,s']‖ / (Σ_q ‖[q,s']‖ + ‖[e,s']‖)`
    ///
    /// `‖[e,s']‖` counts occurrences of `s'` at a session start (nothing
    /// precedes it) and `Σ_q ‖[q,s']‖` its occurrences preceded by some
    /// query, so the denominator is just the total occurrences of `s'`. The
    /// value is floored at 1e-6 so a mixture component is penalised, never
    /// annihilated; unobserved `s'` escapes freely (probability 1).
    pub fn escape_prob(&self, s: &[QueryId]) -> f64 {
        debug_assert!(!s.is_empty());
        let suffix = &s[1..];
        if suffix.is_empty() {
            // s' = e: sessions are the "starts", occurrences the total.
            let den = self.total_occurrences + self.total_sessions;
            if den == 0 {
                return 1.0;
            }
            return (self.total_sessions as f64 / den as f64).max(1e-6);
        }
        match self.entries.get(suffix) {
            None => 1.0,
            Some(e) if e.total == 0 => 1.0,
            Some(e) => (e.at_start as f64 / e.total as f64).max(1e-6),
        }
    }

    /// Number of distinct observed windows.
    pub fn window_count(&self) -> usize {
        self.entries.len()
    }

    /// Drain into the compact per-window map `(total, at_start)` kept by the
    /// trained VMM for escape computation.
    pub fn into_escape_table(self) -> FxHashMap<QuerySeq, (u64, u64)> {
        self.entries
            .into_iter()
            .map(|(w, e)| (w, (e.total, e.at_start)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::toy_corpus;
    use sqp_common::seq;

    #[test]
    fn toy_conditional_q1q0() {
        // Paper: P(q0|[q1,q0]) = 3/10.
        let c = WindowCounts::build(&toy_corpus(), None);
        let e = c.entry(&seq(&[1, 0])).unwrap();
        assert_eq!(e.next.get(&QueryId(0)), 3);
        assert_eq!(e.next.get(&QueryId(1)), 7);
        assert_eq!(e.next.total(), 10);
    }

    #[test]
    fn toy_conditional_single_queries_use_all_positions() {
        let c = WindowCounts::build(&toy_corpus(), None);
        // P(·|q1): q1→q0 16 times, q1→q1 4 times (0.8 / 0.2 in the paper).
        let e1 = c.entry(&seq(&[1])).unwrap();
        assert_eq!(e1.next.get(&QueryId(0)), 16);
        assert_eq!(e1.next.get(&QueryId(1)), 4);
        // P(·|q0): q0→q0 81, q0→q1 9 (0.9 / 0.1 in the paper).
        let e0 = c.entry(&seq(&[0])).unwrap();
        assert_eq!(e0.next.get(&QueryId(0)), 81);
        assert_eq!(e0.next.get(&QueryId(1)), 9);
    }

    #[test]
    fn toy_candidate_set_matches_paper() {
        // Paper: without filtering, S′ = {q1q0, q0q1, q0, q1}.
        let c = WindowCounts::build(&toy_corpus(), None);
        let cands = c.candidates(1);
        let expect: Vec<QuerySeq> =
            vec![seq(&[0]), seq(&[1]), seq(&[0, 1]), seq(&[1, 0])];
        assert_eq!(cands, expect);
    }

    #[test]
    fn root_prior_counts_every_occurrence() {
        let c = WindowCounts::build(&toy_corpus(), None);
        assert_eq!(c.root_counts().get(&QueryId(0)), 187);
        assert_eq!(c.root_counts().get(&QueryId(1)), 31);
        assert_eq!(c.total_occurrences, 218);
        assert_eq!(c.total_sessions, 108);
        assert_eq!(c.n_queries, 2);
    }

    #[test]
    fn bounded_counting_truncates_windows() {
        let c = WindowCounts::build(&[(seq(&[0, 1, 2, 3]), 1)], Some(2));
        assert!(c.entry(&seq(&[0, 1])).is_some());
        assert!(c.entry(&seq(&[0, 1, 2])).is_none());
        assert_eq!(c.max_len, 2);
    }

    #[test]
    fn at_start_only_counts_session_prefixes() {
        let c = WindowCounts::build(&toy_corpus(), None);
        // [0] starts sessions q0q0 (78), q0q1q0 (1), q0q1q1 (1), q0 (10) = 90;
        // occurs 187 times total.
        let e = c.entry(&seq(&[0])).unwrap();
        assert_eq!(e.at_start, 90);
        assert_eq!(e.total, 187);
        // [1,0] starts q1q0q0 (3), q1q0q1 (7), q1q0 (5) = 15.
        let e10 = c.entry(&seq(&[1, 0])).unwrap();
        assert_eq!(e10.at_start, 15);
        assert_eq!(e10.total, 16); // plus [0,1,0]'s suffix occurrence
    }

    #[test]
    fn escape_probability_formula() {
        let c = WindowCounts::build(&toy_corpus(), None);
        // escape([q, 0]) for unobserved [q,0]: s' = [0]:
        // at_start(0)/total(0) = 90/187.
        let esc = c.escape_prob(&seq(&[9, 0]));
        assert!((esc - 90.0 / 187.0).abs() < 1e-12);
        // Unobserved suffix ⇒ free escape.
        assert_eq!(c.escape_prob(&seq(&[9, 8])), 1.0);
        // Single-query context: sessions / (occurrences + sessions).
        let esc1 = c.escape_prob(&seq(&[9]));
        assert!((esc1 - 108.0 / (218.0 + 108.0)).abs() < 1e-12);
    }

    #[test]
    fn min_support_filters_candidates() {
        let c = WindowCounts::build(&toy_corpus(), None);
        let cands = c.candidates(5);
        // [0,1] has continuation support 2 (<5) and drops out.
        assert!(!cands.contains(&seq(&[0, 1])));
        assert!(cands.contains(&seq(&[1, 0])));
    }

    #[test]
    fn empty_corpus() {
        let c = WindowCounts::build(&[], None);
        assert_eq!(c.n_queries, 0);
        assert_eq!(c.window_count(), 0);
        assert!(c.candidates(1).is_empty());
    }
}
