//! Suffix-window counting for VMM training, on the arena suffix trie.
//!
//! VMM statistics are counted over **windows at any session position**, not
//! just session prefixes. This is forced by the paper's own toy example
//! (Table II → Fig 3): P(q0|q1) = 0.8 only holds if the mid-session
//! occurrences of `q1` in `q0q1q0` / `q0q1q1` are counted — prefix-only
//! counting would give 0.833. Each window records its total occurrences, how
//! often it occurs at a session start (the `‖[e,s]‖` events of Eq. 6), and —
//! implicitly, as its trie children — the distribution of queries that
//! follow it.
//!
//! The counts live in a [`SuffixTrie`]: a session of length L costs
//! O(L·min(L, D+1)) constant-time trie steps with **zero per-window
//! allocations**, instead of the old hashmap's owned `Box<[QueryId]>` key
//! per window. Counting shards across threads ([`WindowCounts::build_with`])
//! with bit-identical results: per-shard tries merge additively and the
//! frozen layout is canonical.

use sqp_common::arena::{SuffixTrie, TrieBuilder};
use sqp_common::{QueryId, QuerySeq};

/// Sessions below this count train sequentially even when parallelism is
/// requested — thread startup would dominate.
const PARALLEL_MIN_SESSIONS: usize = 2_048;

/// All window statistics of a training corpus up to a maximum window length.
#[derive(Debug)]
pub struct WindowCounts {
    trie: SuffixTrie,
    /// Number of distinct queries in the corpus — the paper's |Q|.
    pub n_queries: usize,
    /// Total weighted sessions.
    pub total_sessions: u64,
    /// Total weighted query occurrences.
    pub total_occurrences: u64,
    /// Longest window length counted.
    pub max_len: usize,
}

/// A borrowed view of one counted window (a candidate PST context).
#[derive(Clone, Copy, Debug)]
pub struct WindowEntry<'a> {
    trie: &'a SuffixTrie,
    node: u32,
}

impl<'a> WindowEntry<'a> {
    /// Weighted occurrences of the window anywhere in a session.
    #[inline]
    pub fn total(&self) -> u64 {
        self.trie.total(self.node)
    }

    /// Weighted occurrences at the very start of a session.
    #[inline]
    pub fn at_start(&self) -> u64 {
        self.trie.at_start(self.node)
    }

    /// Total weighted continuation mass (occurrences followed by a query).
    #[inline]
    pub fn next_total(&self) -> u64 {
        self.trie.cont_total(self.node)
    }

    /// Weighted count of `q` immediately following the window.
    #[inline]
    pub fn next_count(&self, q: QueryId) -> u64 {
        let (keys, counts) = self.trie.continuations(self.node);
        keys.binary_search(&q).map(|i| counts[i]).unwrap_or(0)
    }

    /// Continuation distribution as parallel id-sorted slices
    /// `(queries, counts)`, borrowed from the arena.
    #[inline]
    pub fn next_sorted(&self) -> (&'a [QueryId], &'a [u64]) {
        self.trie.continuations(self.node)
    }

    /// Iterate `(query, count)` continuations in ascending id order.
    pub fn next_iter(&self) -> impl Iterator<Item = (QueryId, u64)> + 'a {
        let (keys, counts) = self.trie.continuations(self.node);
        keys.iter().copied().zip(counts.iter().copied())
    }

    /// Continuations sorted by descending count, ties by ascending id.
    pub fn next_sorted_desc(&self) -> Vec<(QueryId, u64)> {
        let mut v: Vec<(QueryId, u64)> = self.next_iter().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// The trie node backing this window.
    #[inline]
    pub fn node(&self) -> u32 {
        self.node
    }
}

impl WindowCounts {
    /// Count windows of length `1..=max_len` over weighted sessions.
    /// `max_len = None` counts every possible window (unbounded VMM).
    pub fn build(sessions: &[(QuerySeq, u64)], max_len: Option<usize>) -> Self {
        Self::build_with(sessions, max_len, false)
    }

    /// Count windows, optionally sharding sessions across threads. The
    /// result is bit-identical either way — per-shard tries merge
    /// additively and the frozen arena layout is canonical — so `parallel`
    /// is purely a throughput knob.
    pub fn build_with(
        sessions: &[(QuerySeq, u64)],
        max_len: Option<usize>,
        parallel: bool,
    ) -> Self {
        let threads = if parallel && sessions.len() >= PARALLEL_MIN_SESSIONS {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            1
        };
        Self::build_sharded(sessions, max_len, threads)
    }

    /// Count with an explicit shard count (tests force `threads > 1` to
    /// exercise the merge path regardless of the host's core count).
    pub fn build_sharded(
        sessions: &[(QuerySeq, u64)],
        max_len: Option<usize>,
        threads: usize,
    ) -> Self {
        let longest = sessions.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
        let max_len = max_len.unwrap_or(longest).min(longest.max(1));
        // Depth max_len+1 nodes carry the continuation counts of
        // depth-max_len windows (a window's next-query distribution is its
        // children's totals).
        let depth_limit = max_len + 1;

        let threads = threads.clamp(1, sessions.len().max(1));

        let (builder, total_sessions) = if threads <= 1 {
            Self::count_shard(sessions, depth_limit)
        } else {
            let chunk = sessions.len().div_ceil(threads);
            let mut shards: Vec<(TrieBuilder, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = sessions
                    .chunks(chunk)
                    .map(|shard| scope.spawn(move || Self::count_shard(shard, depth_limit)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("counting shard panicked"))
                    .collect()
            });
            let (mut builder, mut total_sessions) = shards.remove(0);
            for (shard, sessions_in_shard) in &shards {
                builder.merge(shard);
                total_sessions += sessions_in_shard;
            }
            (builder, total_sessions)
        };

        let trie = builder.freeze(max_len as u32);
        let (root_keys, root_counts) = trie.continuations(SuffixTrie::ROOT);
        let n_queries = root_keys.len();
        let total_occurrences = root_counts.iter().sum();
        WindowCounts {
            trie,
            n_queries,
            total_sessions,
            total_occurrences,
            max_len,
        }
    }

    fn count_shard(sessions: &[(QuerySeq, u64)], depth_limit: usize) -> (TrieBuilder, u64) {
        // Distinct windows are bounded by total counting steps; a rough hint
        // avoids mid-count rehashing without a second pass.
        let positions: usize = sessions.iter().map(|(s, _)| s.len()).sum();
        let mut builder = TrieBuilder::with_edge_capacity((positions / 2).min(1 << 26));
        let mut total_sessions = 0u64;
        for (s, f) in sessions {
            total_sessions += f;
            builder.count_session(s, *f, depth_limit);
        }
        (builder, total_sessions)
    }

    /// Counts for a window, if observed.
    #[inline]
    pub fn entry(&self, window: &[QueryId]) -> Option<WindowEntry<'_>> {
        self.trie.window(window).map(|node| WindowEntry {
            trie: &self.trie,
            node,
        })
    }

    /// View of a window by trie node id.
    #[inline]
    pub fn entry_at(&self, node: u32) -> WindowEntry<'_> {
        WindowEntry {
            trie: &self.trie,
            node,
        }
    }

    /// The prior next-query distribution (root of the PST) as id-sorted
    /// parallel slices: every query with its total weighted occurrences.
    pub fn root_continuations(&self) -> (&[QueryId], &[u64]) {
        self.trie.continuations(SuffixTrie::ROOT)
    }

    /// The root prior sorted by descending count, ties by ascending id.
    pub fn root_counts_desc(&self) -> Vec<(QueryId, u64)> {
        self.entry_at(SuffixTrie::ROOT).next_sorted_desc()
    }

    /// Maximum-likelihood conditional distribution `P(·|window)` as sorted
    /// `(query, count)` pairs; empty when the window has no continuation.
    pub fn ml_counts(&self, window: &[QueryId]) -> Vec<(QueryId, u64)> {
        self.entry(window)
            .map(|e| e.next_sorted_desc())
            .unwrap_or_default()
    }

    /// Candidate PST contexts: observed windows with continuation evidence of
    /// at least `min_support`, sorted by (length, sequence) so growth is
    /// deterministic and parents precede children. The trie's canonical BFS
    /// layout *is* that order — no sort happens here.
    pub fn candidates(&self, min_support: u64) -> Vec<QuerySeq> {
        let min_support = min_support.max(1);
        let mut path = Vec::with_capacity(self.max_len);
        self.candidate_nodes(min_support)
            .map(|node| {
                self.trie.path(node, &mut path);
                path.as_slice().into()
            })
            .collect()
    }

    /// Trie node ids of the candidate windows, in (length, sequence) order.
    pub fn candidate_nodes(&self, min_support: u64) -> impl Iterator<Item = u32> + '_ {
        let min_support = min_support.max(1);
        self.trie
            .window_nodes()
            .filter(move |&n| self.trie.cont_total(n) >= min_support)
    }

    /// Escape probability of Eq. (6) for an *unobserved* context
    /// `s = [q1, s']`:
    ///
    /// `P̂(escape|s) = ‖[e,s']‖ / (Σ_q ‖[q,s']‖ + ‖[e,s']‖)`
    ///
    /// `‖[e,s']‖` counts occurrences of `s'` at a session start (nothing
    /// precedes it) and `Σ_q ‖[q,s']‖` its occurrences preceded by some
    /// query, so the denominator is just the total occurrences of `s'`. The
    /// value is floored at 1e-6 so a mixture component is penalised, never
    /// annihilated; unobserved `s'` escapes freely (probability 1).
    pub fn escape_prob(&self, s: &[QueryId]) -> f64 {
        escape_prob_in(&self.trie, self.total_sessions, self.total_occurrences, s)
    }

    /// Number of distinct observed windows.
    pub fn window_count(&self) -> usize {
        self.trie.window_count()
    }

    /// Borrow the underlying arena.
    pub fn trie(&self) -> &SuffixTrie {
        &self.trie
    }

    /// Consume into the arena, which doubles as the trained VMM's escape
    /// table (total / at-start counts per window, Eq. 6).
    pub fn into_trie(self) -> SuffixTrie {
        self.trie
    }
}

/// Escape probability over a bare trie — shared by [`WindowCounts`] and the
/// trained [`crate::Vmm`], which keeps only the trie.
pub(crate) fn escape_prob_in(
    trie: &SuffixTrie,
    total_sessions: u64,
    total_occurrences: u64,
    s: &[QueryId],
) -> f64 {
    debug_assert!(!s.is_empty());
    let suffix = &s[1..];
    if suffix.is_empty() {
        // s' = e: sessions are the "starts", occurrences the total.
        let den = total_occurrences + total_sessions;
        if den == 0 {
            return 1.0;
        }
        return (total_sessions as f64 / den as f64).max(1e-6);
    }
    match trie.window(suffix) {
        None => 1.0,
        Some(node) if trie.total(node) == 0 => 1.0,
        Some(node) => (trie.at_start(node) as f64 / trie.total(node) as f64).max(1e-6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::toy_corpus;
    use sqp_common::seq;

    #[test]
    fn toy_conditional_q1q0() {
        // Paper: P(q0|[q1,q0]) = 3/10.
        let c = WindowCounts::build(&toy_corpus(), None);
        let e = c.entry(&seq(&[1, 0])).unwrap();
        assert_eq!(e.next_count(QueryId(0)), 3);
        assert_eq!(e.next_count(QueryId(1)), 7);
        assert_eq!(e.next_total(), 10);
    }

    #[test]
    fn toy_conditional_single_queries_use_all_positions() {
        let c = WindowCounts::build(&toy_corpus(), None);
        // P(·|q1): q1→q0 16 times, q1→q1 4 times (0.8 / 0.2 in the paper).
        let e1 = c.entry(&seq(&[1])).unwrap();
        assert_eq!(e1.next_count(QueryId(0)), 16);
        assert_eq!(e1.next_count(QueryId(1)), 4);
        // P(·|q0): q0→q0 81, q0→q1 9 (0.9 / 0.1 in the paper).
        let e0 = c.entry(&seq(&[0])).unwrap();
        assert_eq!(e0.next_count(QueryId(0)), 81);
        assert_eq!(e0.next_count(QueryId(1)), 9);
    }

    #[test]
    fn toy_candidate_set_matches_paper() {
        // Paper: without filtering, S′ = {q1q0, q0q1, q0, q1}.
        let c = WindowCounts::build(&toy_corpus(), None);
        let cands = c.candidates(1);
        let expect: Vec<QuerySeq> = vec![seq(&[0]), seq(&[1]), seq(&[0, 1]), seq(&[1, 0])];
        assert_eq!(cands, expect);
    }

    #[test]
    fn root_prior_counts_every_occurrence() {
        let c = WindowCounts::build(&toy_corpus(), None);
        let root = c.entry_at(sqp_common::SuffixTrie::ROOT);
        assert_eq!(root.next_count(QueryId(0)), 187);
        assert_eq!(root.next_count(QueryId(1)), 31);
        assert_eq!(c.total_occurrences, 218);
        assert_eq!(c.total_sessions, 108);
        assert_eq!(c.n_queries, 2);
        assert_eq!(
            c.root_counts_desc(),
            vec![(QueryId(0), 187), (QueryId(1), 31)]
        );
    }

    #[test]
    fn bounded_counting_truncates_windows() {
        let c = WindowCounts::build(&[(seq(&[0, 1, 2, 3]), 1)], Some(2));
        assert!(c.entry(&seq(&[0, 1])).is_some());
        assert!(c.entry(&seq(&[0, 1, 2])).is_none());
        assert_eq!(c.max_len, 2);
        // Length-2 windows still know their continuations.
        assert_eq!(c.entry(&seq(&[1, 2])).unwrap().next_count(QueryId(3)), 1);
    }

    #[test]
    fn at_start_only_counts_session_prefixes() {
        let c = WindowCounts::build(&toy_corpus(), None);
        // [0] starts sessions q0q0 (78), q0q1q0 (1), q0q1q1 (1), q0 (10) = 90;
        // occurs 187 times total.
        let e = c.entry(&seq(&[0])).unwrap();
        assert_eq!(e.at_start(), 90);
        assert_eq!(e.total(), 187);
        // [1,0] starts q1q0q0 (3), q1q0q1 (7), q1q0 (5) = 15.
        let e10 = c.entry(&seq(&[1, 0])).unwrap();
        assert_eq!(e10.at_start(), 15);
        assert_eq!(e10.total(), 16); // plus [0,1,0]'s suffix occurrence
    }

    #[test]
    fn escape_probability_formula() {
        let c = WindowCounts::build(&toy_corpus(), None);
        // escape([q, 0]) for unobserved [q,0]: s' = [0]:
        // at_start(0)/total(0) = 90/187.
        let esc = c.escape_prob(&seq(&[9, 0]));
        assert!((esc - 90.0 / 187.0).abs() < 1e-12);
        // Unobserved suffix ⇒ free escape.
        assert_eq!(c.escape_prob(&seq(&[9, 8])), 1.0);
        // Single-query context: sessions / (occurrences + sessions).
        let esc1 = c.escape_prob(&seq(&[9]));
        assert!((esc1 - 108.0 / (218.0 + 108.0)).abs() < 1e-12);
    }

    #[test]
    fn min_support_filters_candidates() {
        let c = WindowCounts::build(&toy_corpus(), None);
        let cands = c.candidates(5);
        // [0,1] has continuation support 2 (<5) and drops out.
        assert!(!cands.contains(&seq(&[0, 1])));
        assert!(cands.contains(&seq(&[1, 0])));
    }

    #[test]
    fn empty_corpus() {
        let c = WindowCounts::build(&[], None);
        assert_eq!(c.n_queries, 0);
        assert_eq!(c.window_count(), 0);
        assert!(c.candidates(1).is_empty());
    }

    #[test]
    fn sharded_build_is_bit_identical() {
        let mut sessions: Vec<(QuerySeq, u64)> = Vec::new();
        for i in 0..4_000u32 {
            let a = i % 13;
            let b = (i * 7 + 1) % 13;
            let c = (i * 3 + 5) % 13;
            sessions.push((seq(&[a, b, c, a % 5]), 1 + u64::from(i % 4)));
        }
        let seq_counts = WindowCounts::build_with(&sessions, None, false);
        // Explicit shard counts exercise the merge path even on one core;
        // build_with(parallel=true) must agree as well.
        for counts in [
            WindowCounts::build_sharded(&sessions, None, 3),
            WindowCounts::build_sharded(&sessions, None, 7),
            WindowCounts::build_with(&sessions, None, true),
        ] {
            assert_eq!(seq_counts.trie(), counts.trie());
            assert_eq!(seq_counts.total_sessions, counts.total_sessions);
            assert_eq!(seq_counts.total_occurrences, counts.total_occurrences);
            assert_eq!(seq_counts.n_queries, counts.n_queries);
        }
    }

    #[test]
    fn next_sorted_is_id_ordered_and_borrowed() {
        let c = WindowCounts::build(&toy_corpus(), None);
        let (keys, counts) = c.entry(&seq(&[1])).unwrap().next_sorted();
        assert_eq!(keys, &[QueryId(0), QueryId(1)]);
        assert_eq!(counts, &[16, 4]);
    }
}
