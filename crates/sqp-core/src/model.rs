//! The recommender abstraction shared by all five methods.

use sqp_common::topk::Scored;
use sqp_common::{QueryId, QuerySeq};

/// Weighted training sessions: each distinct query sequence with its
/// aggregated frequency (the output of the `sqp-sessions` pipeline).
pub type WeightedSessions = [(QuerySeq, u64)];

/// A trained query-prediction model.
///
/// `recommend` returning an empty list means the context is *not covered* —
/// the model has no evidence to predict from (the paper's coverage metric
/// counts exactly this).
pub trait Recommender: Send + Sync {
    /// Short display name ("Adj.", "Co-occ.", "N-gram", "VMM (0.05)", "MVMM").
    fn name(&self) -> &str;

    /// Top-`k` next-query candidates for `context`, best first.
    fn recommend(&self, context: &[QueryId], k: usize) -> Vec<Scored>;

    /// [`recommend`](Recommender::recommend) into a caller-owned buffer
    /// (cleared first), so serving loops can reuse one allocation across
    /// calls. The default delegates to `recommend`; models with an
    /// allocation-free path (the VMM) override it.
    fn recommend_into(&self, context: &[QueryId], k: usize, out: &mut Vec<Scored>) {
        out.clear();
        out.extend(self.recommend(context, k));
    }

    /// Approximate owned heap bytes (Table VII).
    fn memory_bytes(&self) -> usize;

    /// True when the model can produce at least one recommendation for
    /// `context`. The default delegates to `recommend`; models override it
    /// with a cheaper check where possible.
    fn covers(&self, context: &[QueryId]) -> bool {
        !self.recommend(context, 1).is_empty()
    }

    /// Concrete-type escape hatch for the snapshot persistence layer
    /// ([`crate::persist`]): a model that wants to be savable behind a
    /// `&dyn Recommender` returns `Some(self)` so the persister can
    /// downcast to its [`crate::persist::ModelKind`]. The default (`None`)
    /// marks the model as not persistable — [`crate::persist::model_to_bytes`]
    /// then reports an unsupported-model error instead of guessing.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Models that assign probabilities to whole query sequences (the sequence
/// models: N-gram, VMM, MVMM). Used for the log-loss analysis of Eq. (1).
pub trait SequenceScorer {
    /// `log10 P(sequence)` with the first query given (footnote 3 of the
    /// paper: `P(q1) = 1`).
    fn sequence_log10_prob(&self, seq: &[QueryId]) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl Recommender for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn recommend(&self, context: &[QueryId], k: usize) -> Vec<Scored> {
            if context.is_empty() {
                return Vec::new();
            }
            (0..k as u32)
                .map(|i| Scored::new(QueryId(i), 1.0))
                .collect()
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_covers_delegates_to_recommend() {
        let m = Fixed;
        assert!(m.covers(&[QueryId(5)]));
        assert!(!m.covers(&[]));
    }
}
