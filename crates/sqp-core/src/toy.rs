//! The paper's Table II toy corpus, used by unit tests, integration tests,
//! and the `fig03_toy_pst` experiment binary.
//!
//! | s      | ‖s‖ | s      | ‖s‖ | s    | ‖s‖ | s   | ‖s‖ |
//! |--------|-----|--------|-----|------|-----|-----|-----|
//! | q1q0q0 | 3   | q1q0q1 | 7   | q0q0 | 78  | q1q0| 5   |
//! | q0q1q0 | 1   | q0q1q1 | 1   | q1q1 | 3   | q0  | 10  |
//!
//! With ε = 0.1 this corpus produces the PST of Figure 3: states
//! {e, q0, q1, q1q0} with P(·|q0) = (0.9, 0.1), P(·|q1) = (0.8, 0.2),
//! P(·|q1q0) = (0.3, 0.7), and the growth decisions D_KL(q0‖q1q0) = 0.3449
//! (added) and D_KL(q1‖q0q1) = 0.0837 (rejected).

use sqp_common::{seq, QuerySeq};

/// Table II as weighted sessions, with q0 ↦ id 0 and q1 ↦ id 1.
pub fn toy_corpus() -> Vec<(QuerySeq, u64)> {
    vec![
        (seq(&[1, 0, 0]), 3),
        (seq(&[1, 0, 1]), 7),
        (seq(&[0, 0]), 78),
        (seq(&[1, 0]), 5),
        (seq(&[0, 1, 0]), 1),
        (seq(&[0, 1, 1]), 1),
        (seq(&[1, 1]), 3),
        (seq(&[0]), 10),
    ]
}

/// The ε used for Figure 3.
pub const TOY_EPSILON: f64 = 0.1;

/// The test sequence whose probability the paper walks through:
/// `[q0,q1,q0,q1,q1,q0]` with probability 1 × 0.1 × 0.8 × 0.7 × 0.2 × 0.8.
pub fn toy_test_sequence() -> QuerySeq {
    seq(&[0, 1, 0, 1, 1, 0])
}

/// The paper's hand-computed probability of [`toy_test_sequence`].
pub const TOY_TEST_SEQUENCE_PROB: f64 = 0.1 * 0.8 * 0.7 * 0.2 * 0.8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_mass() {
        let total: u64 = toy_corpus().iter().map(|(_, f)| f).sum();
        assert_eq!(total, 108);
    }

    #[test]
    fn constants() {
        assert!((TOY_TEST_SEQUENCE_PROB - 0.00896).abs() < 1e-12);
        assert_eq!(toy_test_sequence().len(), 6);
    }
}
