//! A discrete Hidden Markov Model over query sessions — the paper's §VI
//! future work realized: *"modeling hidden states that represent true user
//! intent, which could be an underlying semantic concept"*.
//!
//! Hidden states play the role of latent intents; emissions are queries;
//! transitions model intent drift within a session. Training is classic
//! Baum–Welch (scaled forward–backward EM) over the weighted aggregated
//! sessions; prediction propagates the forward belief one step and ranks
//! queries by expected emission probability:
//!
//! `P(q_next | q_1..q_t) ∝ Σ_l ( Σ_k α_t(k)·A[k][l] ) · B[l][q_next]`
//!
//! The paper leaves open "whether more sophisticated models can further
//! raise the performance bar"; the `ext_hmm` experiment answers it on the
//! simulator.

#![allow(clippy::needless_range_loop)] // dense matrix math reads best indexed

use crate::model::{Recommender, SequenceScorer, WeightedSessions};
use sqp_common::mem::HASH_ENTRY_OVERHEAD;
use sqp_common::rng::{Rng, StdRng};
use sqp_common::topk::Scored;
use sqp_common::{FxHashMap, FxHashSet, QueryId};

/// HMM training configuration.
#[derive(Clone, Copy, Debug)]
pub struct HmmConfig {
    /// Number of hidden intent states.
    pub n_states: usize,
    /// Baum–Welch iterations.
    pub iterations: usize,
    /// Cap on training sequences (most frequent first) for tractability.
    pub max_sequences: usize,
    /// RNG seed for the parameter initialization.
    pub seed: u64,
    /// Dirichlet-style pseudo-count added to every re-estimated parameter.
    pub smoothing: f64,
}

impl Default for HmmConfig {
    fn default() -> Self {
        Self {
            n_states: 16,
            iterations: 12,
            max_sequences: 3_000,
            seed: 17,
            smoothing: 0.05,
        }
    }
}

/// The trained model.
pub struct Hmm {
    n_states: usize,
    /// Initial state distribution π.
    start: Vec<f64>,
    /// Transition matrix A, row-stochastic.
    trans: Vec<Vec<f64>>,
    /// Sparse emission distributions B, one map per state.
    emit: Vec<FxHashMap<QueryId, f64>>,
    /// Per-state emissions sorted descending (for candidate generation).
    emit_sorted: Vec<Box<[(QueryId, f64)]>>,
    /// Emission floor for queries unseen by a state.
    emit_floor: f64,
    /// Queries observed in training (coverage gate).
    vocabulary: FxHashSet<QueryId>,
    /// Final training log10-likelihood per EM iteration (diagnostics).
    pub log_likelihood_trace: Vec<f64>,
}

impl Hmm {
    /// Train with Baum–Welch.
    pub fn train(sessions: &WeightedSessions, config: HmmConfig) -> Self {
        let k = config.n_states.max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Training corpus: the most frequent multi-query sessions.
        let mut corpus: Vec<(&[QueryId], f64)> = sessions
            .iter()
            .filter(|(s, _)| s.len() >= 2)
            .map(|(s, f)| (s.as_ref(), *f as f64))
            .collect();
        corpus.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(b.0)));
        corpus.truncate(config.max_sequences);

        let mut vocabulary: FxHashSet<QueryId> = FxHashSet::default();
        for (s, _) in &corpus {
            vocabulary.extend(s.iter().copied());
        }
        let n_queries = vocabulary.len().max(1);
        let emit_floor = 1.0 / (n_queries as f64 * 50.0);

        // Random row-stochastic initialization.
        let random_dist = |n: usize, rng: &mut StdRng| -> Vec<f64> {
            let mut v: Vec<f64> = (0..n).map(|_| 0.2 + rng.random::<f64>()).collect();
            let total: f64 = v.iter().sum();
            v.iter_mut().for_each(|x| *x /= total);
            v
        };
        let mut start = random_dist(k, &mut rng);
        let mut trans: Vec<Vec<f64>> = (0..k).map(|_| random_dist(k, &mut rng)).collect();
        let vocab_list: Vec<QueryId> = {
            let mut v: Vec<QueryId> = vocabulary.iter().copied().collect();
            v.sort_unstable();
            v
        };
        let mut emit: Vec<FxHashMap<QueryId, f64>> = (0..k)
            .map(|_| {
                let mut m = FxHashMap::default();
                let mut total = 0.0;
                for &q in &vocab_list {
                    let w = 0.05 + rng.random::<f64>();
                    m.insert(q, w);
                    total += w;
                }
                m.values_mut().for_each(|x| *x /= total);
                m
            })
            .collect();

        let mut log_likelihood_trace = Vec::with_capacity(config.iterations);
        for _iter in 0..config.iterations {
            // Accumulators with pseudo-count smoothing.
            let mut acc_start = vec![config.smoothing; k];
            let mut acc_trans = vec![vec![config.smoothing; k]; k];
            let mut acc_emit: Vec<FxHashMap<QueryId, f64>> =
                (0..k).map(|_| FxHashMap::default()).collect();
            let mut acc_state = vec![config.smoothing * n_queries as f64; k];
            let mut ll = 0.0;

            for (s, weight) in &corpus {
                let t_len = s.len();
                let e = |state: usize, t: usize| -> f64 {
                    emit[state].get(&s[t]).copied().unwrap_or(emit_floor)
                };

                // Scaled forward pass.
                let mut alpha = vec![vec![0.0; k]; t_len];
                let mut scale = vec![0.0f64; t_len];
                for j in 0..k {
                    alpha[0][j] = start[j] * e(j, 0);
                    scale[0] += alpha[0][j];
                }
                scale[0] = scale[0].max(1e-300);
                alpha[0].iter_mut().for_each(|x| *x /= scale[0]);
                for t in 1..t_len {
                    for j in 0..k {
                        let mut a = 0.0;
                        for i in 0..k {
                            a += alpha[t - 1][i] * trans[i][j];
                        }
                        alpha[t][j] = a * e(j, t);
                        scale[t] += alpha[t][j];
                    }
                    scale[t] = scale[t].max(1e-300);
                    alpha[t].iter_mut().for_each(|x| *x /= scale[t]);
                }
                ll += weight * scale.iter().map(|s| s.log10()).sum::<f64>();

                // Scaled backward pass.
                let mut beta = vec![vec![0.0; k]; t_len];
                beta[t_len - 1].iter_mut().for_each(|x| *x = 1.0);
                for t in (0..t_len - 1).rev() {
                    for i in 0..k {
                        let mut b = 0.0;
                        for j in 0..k {
                            b += trans[i][j] * e(j, t + 1) * beta[t + 1][j];
                        }
                        beta[t][i] = b / scale[t + 1];
                    }
                }

                // Posteriors.
                for t in 0..t_len {
                    let mut norm = 0.0;
                    for i in 0..k {
                        norm += alpha[t][i] * beta[t][i];
                    }
                    let norm = norm.max(1e-300);
                    for i in 0..k {
                        let gamma = alpha[t][i] * beta[t][i] / norm * weight;
                        if t == 0 {
                            acc_start[i] += gamma;
                        }
                        acc_state[i] += gamma;
                        *acc_emit[i].entry(s[t]).or_insert(0.0) += gamma;
                    }
                    if t + 1 < t_len {
                        let mut xi_norm = 0.0;
                        for i in 0..k {
                            for j in 0..k {
                                xi_norm += alpha[t][i] * trans[i][j] * e(j, t + 1) * beta[t + 1][j];
                            }
                        }
                        let xi_norm = xi_norm.max(1e-300);
                        for i in 0..k {
                            for j in 0..k {
                                let xi = alpha[t][i] * trans[i][j] * e(j, t + 1) * beta[t + 1][j]
                                    / xi_norm
                                    * weight;
                                acc_trans[i][j] += xi;
                            }
                        }
                    }
                }
            }
            log_likelihood_trace.push(ll);

            // M step.
            let start_total: f64 = acc_start.iter().sum();
            start = acc_start.iter().map(|x| x / start_total).collect();
            for i in 0..k {
                let row_total: f64 = acc_trans[i].iter().sum();
                trans[i] = acc_trans[i].iter().map(|x| x / row_total).collect();
                let state_total = acc_state[i].max(1e-300);
                let mut new_emit = FxHashMap::default();
                for &q in &vocab_list {
                    let c = acc_emit[i].get(&q).copied().unwrap_or(0.0) + config.smoothing;
                    new_emit.insert(q, c / state_total);
                }
                emit[i] = new_emit;
            }
        }

        let emit_sorted: Vec<Box<[(QueryId, f64)]>> = emit
            .iter()
            .map(|m| {
                let mut v: Vec<(QueryId, f64)> = m.iter().map(|(&q, &p)| (q, p)).collect();
                v.sort_unstable_by(|a, b| {
                    b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0))
                });
                v.into_boxed_slice()
            })
            .collect();

        Hmm {
            n_states: k,
            start,
            trans,
            emit,
            emit_sorted,
            emit_floor,
            vocabulary,
            log_likelihood_trace,
        }
    }

    /// Number of hidden states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Forward belief over hidden states after observing `context`
    /// (normalized); `None` when the context is empty.
    pub fn belief(&self, context: &[QueryId]) -> Option<Vec<f64>> {
        if context.is_empty() {
            return None;
        }
        let e = |state: usize, q: QueryId| -> f64 {
            self.emit[state].get(&q).copied().unwrap_or(self.emit_floor)
        };
        let mut alpha: Vec<f64> = (0..self.n_states)
            .map(|j| self.start[j] * e(j, context[0]))
            .collect();
        let norm: f64 = alpha.iter().sum::<f64>().max(1e-300);
        alpha.iter_mut().for_each(|x| *x /= norm);
        for &q in &context[1..] {
            let mut next = vec![0.0; self.n_states];
            for (j, nj) in next.iter_mut().enumerate() {
                for i in 0..self.n_states {
                    *nj += alpha[i] * self.trans[i][j];
                }
                *nj *= e(j, q);
            }
            let norm: f64 = next.iter().sum::<f64>().max(1e-300);
            next.iter_mut().for_each(|x| *x /= norm);
            alpha = next;
        }
        Some(alpha)
    }

    /// `P(q | context)` by one-step belief propagation.
    pub fn cond_prob(&self, context: &[QueryId], q: QueryId) -> f64 {
        let Some(alpha) = self.belief(context) else {
            return 0.0;
        };
        let mut p = 0.0;
        for j in 0..self.n_states {
            let mut prior = 0.0;
            for i in 0..self.n_states {
                prior += alpha[i] * self.trans[i][j];
            }
            p += prior * self.emit[j].get(&q).copied().unwrap_or(self.emit_floor);
        }
        p
    }
}

impl Recommender for Hmm {
    fn name(&self) -> &str {
        "HMM"
    }

    fn recommend(&self, context: &[QueryId], k: usize) -> Vec<Scored> {
        // Coverage gate aligned with the other models: the current query
        // must be known; an HMM could always emit *something*, but scoring
        // hallucinations against unseen queries is not a recommendation.
        let Some(&last) = context.last() else {
            return Vec::new();
        };
        if !self.vocabulary.contains(&last) {
            return Vec::new();
        }
        let Some(alpha) = self.belief(context) else {
            return Vec::new();
        };
        // Predicted state prior.
        let mut prior = vec![0.0; self.n_states];
        for (j, pj) in prior.iter_mut().enumerate() {
            for i in 0..self.n_states {
                *pj += alpha[i] * self.trans[i][j];
            }
        }
        // Candidates: top emissions of the most probable states.
        let mut candidates: FxHashSet<QueryId> = FxHashSet::default();
        let mut by_weight: Vec<usize> = (0..self.n_states).collect();
        by_weight.sort_unstable_by(|&a, &b| prior[b].partial_cmp(&prior[a]).unwrap());
        for &j in by_weight.iter().take(4) {
            for &(q, _) in self.emit_sorted[j].iter().take(k * 4) {
                candidates.insert(q);
            }
        }
        let scored: Vec<Scored> = candidates
            .into_iter()
            .map(|q| {
                let mut p = 0.0;
                for j in 0..self.n_states {
                    p += prior[j] * self.emit[j].get(&q).copied().unwrap_or(self.emit_floor);
                }
                Scored::new(q, p)
            })
            .collect();
        sqp_common::topk::top_k(scored, k)
    }

    fn covers(&self, context: &[QueryId]) -> bool {
        context.last().is_some_and(|q| self.vocabulary.contains(q))
    }

    fn memory_bytes(&self) -> usize {
        let dense = self.n_states * self.n_states * 8 + self.n_states * 8;
        let emissions: usize = self
            .emit
            .iter()
            .map(|m| m.len() * (std::mem::size_of::<QueryId>() + 8 + HASH_ENTRY_OVERHEAD))
            .sum();
        let sorted: usize = self
            .emit_sorted
            .iter()
            .map(|v| v.len() * std::mem::size_of::<(QueryId, f64)>())
            .sum();
        dense + emissions + sorted + self.vocabulary.len() * (4 + HASH_ENTRY_OVERHEAD)
    }
}

impl SequenceScorer for Hmm {
    fn sequence_log10_prob(&self, seq: &[QueryId]) -> f64 {
        let mut lp = 0.0;
        for i in 1..seq.len() {
            lp += self.cond_prob(&seq[..i], seq[i]).max(1e-300).log10();
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    /// Two disjoint "intents": queries {0,1,2} chain together, queries
    /// {10,11,12} chain together; the HMM should separate them.
    fn two_cluster_corpus() -> Vec<(sqp_common::QuerySeq, u64)> {
        vec![
            (seq(&[0, 1, 2]), 40),
            (seq(&[1, 0, 2]), 30),
            (seq(&[2, 1]), 20),
            (seq(&[10, 11, 12]), 40),
            (seq(&[11, 10, 12]), 30),
            (seq(&[12, 11]), 20),
        ]
    }

    fn small_cfg() -> HmmConfig {
        HmmConfig {
            n_states: 4,
            iterations: 25,
            max_sequences: 100,
            seed: 3,
            smoothing: 0.01,
        }
    }

    #[test]
    fn em_likelihood_is_nondecreasing() {
        let hmm = Hmm::train(&two_cluster_corpus(), small_cfg());
        let trace = &hmm.log_likelihood_trace;
        assert!(trace.len() >= 2);
        for w in trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn separates_clusters_in_prediction() {
        let hmm = Hmm::train(&two_cluster_corpus(), small_cfg());
        // After seeing cluster-A queries, cluster-A continuations must
        // dominate cluster-B ones.
        let ctx = seq(&[0, 1]);
        let p_in = hmm.cond_prob(&ctx, QueryId(2));
        let p_out = hmm.cond_prob(&ctx, QueryId(12));
        assert!(
            p_in > p_out * 3.0,
            "cluster separation too weak: {p_in} vs {p_out}"
        );
        // And the top recommendation stays in-cluster.
        let top = hmm.recommend(&ctx, 3);
        assert!(top[0].query.0 < 10, "top = {:?}", top[0].query);
    }

    #[test]
    fn belief_is_a_distribution() {
        let hmm = Hmm::train(&two_cluster_corpus(), small_cfg());
        for ctx in [seq(&[0]), seq(&[0, 1]), seq(&[10, 11, 12])] {
            let b = hmm.belief(&ctx).unwrap();
            assert_eq!(b.len(), 4);
            let total: f64 = b.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(b.iter().all(|&x| x >= 0.0));
        }
        assert!(hmm.belief(&[]).is_none());
    }

    #[test]
    fn coverage_requires_known_last_query() {
        let hmm = Hmm::train(&two_cluster_corpus(), small_cfg());
        assert!(hmm.covers(&seq(&[0])));
        assert!(!hmm.covers(&seq(&[99])));
        assert!(hmm.recommend(&seq(&[99]), 5).is_empty());
        assert!(hmm.recommend(&[], 5).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Hmm::train(&two_cluster_corpus(), small_cfg());
        let b = Hmm::train(&two_cluster_corpus(), small_cfg());
        assert_eq!(a.log_likelihood_trace, b.log_likelihood_trace);
        let ra = a.recommend(&seq(&[0, 1]), 5);
        let rb = b.recommend(&seq(&[0, 1]), 5);
        assert_eq!(
            ra.iter().map(|r| r.query).collect::<Vec<_>>(),
            rb.iter().map(|r| r.query).collect::<Vec<_>>()
        );
    }

    #[test]
    fn transition_rows_are_stochastic() {
        let hmm = Hmm::train(&two_cluster_corpus(), small_cfg());
        for row in &hmm.trans {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        let start_total: f64 = hmm.start.iter().sum();
        assert!((start_total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn respects_k_and_order() {
        let hmm = Hmm::train(&two_cluster_corpus(), small_cfg());
        let recs = hmm.recommend(&seq(&[0]), 2);
        assert!(recs.len() <= 2);
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn memory_positive() {
        let hmm = Hmm::train(&two_cluster_corpus(), small_cfg());
        assert!(hmm.memory_bytes() > 0);
    }

    #[test]
    fn single_state_degenerates_to_unigram() {
        let hmm = Hmm::train(
            &two_cluster_corpus(),
            HmmConfig {
                n_states: 1,
                ..small_cfg()
            },
        );
        // With one state, P(q|ctx) is context-independent.
        let p1 = hmm.cond_prob(&seq(&[0]), QueryId(2));
        let p2 = hmm.cond_prob(&seq(&[10, 11]), QueryId(2));
        assert!((p1 - p2).abs() < 1e-9);
    }
}
